"""Hypothesis strategies for the property-based tests.

Generates well-formed history expressions (closed, guarded tail
recursion), contracts (their projections), histories, and policies — the
raw material for machine-checking Theorem 1, the monitor/declarative
validity agreement, the BPA translation, and the parser round trip.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.actions import Event, FrameClose, FrameOpen
from repro.core.syntax import (EPSILON, EventNode, ExternalChoice, Framing,
                               HistoryExpression, InternalChoice, Mu, Request,
                               Var, seq)
from repro.core.validity import History
from repro.policies.library import (at_most, forbid, never_after,
                                    require_before)

#: A small channel alphabet keeps synchronisation (and therefore
#: interesting compliance structure) likely.
CHANNELS = ("a", "b", "c", "d")

#: Event names / payloads for security-flavoured strategies.
EVENT_NAMES = ("read", "write", "open", "close")
PAYLOADS = (1, 2, "x")


def events() -> st.SearchStrategy[Event]:
    """Access events over a small alphabet."""
    return st.builds(
        Event,
        st.sampled_from(EVENT_NAMES),
        st.tuples() | st.tuples(st.sampled_from(PAYLOADS)))


def policies() -> st.SearchStrategy:
    """A handful of concrete policies over the same event alphabet."""
    return st.sampled_from([
        never_after("read", "write"),
        never_after("write", "read"),
        forbid("close"),
        at_most("open", 2),
        require_before("open", "read"),
        never_after("read", "write", same_resource=True),
    ])


def _choice_branches(continuations, labels):
    return st.lists(
        st.tuples(st.sampled_from(labels), continuations),
        min_size=1, max_size=3,
        unique_by=lambda branch: branch[0])


def contracts(max_depth: int = 4,
              recursion: bool = True) -> st.SearchStrategy[HistoryExpression]:
    """Closed, well-formed *contracts*: communication-only expressions.

    Recursion, when enabled, is generated in guarded tail position only
    (``μh.(choice … h)``), matching the calculus restriction.
    """
    from repro.core.actions import Receive, Send

    def extend(children):
        external = _choice_branches(children,
                                    [Receive(c) for c in CHANNELS]).map(
            lambda branches: ExternalChoice(tuple(branches)))
        internal = _choice_branches(children,
                                    [Send(c) for c in CHANNELS]).map(
            lambda branches: InternalChoice(tuple(branches)))
        sequence = st.tuples(children, children).map(
            lambda pair: seq(*pair))
        return external | internal | sequence

    base = st.just(EPSILON)
    strategy = st.recursive(base, extend, max_leaves=max_depth * 2)
    if not recursion:
        return strategy
    return strategy.flatmap(_maybe_wrap_recursion)


def _maybe_wrap_recursion(term: HistoryExpression):
    """Optionally close a μ-loop around a (choice-guarded) body."""
    from repro.core.actions import Receive, Send

    def build_loop(channel_and_kind):
        channel, is_output = channel_and_kind
        label = Send(channel) if is_output else Receive(channel)
        branch = (label, seq(term, Var("h")))
        if is_output:
            body = InternalChoice((branch, (Send("d"), EPSILON)))
        else:
            body = ExternalChoice((branch, (Receive("d"), EPSILON)))
        return Mu("h", body)

    loop = st.tuples(st.sampled_from(CHANNELS[:3]),
                     st.booleans()).map(build_loop)
    return st.just(term) | loop


def history_expressions(max_depth: int = 4
                        ) -> st.SearchStrategy[HistoryExpression]:
    """Closed, well-formed full history expressions: contracts enriched
    with events, framings and requests."""

    def extend(children):
        from repro.core.actions import Receive, Send

        external = _choice_branches(children,
                                    [Receive(c) for c in CHANNELS]).map(
            lambda branches: ExternalChoice(tuple(branches)))
        internal = _choice_branches(children,
                                    [Send(c) for c in CHANNELS]).map(
            lambda branches: InternalChoice(tuple(branches)))
        sequence = st.tuples(children, children).map(
            lambda pair: seq(*pair))
        framed = st.tuples(policies(), children).map(
            lambda pair: Framing(pair[0], pair[1]))
        requested = st.tuples(st.integers(0, 10**9), policies() |
                              st.none(), children).map(
            lambda triple: Request(f"r{triple[0]}", triple[1], triple[2]))
        return external | internal | sequence | framed | requested

    base = st.just(EPSILON) | events().map(EventNode)
    return st.recursive(base, extend, max_leaves=max_depth * 2).filter(
        _unique_requests)


def _unique_requests(term: HistoryExpression) -> bool:
    from repro.core.syntax import requests_of
    ids = [node.request for node in requests_of(term)]
    return len(ids) == len(set(ids))


def histories(max_length: int = 12) -> st.SearchStrategy[History]:
    """Prefixes of balanced histories over the shared event alphabet."""

    @st.composite
    def build(draw):
        length = draw(st.integers(0, max_length))
        labels = []
        stack = []
        for _ in range(length):
            options = ["event", "open"]
            if stack:
                options.append("close")
            kind = draw(st.sampled_from(options))
            if kind == "event":
                labels.append(draw(events()))
            elif kind == "open":
                policy = draw(policies())
                labels.append(FrameOpen(policy))
                stack.append(policy)
            else:
                labels.append(FrameClose(stack.pop()))
        return History(labels)

    return build()


# -- policies / guards ------------------------------------------------------

def guards(max_depth: int = 3) -> st.SearchStrategy:
    """Random guard expressions over a small name/constant pool."""
    from repro.policies.guards import (TRUE, And, Compare, Const, Name,
                                       Not, Or)

    terms = (st.sampled_from(["x", "y", "p", "t"]).map(Name)
             | st.sampled_from([0, 1, 45, "s", True]).map(Const))
    comparisons = st.builds(
        Compare, st.sampled_from(["==", "!=", "<", "<=", ">", ">="]),
        terms, terms)
    base = st.just(TRUE) | comparisons

    def extend(children):
        return (st.builds(And, children, children)
                | st.builds(Or, children, children)
                | st.builds(Not, children))

    return st.recursive(base, extend, max_leaves=max_depth * 2)


def usage_automata(max_states: int = 4) -> st.SearchStrategy:
    """Random (validated) usage automata over small alphabets."""
    from repro.policies.usage_automata import (Edge, EventPattern,
                                               UsageAutomaton)

    @st.composite
    def build(draw):
        count = draw(st.integers(2, max_states))
        states = tuple(f"q{i}" for i in range(count))
        offending = frozenset(draw(st.sets(
            st.sampled_from(states[1:]), min_size=1, max_size=2)))
        use_variable = draw(st.booleans())
        variables = ("v",) if use_variable else ()
        edge_count = draw(st.integers(1, 2 * count))
        from repro.policies.guards import TRUE, Const, eq, ne
        edges = []
        for _ in range(edge_count):
            source = draw(st.sampled_from(states))
            target = draw(st.sampled_from(states))
            name = draw(st.sampled_from(EVENT_NAMES))
            if use_variable and draw(st.booleans()):
                binders = ("v",)
            elif draw(st.booleans()):
                binders = ("b",)
            else:
                binders = ()
            guard = TRUE
            if binders and draw(st.booleans()):
                # A guard over the binder against a payload constant.
                op = draw(st.sampled_from([eq, ne]))
                # Wrap payloads in Const: bare strings would be read as
                # name references by the guard constructors.
                guard = op(binders[0],
                           Const(draw(st.sampled_from(PAYLOADS))))
            edges.append(Edge(source, EventPattern(name, binders, guard),
                              target))
        return UsageAutomaton(
            name="rand", states=frozenset(states), initial=states[0],
            offending=offending, edges=tuple(edges),
            parameters=(), variables=variables)

    return build()

"""Tests for the BPA validity model checker, cross-validated against the
declarative checker on enumerated traces."""

from repro.core.actions import is_history_label
from repro.core.semantics import traces
from repro.core.syntax import (EPSILON, Framing, Var, event, external,
                               internal, mu, receive, send, seq)
from repro.core.validity import History, is_valid
from repro.bpa.modelcheck import check_validity_bpa
from repro.policies.library import at_most, forbid, never_after

PHI = forbid("boom")
PSI = never_after("a", "b")


def declarative_valid(term, cap=16):
    """Ground truth: every (capped) trace yields a valid history."""
    for trace in traces(term, max_length=cap):
        history = History([l for l in trace if is_history_label(l)])
        if not is_valid(history):
            return False
    return True


class TestAgainstDeclarative:
    SAMPLES = [
        EPSILON,
        event("boom"),                                  # no framing: fine
        Framing(PHI, event("boom")),                    # invalid
        Framing(PHI, event("fine")),
        seq(event("a"), Framing(PSI, event("c"))),      # a before ψ: fine
        seq(event("a"), event("b"), Framing(PSI, event("c"))),  # invalid
        Framing(PSI, seq(event("a"), event("b"))),      # invalid
        Framing(PSI, seq(event("b"), event("a"))),      # wrong order: fine
        Framing(PHI, Framing(PHI, event("boom"))),      # nested, invalid
        seq(Framing(PSI, event("a")), event("b")),      # closes first: ok
        Framing(PSI, external(("go", event("b")), ("no", EPSILON))),
    ]

    def test_matches_trace_enumeration(self):
        for term in self.SAMPLES:
            framed = seq(event("a"), term)  # spice up history dependence
            for candidate in (term, framed):
                report = check_validity_bpa(candidate)
                assert report.valid == declarative_valid(candidate), \
                    f"BPA checker disagrees on {candidate!r}"


class TestRecursion:
    def test_recursive_term_with_framed_body(self):
        # Each iteration opens and closes ψ around a clean event.
        term = mu("h", receive("go", seq(Framing(PSI, event("a")),
                                         send("ack", Var("h")))))
        report = check_validity_bpa(term)
        assert report.valid

    def test_counting_policy_violated_by_loop(self):
        # φ = at most 1 tick, but each loop iteration ticks once and the
        # framing spans the whole recursion? It cannot (tail restriction)
        # — instead check a finite unrolling of two ticks.
        phi = at_most("tick", 1)
        term = Framing(phi, seq(event("tick"), event("tick")))
        report = check_validity_bpa(term)
        assert not report.valid
        assert report.violated_policy == phi


class TestReports:
    def test_counterexample_on_failure(self):
        report = check_validity_bpa(Framing(PHI, event("boom")))
        assert not report.valid and not bool(report)
        assert report.counterexample is not None
        assert report.violated_policy == PHI

    def test_no_counterexample_on_success(self):
        report = check_validity_bpa(Framing(PHI, event("fine")))
        assert report.valid and bool(report)
        assert report.counterexample is None
        assert report.states_checked >= 1

    def test_internal_choice_bad_branch_found(self):
        term = Framing(PHI, internal(("x", event("boom")),
                                     ("y", event("fine"))))
        report = check_validity_bpa(term)
        assert not report.valid

"""Tests for the framing regularisation of Section 3.1."""

from repro.core.semantics import traces
from repro.core.syntax import (EPSILON, Framing, Var, event, external, mu,
                               receive, request, seq, send)
from repro.core.validity import History, is_valid
from repro.core.actions import is_history_label
from repro.bpa.regularize import max_framing_depth, regularize
from repro.policies.library import forbid, never_after

PHI = forbid("boom")
PSI = never_after("a", "b")


class TestRewriting:
    def test_plain_terms_unchanged(self):
        for term in (EPSILON, event("e"), send("a", receive("b"))):
            assert regularize(term) == term

    def test_directly_nested_same_policy_collapses(self):
        term = Framing(PHI, Framing(PHI, event("e")))
        assert regularize(term) == Framing(PHI, event("e"))

    def test_nested_with_intervening_structure(self):
        inner = Framing(PHI, event("x"))
        term = Framing(PHI, seq(event("a"), inner, event("b")))
        assert regularize(term) == Framing(
            PHI, seq(event("a"), event("x"), event("b")))

    def test_different_policies_preserved(self):
        term = Framing(PHI, Framing(PSI, event("e")))
        assert regularize(term) == term

    def test_siblings_not_collapsed(self):
        term = seq(Framing(PHI, event("a")), Framing(PHI, event("b")))
        assert regularize(term) == term

    def test_framings_inside_choices(self):
        term = Framing(PHI, external(
            ("go", Framing(PHI, event("x"))),
            ("no", EPSILON)))
        result = regularize(term)
        assert max_framing_depth(result) <= 1

    def test_request_policy_is_not_a_framing_here(self):
        # open_{r,φ} frames the session at the *network* level; the
        # stand-alone rewrite leaves it alone.
        term = request("r", PHI, Framing(PHI, event("e")))
        result = regularize(term)
        assert isinstance(result, type(term))
        assert result.policy == PHI


class TestDepthMeasure:
    def test_depth_of_flat_term(self):
        assert max_framing_depth(event("e")) == 0
        assert max_framing_depth(Framing(PHI, event("e"))) == 1

    def test_depth_counts_same_policy_only(self):
        assert max_framing_depth(Framing(PHI, Framing(PSI, EPSILON))) == 1
        assert max_framing_depth(Framing(PHI, Framing(PHI, EPSILON))) == 2

    def test_regularized_depth_is_at_most_one(self):
        deep = Framing(PHI, seq(event("a"),
                                Framing(PHI,
                                        Framing(PHI, event("b")))))
        assert max_framing_depth(deep) == 3
        assert max_framing_depth(regularize(deep)) == 1


class TestValidityPreservation:
    def histories_of(self, term, cap=14):
        for trace in traces(term, max_length=cap):
            yield History([l for l in trace if is_history_label(l)])

    def equal_validity(self, term):
        regular = regularize(term)
        original = {(tuple(h), is_valid(h))
                    for h in self.histories_of(term)}
        rewritten = {(tuple(h), is_valid(h))
                     for h in self.histories_of(regular)}
        # Same validity verdict overall (the label sequences differ: the
        # redundant Lφ/Mφ pairs are gone).
        assert (all(v for _, v in original)
                == all(v for _, v in rewritten))

    def test_validity_preserved_on_violating_term(self):
        self.equal_validity(Framing(PHI, Framing(PHI, event("boom"))))

    def test_validity_preserved_on_clean_term(self):
        self.equal_validity(Framing(PHI, Framing(PHI, event("fine"))))

    def test_validity_preserved_with_interleaved_policies(self):
        term = Framing(PSI, seq(event("a"),
                                Framing(PSI, event("b"))))
        self.equal_validity(term)

    def test_inner_close_no_longer_deactivates(self):
        # In φ[x·φ[y]·z], z is still under φ; the rewrite must keep it so.
        term = Framing(PSI, seq(event("a"), Framing(PSI, event("x")),
                                event("b")))
        regular = regularize(term)
        # The violating pair a…b is inside the single remaining framing.
        histories = list(self.histories_of(regular))
        assert any(not is_valid(h) for h in histories)

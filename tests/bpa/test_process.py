"""Tests for the BPA process substrate."""

import pytest

from repro.core.errors import WellFormednessError
from repro.bpa.process import (BPAAction, BPAChoice, BPASeq, BPASystem,
                               BPAVar, ZERO, bpa_choice, bpa_seq,
                               substitute_definitions)


def lts_of(root, definitions=()):
    return BPASystem(root, tuple(definitions)).lts()


class TestConstructors:
    def test_seq_unit_laws(self):
        action = BPAAction("a")
        assert bpa_seq(ZERO, action) == action
        assert bpa_seq(action, ZERO) == action
        assert bpa_seq(ZERO, ZERO) == ZERO

    def test_choice_of_nothing_is_zero(self):
        assert bpa_choice() == ZERO

    def test_choice_of_one_is_itself(self):
        action = BPAAction("a")
        assert bpa_choice(action) == action

    def test_choice_right_associates(self):
        a, b, c = (BPAAction(x) for x in "abc")
        assert bpa_choice(a, b, c) == BPAChoice(a, BPAChoice(b, c))


class TestSemantics:
    def test_zero_is_stuck(self):
        system = BPASystem(ZERO)
        assert list(system.step(ZERO)) == []

    def test_action_fires_once(self):
        system = BPASystem(BPAAction("a"))
        assert list(system.step(system.root)) == [("a", ZERO)]

    def test_seq_orders_actions(self):
        root = bpa_seq(BPAAction("a"), BPAAction("b"))
        lts = lts_of(root)
        assert len(lts) == 3
        path = lts.path_to(lambda s: s == ZERO)
        assert [label for label, _ in path] == ["a", "b"]

    def test_choice_branches(self):
        root = bpa_choice(BPAAction("a"), BPAAction("b"))
        system = BPASystem(root)
        assert {label for label, _ in system.step(root)} == {"a", "b"}

    def test_variable_unfolds_definition(self):
        system = BPASystem(BPAVar("X"),
                           (("X", bpa_seq(BPAAction("t"), BPAVar("X"))),))
        lts = system.lts()
        assert len(lts) <= 2  # the loop closes

    def test_undefined_variable_raises(self):
        system = BPASystem(BPAVar("ghost"))
        with pytest.raises(WellFormednessError, match="undefined"):
            list(system.step(system.root))

    def test_unguarded_definition_raises(self):
        system = BPASystem(BPAVar("X"), (("X", BPAVar("X")),))
        with pytest.raises(WellFormednessError, match="unguarded"):
            list(system.step(system.root))


class TestSubstitution:
    def test_substitute_definitions(self):
        term = bpa_seq(BPAVar("X"), BPAAction("end"))
        result = substitute_definitions(term, {"X": BPAAction("mid")})
        assert result == bpa_seq(BPAAction("mid"), BPAAction("end"))

    def test_substitute_missing_var_unchanged(self):
        term = BPAVar("Y")
        assert substitute_definitions(term, {"X": ZERO}) == term


class TestRendering:
    def test_str_forms(self):
        assert str(ZERO) == "0"
        assert str(BPAAction("a")) == "a"
        assert str(BPAVar("X")) == "X"
        assert "+" in str(bpa_choice(BPAAction("a"), BPAAction("b")))
        assert "·" in str(bpa_seq(BPAAction("a"), BPAAction("b")))

"""Tests for the HE → BPA translation: the two transition systems must be
strongly bisimilar."""

from repro.core.semantics import step
from repro.core.syntax import (EPSILON, Framing, Var, event, external,
                               internal, mu, receive, request, send, seq)
from repro.contracts.lts import bisimilar, build_lts
from repro.bpa.translate import to_bpa
from repro.paper import figure2
from repro.policies.library import forbid

PHI = forbid("x")

SAMPLES = [
    EPSILON,
    event("e", 1),
    seq(event("a"), event("b")),
    send("a", receive("b")),
    external(("a", event("x")), ("b", EPSILON)),
    internal(("a", EPSILON), ("b", send("c"))),
    Framing(PHI, seq(event("a"), send("out"))),
    request("r", PHI, seq(send("a"), receive("b"))),
    mu("h", receive("ping", send("pong", Var("h")))),
    mu("h", external(("go", seq(event("e"), send("ack", Var("h")))),
                     ("stop", EPSILON))),
    figure2.client_1(),
    figure2.broker(),
    figure2.hotel_2(),
]


class TestBisimilarity:
    def test_translation_preserves_behaviour(self):
        for term in SAMPLES:
            he_lts = build_lts(term, step)
            bpa_lts = to_bpa(term).lts()
            assert bisimilar(he_lts, bpa_lts), \
                f"translation changed behaviour of {term!r}"


class TestStructure:
    def test_epsilon_is_zero(self):
        system = to_bpa(EPSILON)
        from repro.bpa.process import ZERO
        assert system.root == ZERO
        assert system.definitions == ()

    def test_mu_becomes_definition(self):
        system = to_bpa(mu("h", receive("a", Var("h"))))
        assert len(system.definitions) == 1
        (name, _) = system.definitions[0]
        assert name == "X_h"

    def test_nested_mus_get_fresh_names(self):
        inner = mu("h", receive("b", Var("h")))
        outer = mu("h", receive("a", seq(inner, send("c", Var("h")))))
        system = to_bpa(outer)
        names = [name for name, _ in system.definitions]
        assert len(names) == len(set(names)) == 2

    def test_framing_becomes_bracketing_actions(self):
        from repro.core.actions import FrameClose, FrameOpen
        system = to_bpa(Framing(PHI, event("e")))
        labels = {label for _, moves in system.lts().transitions.items()
                  for label, _ in moves}
        assert FrameOpen(PHI) in labels
        assert FrameClose(PHI) in labels

    def test_request_becomes_open_close_actions(self):
        from repro.core.actions import SessionClose, SessionOpen
        system = to_bpa(request("r", None, event("e")))
        labels = {label for _, moves in system.lts().transitions.items()
                  for label, _ in moves}
        assert SessionOpen("r", None) in labels
        assert SessionClose("r", None) in labels

"""Unit tests for the subcontract preorder decider and its witnesses."""

from pathlib import Path

import pytest

from repro.canon import (PreorderResult, preorder_equivalent,
                         subcontract_preorder)
from repro.cli import load_module
from repro.contracts.subcontract import subcontract as interpreted_subcontract
from repro.core.compliance import check_compliance
from repro.core.syntax import (EPSILON, Var, external, internal, mu,
                               receive, send)

EXAMPLES = Path(__file__).parents[2] / "examples"

ENGINES = ("onthefly", "eager", "gfp", "compiled")


class TestVerdicts:
    def test_reflexive(self):
        term = external(("a", internal(("x", EPSILON))), ("b", EPSILON))
        result = subcontract_preorder(term, term)
        assert isinstance(result, PreorderResult)
        assert result.holds and bool(result)
        assert result.witness is None
        assert result.pairs >= 1

    def test_wider_external_choice_refines(self):
        # ?a ≼ ?a + ?b: extra inputs can only serve more clients.
        assert subcontract_preorder(receive("a"),
                                    external(("a", EPSILON),
                                             ("b", EPSILON))).holds

    def test_narrower_external_choice_refuses(self):
        result = subcontract_preorder(external(("a", EPSILON),
                                               ("b", EPSILON)),
                                      receive("a"))
        assert not result.holds
        assert result.witness is not None

    def test_narrower_internal_choice_refines(self):
        # !a ⊕ !b ≼ !a: committing to fewer outputs can't hurt a client
        # that was ready for all of them.
        assert subcontract_preorder(internal(("a", EPSILON),
                                             ("b", EPSILON)),
                                    send("a")).holds

    def test_wider_internal_choice_refuses(self):
        result = subcontract_preorder(send("a"),
                                      internal(("a", EPSILON),
                                               ("b", EPSILON)))
        assert not result.holds

    def test_vacuous_left_accepts_everything(self):
        # Only ε complies with ε, and ε complies with everything.
        for right in (send("a"), receive("a"), EPSILON,
                      mu("h", internal(("x", Var("h"))))):
            assert subcontract_preorder(EPSILON, right).holds

    def test_equivalence_of_bisimilar_services(self):
        module = load_module(str(EXAMPLES / "hotel_booking.sus"))
        services = module.services
        assert preorder_equivalent(services["ls1"], services["ls3"])
        assert not preorder_equivalent(services["ls1"], services["lbr"])

    def test_exact_where_interpreted_is_conservative(self):
        """The quotient-table decider is exact in input mode: clients
        compliant with the left contract can only send channels in the
        *intersection* of its input ready sets, which the right contract
        accepts — the interpreted checker's every-ready-set containment
        test refuses this pair."""
        left = internal(("x", external(("a", EPSILON), ("b", EPSILON))),
                        ("x", external(("a", EPSILON), ("c", EPSILON))))
        right = internal(("x", receive("a")))
        assert not interpreted_subcontract(left, right)
        assert subcontract_preorder(left, right).holds

    def test_interpreted_true_implies_preorder_true(self):
        cases = [
            (receive("a"), external(("a", EPSILON), ("b", EPSILON))),
            (internal(("a", EPSILON), ("b", EPSILON)), send("a")),
            (external(("a", send("x")), ("b", EPSILON)),
             external(("a", send("x")), ("b", EPSILON), ("c", EPSILON))),
        ]
        for smaller, larger in cases:
            if interpreted_subcontract(smaller, larger):
                assert subcontract_preorder(smaller, larger).holds, \
                    (smaller, larger)


class TestWitnesses:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_witness_replays_on_every_engine(self, engine):
        result = subcontract_preorder(external(("a", EPSILON),
                                               ("b", EPSILON)),
                                      receive("a"))
        witness = result.witness
        assert witness is not None
        assert witness.replays(engine=engine)

    def test_witness_client_is_concrete(self):
        result = subcontract_preorder(send("a"),
                                      internal(("a", EPSILON),
                                               ("b", EPSILON)))
        witness = result.witness
        assert witness is not None
        # The synthesised client complies with the smaller server but
        # gets stuck against the larger one.
        assert check_compliance(witness.client, witness.smaller).compliant
        assert not check_compliance(witness.client,
                                    witness.larger).compliant
        assert witness.describe()

    def test_deep_refusal_is_found(self):
        # The divergence only appears after one handshake.
        smaller = internal(("x", external(("a", EPSILON),
                                          ("b", EPSILON))))
        larger = internal(("x", receive("a")))
        ok = subcontract_preorder(smaller, larger)
        assert not ok.holds
        assert ok.witness is not None
        assert len(ok.witness.path) >= 1
        assert ok.witness.replays()

"""Memoisation and cache-cascade tests for the canonicalization layer.

Mirrors the compiled-core regression suite: after
``clear_contract_caches`` every canon memo must be *recomputed*, never
served stale — the quotient tables embed process-global label ids, so a
stale entry after a label-table flush would silently corrupt every
downstream verdict.
"""

from repro.canon import (canon_cache_stats, canonically_equal,
                         clear_canon_caches, fingerprint_of, minimize,
                         subcontract_preorder)
from repro.canon.fingerprint import _canonical
from repro.canon.minimize import _quotient
from repro.canon.preorder import _preorder
from repro.compiled.tables import LABELS
from repro.contracts.contract import (clear_contract_caches,
                                      contract_cache_stats)
from repro.core.syntax import EPSILON, external, internal, receive, send

CANON_CACHES = ("canon.quotient", "canon.fingerprint", "canon.preorder")


class TestMemoisation:
    def test_quotient_is_memoised(self):
        clear_contract_caches()
        term = internal(("a", receive("b")))
        assert minimize(term) is minimize(term)
        stats = canon_cache_stats()["canon.quotient"]
        assert stats["hits"] >= 1 and stats["misses"] == 1

    def test_preorder_is_memoised(self):
        clear_contract_caches()
        smaller, larger = receive("a"), external(("a", EPSILON),
                                                 ("b", EPSILON))
        subcontract_preorder(smaller, larger)
        subcontract_preorder(smaller, larger)
        stats = canon_cache_stats()["canon.preorder"]
        assert stats["hits"] >= 1 and stats["misses"] == 1


class TestClearCascade:
    def test_canon_stats_surface_in_contract_cache_stats(self):
        stats = contract_cache_stats()
        for name in CANON_CACHES:
            assert name in stats, name

    def test_clear_contract_caches_recomputes_quotients(self):
        term = internal(("a", send("b")))
        before = minimize(term)
        assert _quotient.cache_info().currsize >= 1
        clear_contract_caches()
        assert _quotient.cache_info().currsize == 0
        assert _canonical.cache_info().currsize == 0
        assert _preorder.cache_info().currsize == 0
        after = minimize(term)
        assert after is not before  # recomputed, not served stale
        assert after.terminated == before.terminated
        assert after.n_blocks == before.n_blocks

    def test_clear_canon_caches_alone_suffices(self):
        term = internal(("a", send("b")))
        minimize(term)
        fingerprint_of(term)
        clear_canon_caches()
        stats = canon_cache_stats()
        for name in CANON_CACHES:
            assert stats[name]["misses"] == 0, name
        assert _quotient.cache_info().currsize == 0

    def test_recompilation_regression_under_relabeled_table(self):
        """The regression the cascade exists to prevent: quotients and
        fingerprints computed after a flush — under a *different* label
        interning order — must agree with the pre-flush ones."""
        term = external(("gamma", internal(("delta", EPSILON))),
                        ("alpha", EPSILON))
        clear_contract_caches()
        fingerprint = fingerprint_of(term)
        blocks = minimize(term).n_blocks
        clear_contract_caches()
        assert len(LABELS.labels) == 0
        # Warm the label table differently before recomputing: the raw
        # masks will differ, the canonical artefacts must not.
        minimize(internal(("zz1", EPSILON), ("zz2", EPSILON)))
        assert fingerprint_of(term) == fingerprint
        assert minimize(term).n_blocks == blocks
        assert canonically_equal(term, term)

"""End-to-end tests for ``repro canon`` and ``repro registry``."""

import json
from pathlib import Path

from repro.cli import main

EXAMPLES = Path(__file__).parents[2] / "examples"
HOTEL = str(EXAMPLES / "hotel_booking.sus")


class TestCanonCommand:
    def test_text_output_lists_every_contract(self, capsys):
        assert main(["canon", HOTEL]) == 0
        out = capsys.readouterr().out
        for name in ("lbr", "lc1", "lc2", "ls1", "ls2", "ls3", "ls4"):
            assert name in out
        assert "duplicate contracts (bisimilar): ls1, ls3, ls4" in out

    def test_json_is_deterministic_and_schema_tagged(self, capsys):
        assert main(["canon", HOTEL, "--format", "json"]) == 0
        first = capsys.readouterr().out
        assert main(["canon", HOTEL, "--format", "json"]) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["schema"] == "repro-canon.v1"
        by_name = {row["name"]: row for row in payload["contracts"]}
        assert by_name["ls1"]["fingerprint"] == \
            by_name["ls3"]["fingerprint"]
        assert by_name["ls1"]["minimal"] is True
        assert ["ls1", "ls3", "ls4"] in payload["duplicates"]
        assert by_name["lbr"]["signature"]["mode"] == "input"

    def test_unknown_file_exits_2(self, capsys):
        assert main(["canon", "no_such_module.sus"]) == 2
        assert "error:" in capsys.readouterr().err


class TestRegistryCommand:
    def test_text_summary_and_queries(self, capsys):
        assert main(["registry", HOTEL, "--query-compliant", "lc1",
                     "--query-substitutable", "ls1"]) == 0
        out = capsys.readouterr().out
        assert "5 service(s) in 3 signature bucket(s)" in out
        assert "compliant with lc1: lbr" in out
        assert "substitutable with ls1: ls1, ls3, ls4" in out

    def test_json_payload(self, capsys):
        assert main(["registry", HOTEL, "--query-compliant", "lc1",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-registry.v1"
        assert payload["registry"]["entries"] == 5
        assert payload["registry"]["canonical_classes"] == 3
        (query,) = payload["queries"]
        assert query["kind"] == "compliant"
        assert query["matches"] == ["lbr"]
        assert query["product_checks"] <= query["candidates"]

    def test_empty_query_exits_1(self, tmp_path, capsys):
        module = tmp_path / "mismatch.sus"
        module.write_text(
            "client c = open 1 { !Nothing }\n"
            "service s = ?Else . !Reply\n", encoding="utf-8")
        assert main(["registry", str(module),
                     "--query-compliant", "c"]) == 1
        assert "none" in capsys.readouterr().out

    def test_unknown_query_name_exits_2(self, capsys):
        assert main(["registry", HOTEL,
                     "--query-compliant", "ghost"]) == 2
        assert "error:" in capsys.readouterr().err

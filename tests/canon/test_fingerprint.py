"""Unit tests for canonical forms, fingerprints and signatures."""

from pathlib import Path

from repro.canon import (CanonicalForm, Signature, canonicalize,
                         canonically_equal, fingerprint_of, signature_of)
from repro.cli import load_module
from repro.contracts.contract import clear_contract_caches
from repro.core.syntax import (EPSILON, Var, external, internal, mu,
                               receive, send, seq)

EXAMPLES = Path(__file__).parents[2] / "examples"

ROLLED = mu("h", external(("Ping", internal(("Pong", Var("h"))))))
UNROLLED = external(("Ping", internal(("Pong", ROLLED))))


class TestFingerprints:
    def test_bisimilar_terms_share_a_fingerprint(self):
        assert fingerprint_of(ROLLED) == fingerprint_of(UNROLLED)
        assert canonically_equal(ROLLED, UNROLLED)

    def test_distinct_contracts_differ(self):
        assert fingerprint_of(send("a")) != fingerprint_of(send("b"))
        assert fingerprint_of(send("a")) != fingerprint_of(receive("a"))
        assert not canonically_equal(send("a"), receive("a"))

    def test_canonical_form_shape(self):
        form = canonicalize(UNROLLED)
        assert isinstance(form, CanonicalForm)
        assert form.n_blocks == 2
        assert form.n_source_states == 3
        assert len(form.table) == form.n_blocks
        assert 0 <= form.initial < form.n_blocks
        assert form.key == (form.initial, form.table)
        payload = form.to_json()
        assert payload["blocks"] == 2 and not payload["minimal"]

    def test_fingerprint_is_interning_order_invariant(self):
        """The load-bearing invariance: fingerprints hash label content,
        never process-global label ids, so recomputing after a cache
        flush under a different interning history changes nothing."""
        term = external(("zeta", internal(("alpha", EPSILON))),
                        ("beta", EPSILON))
        clear_contract_caches()
        fresh = fingerprint_of(term)
        clear_contract_caches()
        # Skew the label table first: intern unrelated channels so every
        # label id the term gets differs from the first run.
        for warm in (send("w1"), send("w2"), receive("w3")):
            fingerprint_of(warm)
        assert fingerprint_of(term) == fresh

    def test_hotel_duplicates_share_fingerprints(self):
        module = load_module(str(EXAMPLES / "hotel_booking.sus"))
        services = module.services
        assert canonically_equal(services["ls1"], services["ls3"])
        assert canonically_equal(services["ls1"], services["ls4"])
        assert not canonically_equal(services["ls1"], services["ls2"])


class TestSignatures:
    def test_output_mode(self):
        signature = signature_of(internal(("b", receive("x")),
                                          ("a", EPSILON)))
        assert isinstance(signature, Signature)
        assert signature.mode == "output"
        assert signature.initial_outputs == ("a", "b")
        assert signature.initial_inputs == ()
        assert not signature.initial_terminated
        assert signature.alphabet_inputs == ("x",)

    def test_input_mode(self):
        signature = signature_of(external(("a", EPSILON), ("b", EPSILON)))
        assert signature.mode == "input"
        assert signature.initial_inputs == ("a", "b")
        assert signature.initial_outputs == ()

    def test_quiescent_mode(self):
        signature = signature_of(EPSILON)
        assert signature.mode == "quiescent"
        assert signature.initial_terminated

    def test_alphabet_covers_every_reachable_state(self):
        signature = signature_of(seq(send("a"), receive("b")))
        assert signature.alphabet_outputs == ("a",)
        assert signature.alphabet_inputs == ("b",)
        assert signature.initial_outputs == ("a",)
        assert signature.initial_inputs == ()

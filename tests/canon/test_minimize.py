"""Unit tests for bisimulation minimization of compiled tables."""

from repro.canon import minimize
from repro.canon.minimize import QuotientContract
from repro.compiled import compile_contract
from repro.compiled.search import compiled_search
from repro.contracts.contract import Contract
from repro.core.compliance import check_compliance
from repro.core.syntax import (EPSILON, Var, external, internal, mu,
                               receive, send)

#: ``mu h { ?Ping . !Pong . h }`` and the same loop unrolled once: the
#: unrolled head is bisimilar to the recursion body, so the unrolled
#: LTS is strictly non-minimal (3 states, 2 blocks).
ROLLED = mu("h", external(("Ping", internal(("Pong", Var("h"))))))
UNROLLED = external(("Ping", internal(("Pong", ROLLED))))


class TestQuotientShape:
    def test_minimal_contract_is_its_own_quotient(self):
        term = internal(("a", receive("b")), ("c", EPSILON))
        quotient = minimize(term)
        assert isinstance(quotient, QuotientContract)
        assert quotient.is_minimal
        assert quotient.n_blocks == quotient.n_source_states

    def test_unrolled_loop_collapses(self):
        quotient = minimize(UNROLLED)
        assert not quotient.is_minimal
        assert quotient.n_blocks < quotient.n_source_states
        assert minimize(ROLLED).is_minimal
        assert quotient.n_blocks == minimize(ROLLED).n_blocks

    def test_block_zero_holds_the_initial_state(self):
        quotient = minimize(UNROLLED)
        assert quotient.block_of[0] == 0
        assert quotient.terms[0] == Contract(UNROLLED).term

    def test_block_of_covers_every_source_state(self):
        quotient = minimize(UNROLLED)
        assert len(quotient.block_of) == quotient.n_source_states
        assert set(quotient.block_of) == set(range(quotient.n_blocks))

    def test_accepts_contracts_and_is_memoised(self):
        term = internal(("a", EPSILON))
        assert minimize(term) is minimize(Contract(term))

    def test_masks_survive_quotienting(self):
        term = internal(("a", receive("b")), ("c", EPSILON))
        compiled = compile_contract(term)
        quotient = minimize(term)
        assert quotient.out_mask[0] == compiled.out_mask[0]
        assert quotient.in_mask[0] == compiled.in_mask[0]
        # Each block inherits its representative's flags.
        for b in range(quotient.n_blocks):
            representative = quotient.block_of.index(b)
            assert quotient.terminated[b] == \
                compiled.terminated[representative]


class TestQuotientPreservesCompliance:
    def test_product_search_runs_on_quotients(self):
        client = internal(("Ping", receive("Pong")))
        server = external(("Ping", send("Pong")))
        result = compiled_search(minimize(client), minimize(server),
                                 10_000)
        assert result.empty

    def test_verdict_matches_compiled_engine_on_reduced_tables(self):
        client = mu("k", internal(("Ping", external(("Pong", Var("k"))))))
        for server in (UNROLLED, ROLLED):
            direct = check_compliance(client, server, engine="compiled")
            quotiented = compiled_search(minimize(client),
                                         minimize(server), 10_000)
            assert quotiented.empty == direct.compliant

    def test_stuck_pair_still_found_after_quotienting(self):
        client = internal(("Ask", EPSILON))
        server = external(("Ping", EPSILON))
        direct = check_compliance(client, server, engine="compiled")
        quotiented = compiled_search(minimize(client), minimize(server),
                                     10_000)
        assert not direct.compliant
        assert not quotiented.empty

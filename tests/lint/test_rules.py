"""Unit tests for the individual SUS0xx lint rules."""

from pathlib import Path

import pytest

from repro.core.syntax import ClosePending, FrameClosePending
from repro.lang.module import Module, parse_module
from repro.lang.parser import parse
from repro.lint import Severity, lint_module
from repro.lint.rules_policies import (guard_truth, reachable_states,
                                       viable_edges)
from repro.policies import library
from repro.policies.builder import AutomatonBuilder
from repro.policies.guards import TRUE, member, not_member

FIXTURES = Path(__file__).parent / "fixtures"


def lint_source(source: str, **kwargs):
    return lint_module(parse_module(source), **kwargs)


def lint_file(path: Path, **kwargs):
    return lint_module(parse_module(path.read_text(), path=str(path)),
                       **kwargs)


def codes(diagnostics):
    return {d.code for d in diagnostics}


class TestFixtures:
    """Every known-bad fixture trips its dedicated rule code."""

    EXPECTED = {
        "unused_policy.sus": "SUS001",
        "duplicate_decl.sus": "SUS002",
        "unservable_service.sus": "SUS003",
        "vacuous_policy.sus": "SUS011",
        "dead_branch.sus": "SUS020",
        "doomed_request.sus": "SUS030",
        "duplicate_contract.sus": "SUS050",
        "non_minimal_contract.sus": "SUS051",
    }

    #: Codes diagnosing the same root defect from another layer (the
    #: SUS04x certification rules re-derive a doomed request with a
    #: stuck witness and an unsat core) — allowed alongside the
    #: dedicated code.
    COMPANIONS = {
        "doomed_request.sus": {"SUS041", "SUS042"},
    }

    @pytest.mark.parametrize("fixture,code", sorted(EXPECTED.items()))
    def test_fixture_trips_its_rule(self, fixture, code):
        assert code in codes(lint_file(FIXTURES / fixture))

    def test_fixtures_trip_nothing_unexpected(self):
        # Beyond its dedicated code (and declared companions) a fixture
        # may at most add an INFO (e.g. an incidentally unservable
        # service) — never another warning or error.
        for fixture, code in self.EXPECTED.items():
            allowed = {code} | self.COMPANIONS.get(fixture, set())
            extra = [d for d in lint_file(FIXTURES / fixture)
                     if d.code not in allowed
                     and d.severity > Severity.INFO]
            assert not extra, (fixture, extra)


class TestLangRules:
    def test_unused_policy_fires_with_span(self):
        diagnostics = lint_file(FIXTURES / "unused_policy.sus",
                                select=["SUS001"])
        (diagnostic,) = diagnostics
        assert diagnostic.declaration == "ghost"
        assert diagnostic.span.line == 2       # the `ghost` token
        assert diagnostic.span.column == 8
        assert diagnostic.severity is Severity.WARNING

    def test_attached_policy_is_used(self):
        source = """
        policy phi = blacklist(sgn, bl = {1})
        client c = open 1 with phi { !Ping }
        service s = ?Ping
        """
        assert "SUS001" not in codes(lint_source(source))

    def test_duplicate_reports_the_later_declaration(self):
        diagnostics = lint_file(FIXTURES / "duplicate_decl.sus",
                                select=["SUS002"])
        (diagnostic,) = diagnostics
        assert diagnostic.severity is Severity.ERROR
        assert diagnostic.span.line == 3       # the *second* `client c`
        assert "first declared at 2:8" in diagnostic.message

    def test_policies_and_terms_are_separate_namespaces(self):
        source = """
        policy same = blacklist(sgn, bl = {1})
        client same = open 1 with same { !Ping }
        service s = ?Ping
        """
        assert "SUS002" not in codes(lint_source(source))

    def test_unservable_service_is_info(self):
        diagnostics = lint_file(FIXTURES / "unservable_service.sus",
                                select=["SUS003"])
        (diagnostic,) = diagnostics
        assert diagnostic.severity is Severity.INFO
        assert diagnostic.declaration == "lonely"


class TestPolicyRules:
    def test_guard_truth_is_three_valued(self):
        env = {"bl": frozenset(), "nonempty": frozenset({1})}
        assert guard_truth(TRUE, env) is True
        assert guard_truth(member("x", "bl"), env) is False
        assert guard_truth(not_member("x", "bl"), env) is True
        assert guard_truth(member("x", "nonempty"), env) is None
        assert guard_truth(member("x", "unknown"), env) is None

    def test_reachable_states_respects_dead_guards(self):
        policy = library.blacklist("sgn", frozenset())
        assert reachable_states(policy) == {"q0"}
        assert len(viable_edges(policy.automaton,
                                policy.environment())) == 0
        armed = library.blacklist("sgn", {1})
        assert reachable_states(armed) == {"q0", "bad"}

    def test_unreachable_state_sus010(self):
        automaton = (AutomatonBuilder("orphan", parameters=("bl",))
                     .state("q0", initial=True)
                     .state("limbo")
                     .state("bad", offending=True)
                     .edge("q0", "limbo", "ev", binders=("x",),
                           guard=member("x", "bl"))
                     .edge("limbo", "bad", "ev")
                     .build())
        module = Module(policies={"phi": automaton.instantiate(
            bl=frozenset())})
        diagnostics = lint_module(module, select=["SUS010"])
        (diagnostic,) = diagnostics
        assert "limbo" in diagnostic.message
        # Offending states are SUS011's business, not SUS010's.
        assert "bad" not in diagnostic.message

    def test_vacuous_policy_sus011(self):
        module = Module(policies={
            "empty": library.blacklist("sgn", frozenset())})
        (diagnostic,) = lint_module(module, select=["SUS011"])
        assert diagnostic.declaration == "empty"

    def test_policy_without_offending_states_is_vacuous(self):
        automaton = (AutomatonBuilder("noop")
                     .state("q0", initial=True)
                     .build())
        module = Module(policies={"noop": automaton.instantiate()})
        (diagnostic,) = lint_module(module, select=["SUS011"])
        assert "declares no offending state" in diagnostic.message

    def test_armed_policy_is_not_vacuous(self):
        module = Module(policies={"phi": library.forbid("rm")})
        assert lint_module(module, select=["SUS011"]) == []

    def test_overlapping_edges_sus012(self):
        automaton = (AutomatonBuilder("fork")
                     .state("q0", initial=True)
                     .edge("q0", "left", "ev")
                     .edge("q0", "right", "ev")
                     .build())
        module = Module(policies={"fork": automaton.instantiate()})
        (diagnostic,) = lint_module(module, select=["SUS012"])
        assert diagnostic.severity is Severity.INFO
        assert "'left'" in diagnostic.message
        assert "'right'" in diagnostic.message

    def test_guarded_edges_do_not_overlap(self):
        # The hotel automaton branches on guards; no certain overlap.
        module = Module(policies={"phi": library.hotel_policy(
            {1}, 45, 100)})
        assert lint_module(module, select=["SUS012"]) == []


class TestContractRules:
    def test_dead_branch_sus020(self):
        diagnostics = lint_file(FIXTURES / "dead_branch.sus",
                                select=["SUS020"])
        (diagnostic,) = diagnostics
        assert "?Never" in diagnostic.message
        # The span points at the `Never` token inside the body.
        assert diagnostic.span.line == 3
        assert diagnostic.span.column == 36

    def test_service_side_extra_inputs_are_not_flagged(self):
        # The repository is open-ended: a service accepting more inputs
        # than today's clients send is idiomatic.
        source = """
        client c = open 1 { !Ping }
        service s = (?Ping + ?Unused . !Reply)
        """
        assert "SUS020" not in codes(lint_source(source))

    def test_live_branches_stay_silent(self):
        source = """
        client c = open 1 { !Req . (?Ok + ?No) }
        service s = ?Req ; (!Ok ++ !No)
        """
        assert "SUS020" not in codes(lint_source(source))


class TestCanonRules:
    def test_duplicate_contract_sus050(self):
        diagnostics = lint_file(FIXTURES / "duplicate_contract.sus",
                                select=["SUS050"])
        (diagnostic,) = diagnostics
        assert diagnostic.severity is Severity.INFO
        # The later declaration is reported; the hint names the twin.
        assert diagnostic.declaration == "twin"
        assert "'s1'" in diagnostic.message
        assert "'s1'" in diagnostic.hint

    def test_distinct_contracts_stay_silent(self):
        source = """
        client c = open 1 { !Ping }
        service s1 = ?Ping . !Pong
        service s2 = ?Ping . (!Pong ++ !Nack)
        """
        assert "SUS050" not in codes(lint_source(source))

    def test_duplicate_clients_are_not_flagged(self):
        # SUS050 is about the published repository; identical clients
        # are unremarkable.
        source = """
        client c1 = open 1 { !Ping }
        client c2 = open 2 { !Ping }
        service s = ?Ping
        """
        assert "SUS050" not in codes(lint_source(source))

    def test_non_minimal_contract_sus051(self):
        diagnostics = lint_file(FIXTURES / "non_minimal_contract.sus",
                                select=["SUS051"])
        (diagnostic,) = diagnostics
        assert diagnostic.severity is Severity.INFO
        assert diagnostic.declaration == "fat"
        assert "3 reachable state(s) collapse to 2" in diagnostic.message

    def test_minimal_contract_stays_silent(self):
        source = """
        client c = open 1 { mu k { !Ping . ?Pong . k } }
        service s = mu h { ?Ping . !Pong . h }
        """
        assert "SUS051" not in codes(lint_source(source))

    def test_canon_rules_on_hotel_example(self):
        # The Figure-2 repository publishes ls1/ls3/ls4 with identical
        # projections; the two later ones are flagged as duplicates and
        # every contract is already minimal.
        diagnostics = lint_file(
            Path(__file__).parents[2] / "examples" / "hotel_booking.sus",
            select=["SUS050", "SUS051"])
        assert [(d.code, d.declaration) for d in diagnostics] == [
            ("SUS050", "ls3"), ("SUS050", "ls4")]


class TestNetworkRules:
    def test_doomed_request_sus030(self):
        diagnostics = lint_file(FIXTURES / "doomed_request.sus",
                                select=["SUS030"])
        (diagnostic,) = diagnostics
        assert diagnostic.severity is Severity.ERROR
        assert diagnostic.declaration == "c"
        assert diagnostic.span.line == 3       # the `1` after `open`
        assert diagnostic.span.column == 17

    def test_module_without_services_dooms_every_request(self):
        module = Module(clients={"c": parse("open 1 { !Ping }")})
        (diagnostic,) = lint_module(module, select=["SUS030"])
        assert "declares no services" in diagnostic.message

    def test_servable_request_is_silent(self):
        module = Module(clients={"c": parse("open 1 { !Ping }")},
                        services={"s": parse("?Ping")})
        assert lint_module(module, select=["SUS030"]) == []

    def test_unclosed_residual_sus031(self):
        module = Module(clients={"stuck": ClosePending("9", None)},
                        services={"frame": FrameClosePending(
                            library.forbid("rm"))})
        diagnostics = lint_module(module, select=["SUS031"])
        assert len(diagnostics) == 2
        assert all(d.severity is Severity.ERROR for d in diagnostics)

    def test_parsed_terms_never_contain_residuals(self):
        assert lint_file(FIXTURES / "dead_branch.sus",
                         select=["SUS031"]) == []


class TestEngine:
    def test_diagnostics_come_back_in_source_order(self):
        diagnostics = lint_file(
            Path(__file__).parents[2] / "examples" / "broken_booking.sus")
        positions = [(d.span.line, d.span.column) for d in diagnostics]
        assert positions == sorted(positions)

    def test_min_severity_keeps_only_error_rules(self):
        diagnostics = lint_file(FIXTURES / "vacuous_policy.sus",
                                min_severity=Severity.ERROR)
        assert diagnostics == []

    def test_ignore_drops_a_rule(self):
        diagnostics = lint_file(FIXTURES / "vacuous_policy.sus",
                                ignore=["SUS011"])
        assert "SUS011" not in codes(diagnostics)

    def test_unknown_code_is_an_error(self):
        from repro.core.errors import ReproError
        with pytest.raises(ReproError, match="SUS999"):
            lint_file(FIXTURES / "vacuous_policy.sus", select=["SUS999"])

    def test_fire_counts_reach_the_metrics_registry(self):
        from repro.observability.runtime import telemetry_session
        with telemetry_session() as tel:
            lint_file(FIXTURES / "vacuous_policy.sus")
            counters = tel.metrics.snapshot()["counters"]
        assert counters["lint.fired{rule=SUS011}"] == 1
        assert counters["lint.fired{rule=SUS030}"] == 0
        assert counters["lint.modules"] == 1

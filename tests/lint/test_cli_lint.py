"""End-to-end tests for ``repro lint`` (and the ``check`` wiring)."""

import json
from pathlib import Path

import pytest

from repro.cli import main

ROOT = Path(__file__).parents[2]
EXAMPLES = ROOT / "examples"
FIXTURES = Path(__file__).parent / "fixtures"

HOTEL = str(EXAMPLES / "hotel_booking.sus")
LAMBDA = str(EXAMPLES / "lambda_module.sus")
BROKEN = str(EXAMPLES / "broken_booking.sus")

#: What the checked-in broken example must report (the acceptance
#: criterion of the lint engine): exactly these codes, at these spans.
#: SUS041 fires twice at the same span (once per refusing candidate).
BROKEN_EXPECTED = {
    ("SUS011", 26, 8),
    ("SUS020", 28, 69),
    ("SUS030", 29, 19),
    ("SUS040", 40, 8),
    ("SUS041", 29, 19),
    ("SUS042", 29, 8),
}


class TestLintText:
    def test_clean_examples_exit_zero(self, capsys):
        assert main(["lint", HOTEL, LAMBDA]) == 0
        out = capsys.readouterr().out
        assert "2 module(s) linted" in out
        assert "error" not in out.splitlines()[-1]

    def test_clean_examples_survive_strict(self):
        # INFO diagnostics (hotel's ls2) never affect the exit code.
        assert main(["lint", "--strict", HOTEL, LAMBDA]) == 0

    def test_broken_example_reports_expected_set(self, capsys):
        assert main(["lint", BROKEN]) == 1
        out = capsys.readouterr().out
        found = set()
        fired = []
        for line in out.splitlines():
            if not line.startswith(BROKEN):
                continue
            location, _, rest = line.removeprefix(BROKEN + ":").partition(": ")
            line_no, col_no = location.split(":")
            code = rest.split()[1].rstrip(":")
            found.add((code, int(line_no), int(col_no)))
            fired.append(code)
        assert found == BROKEN_EXPECTED
        # Both refusing candidates (lbr, ls1) are reported for request 9.
        assert fired.count("SUS041") == 2
        # The SUS040 message carries the offending history.
        assert "@sgn(1)" in out

    def test_warnings_fail_only_under_strict(self):
        fixture = str(FIXTURES / "vacuous_policy.sus")
        assert main(["lint", fixture]) == 0
        assert main(["lint", "--strict", fixture]) == 1

    def test_select_and_ignore(self, capsys):
        assert main(["lint", "--select", "SUS011,SUS020", BROKEN]) == 0
        out = capsys.readouterr().out
        assert "SUS030" not in out and "SUS011" in out
        assert main(["lint", "--ignore", "SUS030", "--strict", BROKEN]) == 1
        assert "SUS030" not in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("SUS001", "SUS011", "SUS020", "SUS030", "SUS031"):
            assert code in out


class TestLintJson:
    def test_broken_example_sarif(self, capsys):
        assert main(["lint", "--format", "json", BROKEN]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"
        (run,) = document["runs"]
        assert run["tool"]["driver"]["name"] == "suslint"
        found = set()
        for result in run["results"]:
            region = (result["locations"][0]["physicalLocation"]["region"])
            found.add((result["ruleId"], region["startLine"],
                       region["startColumn"]))
        assert found == BROKEN_EXPECTED
        levels = {r["ruleId"]: r["level"] for r in run["results"]}
        assert levels["SUS030"] == "error"
        assert levels["SUS011"] == "warning"

    def test_json_output_is_pure(self, capsys):
        # Machine output must stay parseable: no summary line mixed in.
        main(["lint", "--format", "json", HOTEL])
        json.loads(capsys.readouterr().out)


class TestStats:
    def test_fire_counts_show_under_stats(self, capsys):
        assert main(["--stats", "lint", BROKEN]) == 1
        out = capsys.readouterr().out
        assert "lint.fired{rule=SUS011}" in out
        assert "lint.fired{rule=SUS030}" in out
        assert "lint.modules" in out


class TestCheckWiring:
    def test_check_runs_error_rules(self, capsys):
        assert main(["check", str(FIXTURES / "doomed_request.sus")]) == 1
        captured = capsys.readouterr()
        assert "SUS030" in captured.err
        assert "SUS030" not in captured.out

    def test_check_ignores_warning_rules(self):
        # vacuous_policy only trips a warning; check stays green.
        assert main(["check", str(FIXTURES / "vacuous_policy.sus")]) == 0

    def test_check_clean_example(self):
        assert main(["check", HOTEL]) == 0


class TestErrorPaths:
    def test_parse_error_carries_the_path(self, tmp_path, capsys):
        bad = tmp_path / "bad.sus"
        bad.write_text("client broken = open 1 { !A . }\n")
        assert main(["lint", str(bad)]) == 2
        err = capsys.readouterr().err
        assert err.startswith(f"error: {bad}:1:")

    def test_invalid_toml_is_a_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text("not valid toml [[[")
        assert main(["check", str(bad)]) == 2
        assert "invalid TOML" in capsys.readouterr().err

    def test_missing_file_is_a_usage_error(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "ghost.sus")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_no_modules_is_a_usage_error(self, capsys):
        assert main(["lint"]) == 2
        assert "at least one module" in capsys.readouterr().err

    def test_unknown_rule_code_is_a_usage_error(self, capsys):
        assert main(["lint", "--select", "SUS999", HOTEL]) == 2
        assert "SUS999" in capsys.readouterr().err

    @pytest.mark.parametrize("fixture", sorted(
        p.name for p in FIXTURES.glob("*.sus")))
    def test_every_fixture_parses_through_the_cli(self, fixture):
        # Fixtures are lint-dirty but syntactically valid: never exit 2.
        assert main(["lint", str(FIXTURES / fixture)]) in (0, 1)

"""Shared fixtures: the paper's Figure 2 network and friends."""

from __future__ import annotations

import pytest

from repro.paper import figure2


@pytest.fixture(scope="session")
def repo():
    """The repository R of Figure 2 (broker + four hotels)."""
    return figure2.repository()


@pytest.fixture(scope="session")
def c1():
    """Client C1 of Figure 2."""
    return figure2.client_1()


@pytest.fixture(scope="session")
def c2():
    """Client C2 of Figure 2."""
    return figure2.client_2()


@pytest.fixture(scope="session")
def broker_term():
    """The broker Br of Figure 2."""
    return figure2.broker()


@pytest.fixture(scope="session")
def phi1():
    """φ({1}, 45, 100)."""
    return figure2.policy_c1()


@pytest.fixture(scope="session")
def phi2():
    """φ({1, 3}, 40, 70)."""
    return figure2.policy_c2()

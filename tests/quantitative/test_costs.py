"""Tests for cost models and worst-case pricing."""

import pytest

from repro.core.actions import Event, FrameOpen
from repro.core.plans import Plan
from repro.core.semantics import step
from repro.core.syntax import (Var, event, external, mu, receive, request,
                               send, seq)
from repro.core.validity import History
from repro.contracts.lts import build_lts
from repro.network.repository import Repository
from repro.analysis.session_product import assemble
from repro.policies.library import forbid
from repro.quantitative.costs import (CostModel, UNBOUNDED, history_cost,
                                      trace_cost, worst_case_cost)

MODEL = CostModel.of({"read": 2, "write": 5})


class TestCostModel:
    def test_explicit_and_default(self):
        assert MODEL.cost_of(Event("read")) == 2
        assert MODEL.cost_of(Event("other")) == 0

    def test_nonzero_default(self):
        model = CostModel.of({"read": 2}, default=1)
        assert model.cost_of(Event("other")) == 1

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            CostModel.of({"read": -1})
        with pytest.raises(ValueError):
            CostModel.of({}, default=-2)

    def test_names(self):
        assert MODEL.names() == {"read", "write"}

    def test_trace_and_history_cost(self):
        events = [Event("read"), Event("write"), Event("noop")]
        assert trace_cost(MODEL, events) == 7
        history = History([FrameOpen(forbid("x"))] + events)
        assert history_cost(MODEL, history) == 7


class TestWorstCaseCost:
    def test_straight_line(self):
        term = seq(event("read"), event("write"))
        lts = build_lts(term, step)
        assert worst_case_cost(MODEL, lts) == 7

    def test_branching_takes_the_maximum(self):
        term = external(("cheap", event("read")),
                        ("dear", seq(event("write"), event("write"))))
        lts = build_lts(term, step)
        assert worst_case_cost(MODEL, lts) == 10

    def test_free_cycle_is_finite(self):
        term = mu("h", external(("go", seq(event("noop"),
                                           send("ack", Var("h")))),
                                ("stop", event("write"))))
        lts = build_lts(term, step)
        assert worst_case_cost(MODEL, lts) == 5

    def test_costly_cycle_is_unbounded(self):
        term = mu("h", external(("go", seq(event("read"),
                                           send("ack", Var("h")))),
                                ("stop", seq())))
        lts = build_lts(term, step)
        assert worst_case_cost(MODEL, lts) == UNBOUNDED

    def test_session_product_labels_priced(self):
        client = request("r", None, seq(send("go"), receive("done")))
        repo = Repository({"srv": receive("go", seq(event("write"),
                                                    send("done")))})
        lts = assemble(client, Plan.single("r", "srv"), repo)
        assert worst_case_cost(MODEL, lts) == 5

    def test_empty_behaviour_costs_nothing(self):
        lts = build_lts(seq(), step)
        assert worst_case_cost(MODEL, lts) == 0

"""Tests for cost-aware plan synthesis."""

from repro.core.plans import Plan
from repro.core.syntax import event, external, receive, request, send, seq
from repro.network.repository import Repository
from repro.quantitative.costs import CostModel, UNBOUNDED
from repro.quantitative.planning import (cheapest_valid_plan, plan_cost,
                                         priced_valid_plans)

MODEL = CostModel.of({"io": 1, "crypto": 10})


def make_scenario():
    client = request("r", None, seq(send("go"),
                                    external(("done", seq()))))
    cheap = receive("go", seq(event("io"), send("done")))
    pricey = receive("go", seq(event("crypto"), event("io"),
                               send("done")))
    broken = receive("go", send("oops"))
    repo = Repository({"cheap": cheap, "pricey": pricey,
                       "broken": broken})
    return client, repo


class TestPlanCost:
    def test_costs_differ_by_service(self):
        client, repo = make_scenario()
        assert plan_cost(client, Plan.single("r", "cheap"), repo,
                         MODEL) == 1
        assert plan_cost(client, Plan.single("r", "pricey"), repo,
                         MODEL) == 11


class TestRanking:
    def test_priced_plans_sorted_cheapest_first(self):
        client, repo = make_scenario()
        priced = priced_valid_plans(client, repo, MODEL)
        assert [entry.cost for entry in priced] == [1, 11]
        assert priced[0].plan == Plan.single("r", "cheap")
        # The non-compliant service never shows up.
        assert all(entry.plan.lookup("r") != "broken"
                   for entry in priced)

    def test_cheapest_valid_plan(self):
        client, repo = make_scenario()
        best = cheapest_valid_plan(client, repo, MODEL)
        assert best is not None
        assert best.plan == Plan.single("r", "cheap")
        assert best.cost == 1
        assert "@ 1" in str(best)

    def test_no_valid_plan_gives_none(self):
        client = request("r", None, seq(send("go"),
                                        external(("never", seq()))))
        repo = Repository({"broken": receive("go", send("oops"))})
        assert cheapest_valid_plan(client, repo, MODEL) is None

    def test_unbounded_plan_cost(self):
        # A recursive client/service pair can pump io forever: the
        # worst-case price of that plan is unbounded.
        from repro.core.syntax import Var, internal, mu
        pump_client = request("r", None, mu("h", internal(
            ("go", receive("ok", Var("h"))), ("quit", seq()))))
        pump_service = mu("k", external(
            ("go", seq(event("io"), send("ok", Var("k")))),
            ("quit", seq())))
        repo = Repository({"pump": pump_service})
        cost = plan_cost(pump_client, Plan.single("r", "pump"), repo,
                         MODEL)
        assert cost == UNBOUNDED

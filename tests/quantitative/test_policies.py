"""Tests for budget policies compiled to usage automata."""

import pytest

from repro.core.actions import Event, FrameClose, FrameOpen
from repro.core.plans import Plan
from repro.core.syntax import Framing, event, receive, request, send, seq
from repro.core.validity import History, is_valid
from repro.network.repository import Repository
from repro.analysis.planner import analyze_plan
from repro.quantitative.costs import CostModel
from repro.quantitative.policies import (budget_automaton, budget_policy,
                                         cost_model_policy)


class TestCompilation:
    def test_state_count(self):
        automaton = budget_automaton("cap", {"hit": 1}, 3)
        # spent_0..spent_3 + overrun
        assert len(automaton.states) == 5
        assert automaton.offending == {"overrun"}

    def test_zero_cost_events_ignored(self):
        automaton = budget_automaton("cap", {"free": 0, "hit": 1}, 1)
        names = {edge.pattern.event for edge in automaton.edges}
        assert names == {"hit"}

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            budget_automaton("cap", {"hit": -1}, 3)
        with pytest.raises(ValueError):
            budget_automaton("cap", {"hit": 1}, -1)

    def test_cost_model_policy_requires_integer_zero_default(self):
        with pytest.raises(ValueError):
            cost_model_policy("cap", CostModel.of({"a": 1}, default=1), 3)
        with pytest.raises(ValueError):
            cost_model_policy("cap", CostModel.of({"a": 1.5}), 3)
        policy = cost_model_policy("cap", CostModel.of({"a": 2}), 3)
        assert policy.accepts([Event("a"), Event("a")])


class TestEnforcement:
    POLICY = budget_policy("cap", {"read": 2, "write": 5}, 6)

    def test_within_budget(self):
        assert self.POLICY.respects([Event("read")] * 3)   # exactly 6

    def test_over_budget(self):
        assert self.POLICY.accepts([Event("read"), Event("write")])

    def test_uncharged_events_are_free(self):
        assert self.POLICY.respects([Event("noop")] * 100)

    def test_overrun_is_absorbing(self):
        trace = [Event("write"), Event("write"), Event("noop")]
        assert self.POLICY.accepts(trace)

    def test_validity_integration(self):
        good = History([FrameOpen(self.POLICY), Event("read"),
                        Event("read"), FrameClose(self.POLICY)])
        bad = good.extend([FrameOpen(self.POLICY), Event("read")])
        # History dependence: the re-opened budget counts the past reads.
        assert is_valid(good)
        assert not is_valid(bad.extend([Event("read"),
                                        Event("read")]))


class TestStaticChecking:
    def test_planner_enforces_budgets(self):
        cap = budget_policy("cap", {"io": 1}, 1)
        client = request("r", cap, seq(send("go"), receive("done")))
        thrifty = receive("go", seq(event("io"), send("done")))
        wasteful = receive("go", seq(event("io"), event("io"),
                                     send("done")))
        repo = Repository({"thrifty": thrifty, "wasteful": wasteful})
        ok = analyze_plan(client, Plan.single("r", "thrifty"), repo)
        ko = analyze_plan(client, Plan.single("r", "wasteful"), repo)
        assert ok.valid
        assert not ko.valid and not ko.secure

    def test_bpa_checker_enforces_budgets(self):
        from repro.bpa.modelcheck import check_validity_bpa
        cap = budget_policy("cap", {"io": 1}, 1)
        assert check_validity_bpa(Framing(cap, event("io"))).valid
        assert not check_validity_bpa(
            Framing(cap, seq(event("io"), event("io")))).valid

"""Tests for the fluent automaton builder."""

import pytest

from repro.core.actions import Event
from repro.core.errors import PolicyDefinitionError
from repro.policies.builder import AutomatonBuilder
from repro.policies.guards import gt


class TestBuilder:
    def test_minimal_automaton(self):
        automaton = (AutomatonBuilder("m")
                     .state("s", initial=True)
                     .build())
        assert automaton.initial == "s"
        assert automaton.offending == frozenset()

    def test_edges_declare_states_implicitly(self):
        automaton = (AutomatonBuilder("m")
                     .state("a", initial=True)
                     .edge("a", "b", "go")
                     .edge("b", "c", "go")
                     .build())
        assert automaton.states == {"a", "b", "c"}

    def test_missing_initial_state_rejected(self):
        with pytest.raises(PolicyDefinitionError, match="no initial"):
            AutomatonBuilder("m").state("a").build()

    def test_two_initial_states_rejected(self):
        builder = AutomatonBuilder("m").state("a", initial=True)
        with pytest.raises(PolicyDefinitionError, match="two initial"):
            builder.state("b", initial=True)

    def test_redeclaring_same_initial_is_fine(self):
        automaton = (AutomatonBuilder("m")
                     .state("a", initial=True)
                     .state("a", initial=True)
                     .build())
        assert automaton.initial == "a"

    def test_parameters_and_guards_flow_through(self):
        automaton = (AutomatonBuilder("m", parameters=("cap",))
                     .state("a", initial=True)
                     .state("bad", offending=True)
                     .edge("a", "bad", "use", binders=("n",),
                           guard=gt("n", "cap"))
                     .build())
        policy = automaton.instantiate(cap=10)
        assert policy.accepts([Event("use", (11,))])
        assert policy.respects([Event("use", (10,))])

    def test_variables_flow_through(self):
        automaton = (AutomatonBuilder("m", variables=("x",))
                     .state("a", initial=True)
                     .state("bad", offending=True)
                     .edge("a", "b", "lock", binders=("x",))
                     .edge("b", "bad", "lock", binders=("x",))
                     .build())
        policy = automaton.instantiate()
        assert policy.accepts([Event("lock", (1,)), Event("lock", (1,))])
        assert policy.respects([Event("lock", (1,)), Event("lock", (2,))])

    def test_builder_is_chainable(self):
        builder = AutomatonBuilder("m")
        assert builder.state("a", initial=True) is builder
        assert builder.edge("a", "a", "tick") is builder

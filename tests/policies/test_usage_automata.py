"""Tests for usage automata: matching, instantiation, runs, witnesses."""

import pytest

from repro.core.actions import Event
from repro.core.errors import PolicyDefinitionError
from repro.policies.builder import AutomatonBuilder
from repro.policies.guards import le, member, ne, not_member
from repro.policies.usage_automata import (Edge, EventPattern, PolicyRunner,
                                           UsageAutomaton, assignments,
                                           STAR)


def simple_automaton(**kwargs):
    """q0 --@hit--> bad, everything else self-loops."""
    return UsageAutomaton(
        name="simple",
        states=frozenset({"q0", "bad"}),
        initial="q0",
        offending=frozenset({"bad"}),
        edges=(Edge("q0", EventPattern("hit"), "bad"),),
        **kwargs)


class TestDefinitionValidation:
    def test_unknown_initial_state(self):
        with pytest.raises(PolicyDefinitionError, match="initial"):
            UsageAutomaton("x", frozenset({"a"}), "nope", frozenset(), ())

    def test_unknown_offending_state(self):
        with pytest.raises(PolicyDefinitionError, match="offending"):
            UsageAutomaton("x", frozenset({"a"}), "a",
                           frozenset({"ghost"}), ())

    def test_edge_with_unknown_state(self):
        with pytest.raises(PolicyDefinitionError, match="unknown states"):
            UsageAutomaton("x", frozenset({"a"}), "a", frozenset(),
                           (Edge("a", EventPattern("e"), "ghost"),))

    def test_guard_with_unbound_name(self):
        with pytest.raises(PolicyDefinitionError, match="unbound"):
            UsageAutomaton(
                "x", frozenset({"a", "b"}), "a", frozenset(),
                (Edge("a", EventPattern("e", ("v",), le("w", 3)), "b"),))

    def test_parameter_variable_name_clash(self):
        with pytest.raises(PolicyDefinitionError, match="distinct"):
            UsageAutomaton("x", frozenset({"a"}), "a", frozenset(), (),
                           parameters=("n",), variables=("n",))


class TestInstantiation:
    def test_missing_argument(self):
        automaton = simple_automaton(parameters=("p",))
        with pytest.raises(PolicyDefinitionError, match="missing"):
            automaton.instantiate()

    def test_unexpected_argument(self):
        automaton = simple_automaton()
        with pytest.raises(PolicyDefinitionError, match="unexpected"):
            automaton.instantiate(bogus=1)

    def test_sets_normalised_to_frozenset(self):
        automaton = simple_automaton(parameters=("bl",))
        policy = automaton.instantiate(bl={1, 2})
        assert policy.environment()["bl"] == frozenset({1, 2})

    def test_policy_equality_by_name_and_arguments(self):
        automaton = simple_automaton(parameters=("p",))
        assert automaton.instantiate(p=1) == automaton.instantiate(p=1)
        assert automaton.instantiate(p=1) != automaton.instantiate(p=2)

    def test_policies_are_hashable(self):
        automaton = simple_automaton(parameters=("p",))
        policies = {automaton.instantiate(p=1), automaton.instantiate(p=1)}
        assert len(policies) == 1


class TestConcreteRuns:
    def test_matching_edge_fires(self):
        policy = simple_automaton().instantiate()
        assert policy.accepts([Event("hit")])

    def test_unmatched_event_self_loops(self):
        policy = simple_automaton().instantiate()
        assert policy.respects([Event("miss"), Event("other")])

    def test_offending_is_absorbing(self):
        policy = simple_automaton().instantiate()
        assert policy.accepts([Event("hit"), Event("miss")])

    def test_first_violation_index(self):
        policy = simple_automaton().instantiate()
        assert policy.first_violation(
            [Event("a"), Event("hit"), Event("b")]) == 1
        assert policy.first_violation([Event("a")]) is None

    def test_binderless_pattern_is_payload_agnostic(self):
        policy = simple_automaton().instantiate()
        assert policy.accepts([Event("hit", (1, 2, 3))])

    def test_bindered_pattern_requires_exact_arity(self):
        automaton = (AutomatonBuilder("arity")
                     .state("q0", initial=True)
                     .state("bad", offending=True)
                     .edge("q0", "bad", "e", binders=("x",))
                     .build())
        policy = automaton.instantiate()
        assert policy.accepts([Event("e", (7,))])
        assert policy.respects([Event("e")])
        assert policy.respects([Event("e", (7, 8))])

    def test_guard_filters_matches(self):
        automaton = (AutomatonBuilder("guarded", parameters=("limit",))
                     .state("q0", initial=True)
                     .state("bad", offending=True)
                     .edge("q0", "bad", "spend", binders=("amount",),
                           guard=le("limit", "amount"))
                     .build())
        policy = automaton.instantiate(limit=100)
        assert policy.respects([Event("spend", (99,))])
        assert policy.accepts([Event("spend", (100,))])


class TestQuantifiedVariables:
    def make_same_resource(self):
        return (AutomatonBuilder("rw", variables=("x",))
                .state("q0", initial=True)
                .state("bad", offending=True)
                .edge("q0", "q1", "read", binders=("x",))
                .edge("q1", "bad", "write", binders=("x",))
                .build().instantiate())

    def test_same_resource_violation(self):
        policy = self.make_same_resource()
        assert policy.accepts([Event("read", (1,)), Event("write", (1,))])

    def test_different_resource_is_fine(self):
        policy = self.make_same_resource()
        assert policy.respects([Event("read", (1,)), Event("write", (2,))])

    def test_witness_found_among_many_values(self):
        policy = self.make_same_resource()
        trace = [Event("read", (1,)), Event("read", (2,)),
                 Event("write", (3,)), Event("write", (2,))]
        assert policy.accepts(trace)  # witness x = 2

    def test_late_first_occurrence(self):
        # The witness value appears only late in the trace.
        policy = self.make_same_resource()
        trace = [Event("write", (9,)), Event("read", (9,)),
                 Event("write", (9,))]
        assert policy.accepts(trace)

    def test_two_variable_chinese_wall(self):
        from repro.policies.library import chinese_wall
        wall = chinese_wall("access")
        assert wall.respects([Event("access", ("A",))] * 3)
        assert wall.accepts([Event("access", ("A",)),
                             Event("access", ("B",))])


class TestRunnerInternals:
    def test_runner_forks_on_new_values(self):
        policy = TestQuantifiedVariables().make_same_resource()
        runner = PolicyRunner(policy)
        runner.step(Event("read", (1,)))
        table = runner.current_states()
        values = {dict(sigma)["x"] for sigma in table}
        assert 1 in values and STAR in values

    def test_runner_agrees_with_eager_enumeration(self):
        policy = TestQuantifiedVariables().make_same_resource()
        traces = [
            [Event("read", (1,)), Event("write", (1,))],
            [Event("read", (1,)), Event("write", (2,))],
            [Event("write", (1,)), Event("read", (1,))],
            [Event("read", (1,)), Event("read", (2,)),
             Event("write", (2,))],
        ]
        automaton = policy.automaton
        for trace in traces:
            # Eager: any assignment σ whose concrete run hits `bad`.
            universe = {p for e in trace for p in e.params}
            eager = False
            for sigma in assignments(automaton.variables, universe):
                env = {**policy.environment(), **sigma}
                states = {automaton.initial}
                for item in trace:
                    states = frozenset().union(
                        *(automaton.step_concrete(s, item, env)
                          for s in states))
                if states & automaton.offending:
                    eager = True
                    break
            assert policy.accepts(trace) == eager

    def test_freeze_roundtrip(self):
        policy = TestQuantifiedVariables().make_same_resource()
        runner = PolicyRunner(policy)
        runner.step(Event("read", (1,)))
        frozen = runner.freeze()
        revived = PolicyRunner.from_frozen(policy, frozen)
        runner.step(Event("write", (1,)))
        revived.step(Event("write", (1,)))
        assert runner.in_violation == revived.in_violation is True

    def test_frozen_states_hash_consistently(self):
        policy = TestQuantifiedVariables().make_same_resource()
        a, b = PolicyRunner(policy), PolicyRunner(policy)
        for runner in (a, b):
            runner.step(Event("read", (1,)))
        assert a.freeze() == b.freeze()
        assert hash(a.freeze()) == hash(b.freeze())

    def test_fork_is_independent_of_the_original(self):
        policy = TestQuantifiedVariables().make_same_resource()
        runner = PolicyRunner(policy)
        runner.step(Event("read", (1,)))
        fork = runner.fork()
        assert fork.freeze() == runner.freeze()
        fork.step(Event("write", (1,)))
        assert fork.in_violation and not runner.in_violation
        # The original keeps evolving on its own, unaffected by the fork.
        runner.step(Event("write", (2,)))
        assert not runner.in_violation

    def test_fork_equals_replaying_the_whole_trace(self):
        policy = TestQuantifiedVariables().make_same_resource()
        trace = [Event("read", (1,)), Event("read", (2,)),
                 Event("write", (3,))]
        runner = PolicyRunner(policy)
        for item in trace:
            runner.step(item)
        replayed = PolicyRunner(policy)
        for item in trace:
            replayed.step(item)
        assert runner.fork().freeze() == replayed.freeze()


class TestDotExport:
    def test_dot_mentions_states_and_edges(self):
        automaton = simple_automaton()
        dot = automaton.to_dot()
        assert "digraph" in dot
        assert '"q0" -> "bad"' in dot
        assert "doublecircle" in dot  # offending rendering

"""Tests for the declarative guard expression language."""

import pytest

from repro.core.errors import PolicyDefinitionError
from repro.policies.guards import (TRUE, Compare, Const, Name, TrueGuard,
                                   eq, ge, gt, le, lt, member, ne,
                                   not_member)


class TestTerms:
    def test_const_ignores_environment(self):
        assert Const(5).value({"x": 1}) == 5

    def test_name_reads_environment(self):
        assert Name("x").value({"x": 42}) == 42

    def test_unbound_name_raises(self):
        with pytest.raises(PolicyDefinitionError, match="unbound"):
            Name("missing").value({})

    def test_names_collection(self):
        guard = le("y", "p")
        assert guard.names() == {"y", "p"}
        assert le("y", Const(3)).names() == {"y"}


class TestComparisons:
    ENV = {"x": 3, "y": 5, "bl": frozenset({1, 2})}

    @pytest.mark.parametrize("guard,expected", [
        (eq("x", 3), True),
        (eq("x", "y"), False),
        (ne("x", "y"), True),
        (lt("x", "y"), True),
        (le("x", 3), True),
        (gt("y", "x"), True),
        (ge("x", 4), False),
        (member(1, "bl"), True),
        (member(3, "bl"), False),
        (not_member(3, "bl"), True),
    ])
    def test_evaluation(self, guard, expected):
        assert guard.evaluate(self.ENV) is expected

    def test_unknown_operator_rejected(self):
        with pytest.raises(PolicyDefinitionError):
            Compare("~=", Const(1), Const(2))

    def test_string_operands_become_names(self):
        guard = eq("x", "y")
        assert isinstance(guard.left, Name)
        assert isinstance(guard.right, Name)

    def test_non_string_operands_become_constants(self):
        guard = eq(Const(1), 2)
        assert isinstance(guard.right, Const)


class TestBooleanConnectives:
    ENV = {"a": 1, "b": 2}

    def test_and(self):
        guard = eq("a", 1) & eq("b", 2)
        assert guard.evaluate(self.ENV)
        assert not (eq("a", 1) & eq("b", 3)).evaluate(self.ENV)

    def test_or(self):
        assert (eq("a", 9) | eq("b", 2)).evaluate(self.ENV)
        assert not (eq("a", 9) | eq("b", 9)).evaluate(self.ENV)

    def test_not(self):
        assert (~eq("a", 9)).evaluate(self.ENV)

    def test_true_guard(self):
        assert TRUE.evaluate({})
        assert TRUE.names() == frozenset()
        assert TrueGuard() == TRUE

    def test_connectives_collect_names(self):
        guard = (eq("a", 1) & ~eq("b", 2)) | eq("c", 3)
        assert guard.names() == {"a", "b", "c"}


class TestRendering:
    def test_compare_str(self):
        assert str(le("y", "p")) == "y <= p"
        assert "not in" in str(not_member("x", "bl"))

    def test_connective_str(self):
        text = str(eq("a", 1) & eq("b", 2))
        assert "and" in text

"""Tests for the policy library, including the Figure 1 automaton."""

import pytest

from repro.core.actions import Event
from repro.policies.library import (at_most, blacklist, chinese_wall,
                                    forbid, hotel_policy,
                                    hotel_policy_automaton, never_after,
                                    require_before)


def hotel_trace(identifier, price, rating):
    return (Event("sgn", (identifier,)), Event("p", (price,)),
            Event("ta", (rating,)))


class TestFigure1Automaton:
    """The hotel policy φ(bl, p, t) of Figure 1."""

    def test_shape(self):
        automaton = hotel_policy_automaton()
        assert automaton.parameters == ("bl", "p", "t")
        assert automaton.initial == "q1"
        assert automaton.offending == {"q6"}
        assert len(automaton.states) == 6

    def test_blacklisted_hotel_violates(self):
        phi = hotel_policy({1}, 45, 100)
        assert phi.accepts(hotel_trace(1, 45, 80))

    def test_violation_happens_at_signing(self):
        phi = hotel_policy({1}, 45, 100)
        assert phi.first_violation(hotel_trace(1, 45, 80)) == 0

    def test_cheap_hotel_is_fine_whatever_the_rating(self):
        phi = hotel_policy({9}, 45, 100)
        assert phi.respects(hotel_trace(2, 45, 0))

    def test_expensive_hotel_needs_good_rating(self):
        phi = hotel_policy({9}, 45, 100)
        assert phi.respects(hotel_trace(2, 46, 100))
        assert phi.accepts(hotel_trace(2, 46, 99))

    def test_thresholds_are_inclusive_exactly_as_figure1(self):
        # y ≤ p is allowed, y > p moves on; z ≥ t is allowed, z < t bad.
        phi = hotel_policy(set(), 45, 100)
        assert phi.respects(hotel_trace(2, 45, 0))      # price at bound
        assert phi.respects(hotel_trace(2, 46, 100))    # rating at bound

    def test_events_before_signing_self_loop(self):
        phi = hotel_policy({1}, 45, 100)
        trace = (Event("noise"),) + hotel_trace(1, 45, 80)
        assert phi.accepts(trace)

    @pytest.mark.parametrize("identifier,price,rating,respects", [
        (1, 45, 80, False),   # S1 vs φ1: black-listed
        (3, 90, 100, True),   # S3 vs φ1: rating saves it
        (4, 50, 90, False),   # S4 vs φ1: both thresholds busted
        (2, 70, 100, True),   # S2 vs φ1: fine (its sin is compliance)
    ])
    def test_section2_verdicts_for_phi1(self, identifier, price, rating,
                                        respects):
        phi1 = hotel_policy({1}, 45, 100)
        assert phi1.respects(hotel_trace(identifier, price,
                                         rating)) is respects

    @pytest.mark.parametrize("identifier,price,rating,respects", [
        (1, 45, 80, False),   # black-listed
        (3, 90, 100, False),  # black-listed
        (4, 50, 90, True),
        (2, 70, 100, True),
    ])
    def test_section2_verdicts_for_phi2(self, identifier, price, rating,
                                        respects):
        phi2 = hotel_policy({1, 3}, 40, 70)
        assert phi2.respects(hotel_trace(identifier, price,
                                         rating)) is respects


class TestNeverAfter:
    def test_order_matters(self):
        policy = never_after("read", "write")
        assert policy.accepts([Event("read"), Event("write")])
        assert policy.respects([Event("write"), Event("read")])

    def test_same_resource_variant(self):
        policy = never_after("read", "write", same_resource=True)
        assert policy.accepts([Event("read", (1,)), Event("write", (1,))])
        assert policy.respects([Event("read", (1,)), Event("write", (2,))])


class TestForbid:
    def test_forbidden_event(self):
        policy = forbid("rm")
        assert policy.accepts([Event("rm")])
        assert policy.respects([Event("ls")])


class TestBlacklist:
    def test_membership(self):
        policy = blacklist("visit", {"evil.example"})
        assert policy.accepts([Event("visit", ("evil.example",))])
        assert policy.respects([Event("visit", ("good.example",))])


class TestAtMost:
    def test_counting(self):
        policy = at_most("retry", 2)
        assert policy.respects([Event("retry")] * 2)
        assert policy.accepts([Event("retry")] * 3)

    def test_zero_bound(self):
        policy = at_most("retry", 0)
        assert policy.accepts([Event("retry")])
        assert policy.respects([])

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            at_most("retry", -1)

    def test_interleaved_events_do_not_count(self):
        policy = at_most("retry", 1)
        assert policy.respects([Event("retry"), Event("other")])
        assert policy.accepts([Event("retry"), Event("other"),
                               Event("retry")])


class TestRequireBefore:
    def test_action_without_prerequisite(self):
        policy = require_before("auth", "charge")
        assert policy.accepts([Event("charge")])
        assert policy.respects([Event("auth"), Event("charge")])

    def test_prerequisite_unlocks_forever(self):
        policy = require_before("auth", "charge")
        assert policy.respects([Event("auth"), Event("charge"),
                                Event("charge")])


class TestChineseWall:
    def test_single_dataset_fine(self):
        policy = chinese_wall("access")
        assert policy.respects([Event("access", ("A",))] * 4)

    def test_crossing_the_wall(self):
        policy = chinese_wall("access")
        assert policy.accepts([Event("access", ("A",)),
                               Event("access", ("A",)),
                               Event("access", ("B",))])

"""Tests for policy/automaton JSON serialisation."""

import json

import pytest

from repro.core.actions import Event
from repro.core.errors import PolicyDefinitionError
from repro.policies.guards import (TRUE, And, Const, Name, Not, Or, ge, le,
                                   member)
from repro.policies.library import (at_most, chinese_wall, forbid,
                                    hotel_policy, hotel_policy_automaton,
                                    never_after)
from repro.policies.serialize import (automaton_from_dict,
                                      automaton_to_dict, decode_value,
                                      dumps, encode_value, guard_from_dict,
                                      guard_to_dict, loads,
                                      policy_from_dict, policy_to_dict)


class TestGuardRoundTrip:
    GUARDS = [
        TRUE,
        le("y", "p"),
        member("x", "bl"),
        ge(Const(3), Name("t")),
        And(le("a", 1), Or(member("b", "s"), Not(TRUE))),
    ]

    @pytest.mark.parametrize("guard", GUARDS,
                             ids=[str(i) for i in range(len(GUARDS))])
    def test_round_trip(self, guard):
        assert guard_from_dict(guard_to_dict(guard)) == guard

    def test_unknown_kind_rejected(self):
        with pytest.raises(PolicyDefinitionError):
            guard_from_dict({"kind": "zap"})


class TestValueEncoding:
    @pytest.mark.parametrize("value", [
        1, 4.5, "text", True, None,
        frozenset({1, 2, 3}),
        ("a", 1),
        frozenset({("nested", 1)}),
    ])
    def test_round_trip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_encoded_forms_are_json_safe(self):
        encoded = encode_value(frozenset({1, ("a", 2)}))
        json.dumps(encoded)  # must not raise

    def test_unknown_encoding_rejected(self):
        with pytest.raises(PolicyDefinitionError):
            decode_value({"@mystery": []})

    def test_unserialisable_value_rejected(self):
        with pytest.raises(TypeError):
            encode_value(object())


class TestAutomatonRoundTrip:
    AUTOMATA = [
        hotel_policy_automaton(),
        never_after("read", "write", same_resource=True).automaton,
        forbid("boom").automaton,
        at_most("tick", 3).automaton,
        chinese_wall("access").automaton,
    ]

    @pytest.mark.parametrize("automaton", AUTOMATA,
                             ids=[a.name for a in AUTOMATA])
    def test_round_trip(self, automaton):
        revived = automaton_from_dict(automaton_to_dict(automaton))
        assert revived == automaton

    def test_round_trip_preserves_behaviour(self):
        automaton = hotel_policy_automaton()
        revived = automaton_from_dict(automaton_to_dict(automaton))
        policy = revived.instantiate(bl=frozenset({1}), p=45, t=100)
        assert policy.accepts([Event("sgn", (1,))])
        assert policy.respects([Event("sgn", (2,))])

    def test_validation_runs_on_load(self):
        data = automaton_to_dict(forbid("boom").automaton)
        data["initial"] = "ghost"
        with pytest.raises(PolicyDefinitionError):
            automaton_from_dict(data)


class TestPolicyRoundTrip:
    POLICIES = [
        hotel_policy({1, 3}, 40, 70),
        never_after("a", "b"),
        at_most("tick", 2),
        chinese_wall("access"),
    ]

    @pytest.mark.parametrize("policy", POLICIES,
                             ids=[p.name for p in POLICIES])
    def test_dict_round_trip(self, policy):
        assert policy_from_dict(policy_to_dict(policy)) == policy

    @pytest.mark.parametrize("policy", POLICIES,
                             ids=[p.name for p in POLICIES])
    def test_json_round_trip(self, policy):
        assert loads(dumps(policy)) == policy

    def test_round_trip_preserves_frozenset_arguments(self):
        policy = hotel_policy({1, 3}, 40, 70)
        revived = loads(dumps(policy))
        assert revived.environment()["bl"] == frozenset({1, 3})

    def test_round_trip_preserves_verdicts(self):
        policy = hotel_policy({1}, 45, 100)
        revived = loads(dumps(policy))
        trace = (Event("sgn", (4,)), Event("p", (50,)),
                 Event("ta", (90,)))
        assert policy.accepts(trace) == revived.accepts(trace) is True

    def test_revived_policy_hashes_equal(self):
        policy = hotel_policy({1}, 45, 100)
        revived = loads(dumps(policy))
        assert hash(policy) == hash(revived)
        assert len({policy, revived}) == 1

"""Unit tests for the static validity and compliance certifiers.

Both certificates are cross-validated against the pre-existing deciders
(the concrete :class:`ValidityMonitor`, the on-the-fly/eager compliance
engines) and their witnesses must replay concretely.
"""

import pytest

from repro.core.compliance import (check_compliance, compliant_coinductive)
from repro.core.errors import StateSpaceLimitError
from repro.core.syntax import event, framing, request, seq, send
from repro.contracts.contract import clear_contract_caches
from repro.policies.library import forbid
from repro.staticcheck import (certify_compliance, certify_validity,
                               clear_staticcheck_caches)
from repro.staticcheck.compliance import _certify as _compliance_memo
from repro.staticcheck.validity import _certify as _validity_memo

from tests.contracts.test_product import TestTheorem1

INVALID = framing(forbid("rm"), seq(event("touch"), event("rm")))


class TestValidity:
    def test_policy_free_terms_are_trivially_valid(self):
        certificate = certify_validity(send("a"))
        assert certificate.valid and bool(certificate)
        assert certificate.explored == 0

    def test_figure2_terms_are_statically_valid(self, c1, c2, broker_term):
        for term in (c1, c2):
            certificate = certify_validity(term)
            assert certificate.valid, term
            assert certificate.explored > 0  # the product was explored
        # The broker attaches no policy: validity is trivial (explored=0).
        broker = certify_validity(broker_term)
        assert broker.valid and broker.explored == 0

    def test_violation_yields_a_replayable_witness(self):
        certificate = certify_validity(INVALID)
        assert not certificate.valid and not bool(certificate)
        witness = certificate.witness
        assert witness is not None
        assert witness.replays()
        assert str(witness.labels[-1]) == "@rm"
        assert witness.policy == forbid("rm")

    def test_witness_is_shortest(self):
        # The violating @rm is 3 labels deep: [forbid_rm, @touch, @rm.
        certificate = certify_validity(INVALID)
        assert len(certificate.witness.labels) == 3

    def test_witness_states_track_the_automaton(self):
        witness = certify_validity(INVALID).witness
        assert len(witness.states) == len(witness.labels) + 1
        assert witness.states[-1] != witness.states[0]

    def test_state_limit_raises(self, c1):
        with pytest.raises(StateSpaceLimitError):
            certify_validity(c1, max_states=1)


class TestCompliance:
    def test_agrees_with_every_engine_on_fixed_cases(self):
        for client, server in TestTheorem1.CASES:
            certificate = certify_compliance(client, server)
            assert certificate.compliant == compliant_coinductive(
                client, server), (client, server)
            for engine in ("onthefly", "eager", "gfp"):
                result = check_compliance(client, server, engine=engine)
                assert certificate.compliant == result.compliant, \
                    (engine, client, server)

    def test_refusals_carry_replayable_stuck_witnesses(self):
        for client, server in TestTheorem1.CASES:
            certificate = certify_compliance(client, server)
            if certificate.compliant:
                assert certificate.witness is None
            else:
                assert certificate.witness is not None
                assert certificate.witness.replays(), (client, server)

    def test_gfp_engine_reports_the_stuck_state(self):
        result = check_compliance(send("a"), send("a"), engine="gfp")
        assert not result.compliant
        assert result.trace  # the synchronisation path into the refusal

    def test_unknown_engine_still_rejected(self):
        with pytest.raises(ValueError, match="psychic"):
            check_compliance(send("a"), send("a"), engine="psychic")

    def test_certificate_counts_product_pairs(self):
        certificate = certify_compliance(send("a"), send("a", event("x")))
        assert certificate.pairs >= 1


class TestCacheHygiene:
    def test_certificates_are_memoised(self):
        clear_staticcheck_caches()
        term = request("42", None, send("a"))
        certify_validity(term)
        before = _validity_memo.cache_info().hits
        certify_validity(term)
        assert _validity_memo.cache_info().hits == before + 1

    def test_clear_contract_caches_clears_staticcheck_too(self):
        # The satellite bugfix: a contract cache reset must not leave
        # stale derived certificates behind.
        certify_validity(INVALID)
        certify_compliance(send("a"), send("b"))
        assert _validity_memo.cache_info().currsize > 0
        assert _compliance_memo.cache_info().currsize > 0
        clear_contract_caches()
        assert _validity_memo.cache_info().currsize == 0
        assert _compliance_memo.cache_info().currsize == 0

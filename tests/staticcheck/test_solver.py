"""Unit tests for the generic worklist fixpoint solver."""

import pytest

from repro.staticcheck.solver import (BoolLattice, Equation, PowersetLattice,
                                      solve)


def reachability_system(edges, start):
    """Variables = nodes; value = set of nodes reachable *from* start."""
    nodes = sorted({start} | {a for a, _ in edges} | {b for _, b in edges})
    lattice = PowersetLattice(frozenset(nodes))

    def transfer_for(node):
        incoming = tuple(a for a, b in edges if b == node)
        seed = frozenset({node}) if node == start else frozenset()

        def transfer(env, incoming=incoming, seed=seed):
            out = set(seed)
            for source in incoming:
                if env[source]:
                    out.add(node)
                    out |= env[source]
            return frozenset(out)
        return transfer

    equations = {node: Equation(node,
                                tuple(a for a, b in edges if b == node),
                                transfer_for(node))
                 for node in nodes}
    return equations, lattice


class TestPowersetLattice:
    LATTICE = PowersetLattice(frozenset("abc"))

    def test_lattice_laws(self):
        bottom = self.LATTICE.bottom()
        for value in (frozenset(), frozenset("a"), frozenset("abc")):
            assert self.LATTICE.join(value, value) == value
            assert self.LATTICE.join(bottom, value) == value
            assert self.LATTICE.leq(bottom, value)
            assert self.LATTICE.leq(value, self.LATTICE.top())
        left, right = frozenset("ab"), frozenset("bc")
        assert (self.LATTICE.join(left, right)
                == self.LATTICE.join(right, left) == frozenset("abc"))

    def test_widen_jumps_to_top_above_the_height(self):
        lattice = PowersetLattice(frozenset("abcd"), widen_height=1)
        assert lattice.widen(frozenset(), frozenset("a")) == frozenset("a")
        assert lattice.widen(frozenset("a"), frozenset("ab")) == \
            frozenset("abcd")


class TestBoolLattice:
    def test_two_point_order(self):
        lattice = BoolLattice()
        assert lattice.bottom() is False
        assert lattice.join(False, True) is True
        assert lattice.leq(False, True)
        assert not lattice.leq(True, False)


class TestSolve:
    def test_reachability_least_fixpoint(self):
        edges = [("s", "a"), ("a", "b"), ("b", "a"), ("c", "d")]
        equations, lattice = reachability_system(edges, "s")
        solution = solve(equations, lattice)
        # d is only fed by the unreachable c: the *least* solution keeps
        # it empty (a gfp or an unsound solver would pollute it).
        assert solution["d"] == frozenset()
        assert solution["b"] == frozenset("sab")

    def test_cyclic_system_stabilises(self):
        edges = [("s", "a"), ("a", "b"), ("b", "c"), ("c", "a")]
        equations, lattice = reachability_system(edges, "s")
        solution = solve(equations, lattice)
        for node in "abc":
            assert solution[node] == frozenset("sabc")
        assert solution.iterations > len(equations)  # cycles re-iterate

    def test_widening_is_recorded_and_over_approximates(self):
        # A chain long enough that widen_after=1 triggers on the tail.
        # Built in reverse order so the worklist re-evaluates each
        # variable as its dependency grows (anti-topological seeding).
        universe = frozenset(range(10))
        lattice = PowersetLattice(universe, widen_height=2)
        chain = {i: Equation(i, (i - 1,) if i else (),
                             (lambda env, i=i:
                              frozenset({i}) | env.get(i - 1, frozenset())))
                 for i in reversed(range(10))}
        exact = solve(chain, lattice)
        widened = solve(chain, lattice, widen_after=1)
        assert not exact.widened
        assert widened.widened
        for i in range(10):
            # Widening only ever *adds* elements (soundness).
            assert lattice.leq(exact[i], widened[i])
        assert widened[9] == universe

    def test_exhausted_iteration_budget_is_detected(self):
        edges = [(i, i + 1) for i in range(100)]
        equations, lattice = reachability_system(edges, 0)
        with pytest.raises(RuntimeError, match="did not stabilise"):
            solve(equations, lattice, max_iterations=10)

    def test_bool_lattice_removal_argument(self):
        # The gfp-as-complement encoding used by the compliance engine:
        # x is "removed" iff its sole successor is.  Nothing seeds the
        # removal, so the lfp keeps everything (all False).
        lattice = BoolLattice()
        equations = {
            "x": Equation("x", ("y",), lambda env: env["y"]),
            "y": Equation("y", ("x",), lambda env: env["x"]),
        }
        solution = solve(equations, lattice)
        assert solution["x"] is False and solution["y"] is False

"""Unit tests for the may/must label analysis."""

from repro.core.actions import Send, SessionClose, SessionOpen
from repro.core.syntax import (EPSILON, Request, Var, event, internal, mu,
                               receive, seq, send)
from repro.staticcheck.labels import (analyse_labels, may_diverge,
                                      syntactic_alphabet)


LOOP = mu("h", internal(("a", Var("h")), ("b", EPSILON)))


class TestMayMust:
    def test_must_is_below_may(self, c1, c2, broker_term, repo):
        terms = [c1, c2, broker_term, LOOP,
                 *(repo[loc] for loc in repo.locations())]
        for term in terms:
            analysis = analyse_labels(term)
            assert analysis.must <= analysis.may <= analysis.universe, term

    def test_internal_choice_intersects_must(self):
        term = internal(("a", event("log")), ("b", event("log")))
        analysis = analyse_labels(term)
        assert Send("a") in analysis.may and Send("b") in analysis.may
        # Neither branch label is guaranteed, but the shared event is.
        assert Send("a") not in analysis.must
        assert event("log").event in analysis.must

    def test_sequence_joins_may(self):
        term = seq(event("read"), event("write"))
        analysis = analyse_labels(term)
        assert {event("read").event, event("write").event} <= analysis.may
        assert analysis.must == analysis.may  # no branching: every run

    def test_request_opens_and_closes(self):
        term = Request("7", None, send("a"))
        analysis = analyse_labels(term)
        assert SessionOpen("7", None) in analysis.must
        assert SessionClose("7", None) in analysis.must

    def test_diverging_request_may_never_close(self):
        term = Request("7", None, LOOP)
        analysis = analyse_labels(term)
        assert SessionClose("7", None) in analysis.may
        assert SessionClose("7", None) not in analysis.must

    def test_recursion_reaches_a_fixpoint(self):
        analysis = analyse_labels(LOOP)
        assert analysis.may == frozenset({Send("a"), Send("b")})
        # The must set stays an under-approximation: the loop may exit
        # immediately through !b, so only !b... no — the first iteration
        # already offers both branches; the intersection is empty.
        assert analysis.must == frozenset()
        assert analysis.diverging

    def test_widening_declares_everything_possible(self):
        exact = analyse_labels(LOOP)
        widened = analyse_labels(LOOP, widen_height=0, widen_after=0)
        assert exact.may <= widened.may
        assert widened.may == widened.universe

    def test_covers_refutes_impossible_labels(self):
        analysis = analyse_labels(seq(send("a"), receive("b")))
        assert analysis.covers(Send("a"))
        assert not analysis.covers(Send("zzz"))


class TestAlphabetAndDivergence:
    def test_alphabet_is_syntactic_superset(self, c1):
        assert analyse_labels(c1).may <= syntactic_alphabet(c1)

    def test_may_diverge_is_syntactic(self):
        assert may_diverge(LOOP)
        assert not may_diverge(mu("h", send("a")))  # h unused: no loop
        assert not may_diverge(seq(send("a"), send("b")))
        assert may_diverge(Request("1", None, LOOP))

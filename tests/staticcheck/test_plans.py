"""Unit tests for the plan explainer (minimal unsatisfiable cores) and
the whole-module analysis engine."""

from pathlib import Path

import pytest

from repro.analysis.planner import find_valid_plans
from repro.lang.module import parse_module
from repro.network.repository import Repository
from repro.staticcheck import analyze_module, explain_no_valid_plan

EXAMPLES = Path(__file__).parents[2] / "examples"


@pytest.fixture(scope="module")
def broken():
    source = (EXAMPLES / "broken_booking.sus").read_text()
    return parse_module(source, path="broken_booking.sus")


@pytest.fixture(scope="module")
def hotel():
    source = (EXAMPLES / "hotel_booking.sus").read_text()
    return parse_module(source, path="hotel_booking.sus")


class TestExplainNoValidPlan:
    def test_clients_with_valid_plans_need_no_explanation(self, hotel):
        for name, term in hotel.clients.items():
            assert explain_no_valid_plan(term, hotel.repository,
                                         location=name) is None

    def test_doomed_request_core(self, broken):
        explanation = explain_no_valid_plan(
            broken.clients["lc2"], broken.repository, location="lc2")
        assert explanation is not None
        (constraint,) = explanation.core
        assert constraint.kind == "compliance"
        assert constraint.request == "9"
        assert constraint.compliant == ()  # doomed: nobody complies
        assert {refusal.location for refusal in constraint.refusals} \
            == {"lbr", "ls1"}
        for refusal in constraint.refusals:
            assert refusal.witness is not None
            assert refusal.witness.replays()

    def test_security_core_with_replayable_witness(self, broken):
        explanation = explain_no_valid_plan(
            broken.clients["lc3"], broken.repository, location="lc3")
        assert explanation is not None
        kinds = sorted(constraint.kind for constraint in explanation.core)
        assert kinds == ["compliance", "security"]
        (compliance,) = [c for c in explanation.core
                         if c.kind == "compliance"]
        # Request 7 *can* be served (by ls1) — the core records the
        # conflict, not a doom.
        assert compliance.compliant == ("ls1",)
        witness = explanation.security_witness
        assert witness is not None
        assert witness.replays()
        assert any("sgn" in str(label) for label in witness.labels)

    def test_core_is_subset_minimal(self, broken):
        # lc3's two constraints are individually satisfiable (plan
        # 7[ls1] meets compliance; an lbr-binding meets security by
        # never reaching @sgn(1)'s framing... it refuses compliance) —
        # dropping either member makes the rest satisfiable, which is
        # exactly what deletion-based MUS guarantees.
        explanation = explain_no_valid_plan(
            broken.clients["lc3"], broken.repository, location="lc3")
        assert len(explanation.core) == 2

    def test_completeness_core_when_no_candidates(self, broken):
        empty = Repository({}, validate=False)
        explanation = explain_no_valid_plan(
            broken.clients["lc2"], empty, location="lc2")
        (constraint,) = explanation.core
        assert constraint.kind == "completeness"

    def test_agrees_with_the_planner(self, broken, hotel):
        for module in (broken, hotel):
            for name, term in module.clients.items():
                planner = find_valid_plans(term, module.repository,
                                           location=name)
                explanation = explain_no_valid_plan(
                    term, module.repository, location=name)
                assert planner.has_valid_plan == (explanation is None), name

    def test_render_text_mentions_every_core_member(self, broken):
        explanation = explain_no_valid_plan(
            broken.clients["lc3"], broken.repository, location="lc3")
        text = explanation.render_text()
        assert "request 7" in text
        assert "security" in text
        assert "ls1" in text

    def test_to_json_is_deterministic(self, broken):
        explanation = explain_no_valid_plan(
            broken.clients["lc2"], broken.repository, location="lc2")
        assert explanation.to_json() == explanation.to_json()
        assert explanation.to_json()["satisfiable"] is False


class TestAnalyzeModule:
    def test_hotel_is_accepted(self, hotel):
        analysis = analyze_module(hotel)
        assert analysis.ok
        assert all(report.validity.valid for report in analysis.terms)
        assert all(report.valid for report in analysis.plans)
        assert analysis.to_json()["ok"] is True

    def test_broken_is_rejected_with_reports(self, broken):
        analysis = analyze_module(broken)
        assert not analysis.ok
        by_client = {report.client: report for report in analysis.plans}
        assert by_client["lc1"].valid
        assert not by_client["lc2"].valid
        assert not by_client["lc3"].valid
        assert "rejected" in analysis.render_text()

    def test_pairs_cover_every_request_location_combination(self, hotel):
        analysis = analyze_module(hotel)
        locations = set(hotel.repository.locations())
        for report in analysis.pairs:
            assert report.service in locations

"""Tests for capacity-aware (bounded-availability) plan checking."""

from repro.analysis.capacity import (check_capacities,
                                     observed_concurrent_demand,
                                     static_concurrent_demand)
from repro.core.plans import Plan, PlanVector
from repro.core.syntax import receive, request, send, seq
from repro.network.config import Component, Configuration
from repro.network.repository import Repository
from repro.paper import figure2


def simple_worker():
    return seq(receive("go"), send("done"))


def simple_client(rid):
    return request(rid, None, seq(send("go"), receive("done")))


class TestStaticDemand:
    def test_single_client_single_request(self):
        repo = Repository({"w": simple_worker()})
        demand = static_concurrent_demand(
            [(simple_client("r"), Plan.single("r", "w"))], repo, "w")
        assert demand == 1

    def test_sequential_requests_do_not_overlap(self):
        client = seq(simple_client("r1"), simple_client("r2"))
        repo = Repository({"w": simple_worker()})
        plan = Plan.of({"r1": "w", "r2": "w"})
        assert static_concurrent_demand([(client, plan)], repo, "w") == 1

    def test_nested_requests_overlap(self):
        inner = request("r2", None, seq(send("go"), receive("done")))
        outer = request("r1", None, seq(send("go"), inner,
                                        receive("done")))
        repo = Repository({"w": simple_worker()})
        # Careful: the nested session is opened by the *client*, inside
        # its own session body.
        plan = Plan.of({"r1": "w", "r2": "w"})
        assert static_concurrent_demand([(outer, plan)], repo, "w") == 2

    def test_service_side_requests_count(self):
        # The broker's request 3 is open while the client's session with
        # the broker is open.
        repo = figure2.repository()
        clients = [(figure2.client_1(), figure2.plan_pi1())]
        assert static_concurrent_demand(clients, repo, "ls3") == 1
        assert static_concurrent_demand(clients, repo,
                                        figure2.LOC_BROKER) == 1

    def test_clients_add_up(self):
        repo = figure2.repository()
        clients = [(figure2.client_1(), figure2.plan_pi1()),
                   (figure2.client_2(), figure2.plan_pi2_valid())]
        assert static_concurrent_demand(clients, repo,
                                        figure2.LOC_BROKER) == 2
        assert static_concurrent_demand(clients, repo, "ls3") == 1
        assert static_concurrent_demand(clients, repo, "ls4") == 1

    def test_unused_location_has_zero_demand(self):
        repo = figure2.repository()
        clients = [(figure2.client_1(), figure2.plan_pi1())]
        assert static_concurrent_demand(clients, repo, "ls2") == 0


class TestObservedDemand:
    def test_matches_static_on_paper_network(self):
        repo = figure2.repository()
        config = figure2.initial_configuration()
        plans = PlanVector.of(figure2.plan_pi1(),
                              figure2.plan_pi2_valid())
        clients = [(figure2.client_1(), figure2.plan_pi1()),
                   (figure2.client_2(), figure2.plan_pi2_valid())]
        for location in repo.locations():
            static = static_concurrent_demand(clients, repo, location)
            observed = observed_concurrent_demand(config, plans, repo,
                                                  location)
            assert observed == static, location

    def test_nested_sessions_observed(self):
        inner = request("r2", None, seq(send("go"), receive("done")))
        outer = request("r1", None, seq(send("go"), inner,
                                        receive("done")))
        repo = Repository({"w": simple_worker()})
        plan = Plan.of({"r1": "w", "r2": "w"})
        config = Configuration.of(Component.client("c", outer))
        assert observed_concurrent_demand(config, plan, repo, "w") == 2


class TestCapacityReport:
    def test_feasible_with_enough_capacity(self):
        repo = figure2.repository()
        clients = [(figure2.client_1(), figure2.plan_pi1()),
                   (figure2.client_2(), figure2.plan_pi2_valid())]
        report = check_capacities(clients, repo,
                                  {figure2.LOC_BROKER: 2, "ls3": 1,
                                   "ls4": 1})
        assert report.feasible
        assert report.oversubscribed() == ()

    def test_oversubscription_detected(self):
        repo = figure2.repository()
        clients = [(figure2.client_1(), figure2.plan_pi1()),
                   (figure2.client_2(), figure2.plan_pi2_valid())]
        report = check_capacities(clients, repo,
                                  {figure2.LOC_BROKER: 1})
        assert not report.feasible
        assert report.oversubscribed() == (figure2.LOC_BROKER,)
        assert "OVERSUBSCRIBED" in str(report)

    def test_missing_capacity_means_unbounded(self):
        repo = figure2.repository()
        clients = [(figure2.client_1(), figure2.plan_pi1())] * 5
        report = check_capacities(clients, repo, {})
        assert report.feasible  # the paper's replicate-at-will default

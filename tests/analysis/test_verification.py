"""Tests for the Section-5 verification facade."""

import pytest

from repro.analysis.verification import (verify_client, verify_network)
from repro.core.errors import WellFormednessError
from repro.core.plans import PlanVector
from repro.core.syntax import Mu, Var, receive, request, send, seq
from repro.network.repository import Repository
from repro.paper import figure2


class TestVerifyClient:
    def test_paper_client1(self, repo, c1):
        verdict = verify_client(c1, repo, location=figure2.LOC_CLIENT_1)
        assert verdict.verified
        assert verdict.plan is not None
        assert verdict.plan.plan == figure2.plan_pi1()

    def test_rejects_ill_formed_clients(self, repo):
        with pytest.raises(WellFormednessError):
            verify_client(Mu("h", Var("h")), repo)

    def test_unverifiable_client(self):
        client = request("r", None, seq(send("a"), receive("never")))
        repo = Repository({"srv": receive("a")})
        verdict = verify_client(client, repo)
        assert not verdict.verified
        assert verdict.plan is None


class TestVerifyNetwork:
    def test_paper_network_verifies(self, repo, c1, c2):
        verdict = verify_network({figure2.LOC_CLIENT_1: c1,
                                  figure2.LOC_CLIENT_2: c2}, repo)
        assert verdict.verified
        vector = verdict.plan_vector()
        assert isinstance(vector, PlanVector)
        assert vector[0] == figure2.plan_pi1()
        assert vector[1] == figure2.plan_pi2_valid()

    def test_report_mentions_monitor(self, repo, c1):
        verdict = verify_network({figure2.LOC_CLIENT_1: c1}, repo)
        assert "switch off the monitor" in verdict.report()

    def test_failed_network_report_lists_rejections(self):
        client = request("r", None, seq(send("a"), receive("never")))
        repo = Repository({"srv": receive("a")})
        verdict = verify_network({"c": client}, repo)
        assert not verdict.verified
        report = verdict.report()
        assert "NO valid plan" in report
        assert "NOT verified" in report
        with pytest.raises(ValueError):
            verdict.plan_vector()

    def test_one_bad_client_spoils_the_network(self, repo, c1):
        bad = request("r", None, seq(send("a"), receive("never")))
        verdict = verify_network(
            {figure2.LOC_CLIENT_1: c1, "bad": bad}, repo)
        assert not verdict.verified
        assert verdict.clients[0].verified
        assert not verdict.clients[1].verified

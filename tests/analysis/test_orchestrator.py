"""Tests for capacity-constrained whole-network orchestration."""

from repro.analysis.orchestrator import orchestrate
from repro.core.plans import Plan
from repro.core.syntax import receive, request, send, seq
from repro.network.repository import Repository
from repro.paper import figure2
from repro.quantitative.costs import CostModel


def worker(cost_events=()):
    from repro.core.syntax import event
    body = [event(name) for name in cost_events]
    return receive("go", seq(*body, send("done")))


def client(rid):
    return request(rid, None, seq(send("go"), receive("done")))


class TestUnconstrained:
    def test_paper_network_orchestrates(self, repo, c1, c2):
        result = orchestrate({figure2.LOC_CLIENT_1: c1,
                              figure2.LOC_CLIENT_2: c2}, repo)
        assert result.feasible
        vector = result.orchestration.plan_vector()
        assert vector[0] == figure2.plan_pi1()
        assert vector[1] == figure2.plan_pi2_valid()

    def test_client_without_plans_reported(self, repo, c1):
        impossible = request("x", None, seq(send("nothing"),
                                            receive("never")))
        result = orchestrate({"lc1": c1, "sad": impossible}, repo)
        assert not result.feasible
        assert result.clients_without_plans == ("sad",)


class TestCapacityConstrained:
    def make(self):
        repo = Repository({"w1": worker(), "w2": worker()})
        clients = {"a": client("ra"), "b": client("rb")}
        return clients, repo

    def test_capacity_forces_spreading(self):
        clients, repo = self.make()
        result = orchestrate(clients, repo, capacities={"w1": 1,
                                                        "w2": 1})
        assert result.feasible
        vector = result.orchestration.plan_vector()
        used = {vector[0]["ra"], vector[1]["rb"]}
        assert used == {"w1", "w2"}  # one client per worker

    def test_infeasible_when_capacity_too_small(self):
        clients, repo = self.make()
        result = orchestrate(clients, repo, capacities={"w1": 1,
                                                        "w2": 0})
        assert not result.feasible
        assert result.clients_without_plans == ()

    def test_unbounded_capacity_allows_sharing(self):
        clients, repo = self.make()
        result = orchestrate(clients, repo, capacities={})
        assert result.feasible


class TestCostAware:
    def test_cheapest_feasible_vector(self):
        repo = Repository({
            "cheap": worker(("io",)),
            "dear": worker(("crypto",)),
        })
        clients = {"a": client("ra"), "b": client("rb")}
        model = CostModel.of({"io": 1, "crypto": 10})
        # Capacity 1 on the cheap worker: one client must take the dear
        # one; the optimum is exactly one of each.
        result = orchestrate(clients, repo, capacities={"cheap": 1},
                             cost_model=model)
        assert result.feasible
        assert result.orchestration.cost == 11
        used = sorted(next(iter(analysis.plan.locations()))
                      for analysis in result.orchestration.plans)
        assert used == ["cheap", "dear"]

    def test_without_constraint_both_take_the_cheap_one(self):
        repo = Repository({
            "cheap": worker(("io",)),
            "dear": worker(("crypto",)),
        })
        clients = {"a": client("ra"), "b": client("rb")}
        model = CostModel.of({"io": 1, "crypto": 10})
        result = orchestrate(clients, repo, cost_model=model)
        assert result.feasible
        assert result.orchestration.cost == 2

    def test_str_mentions_cost(self):
        repo = Repository({"cheap": worker(("io",))})
        model = CostModel.of({"io": 1})
        result = orchestrate({"a": client("ra")}, repo, cost_model=model)
        assert "cost 1" in str(result.orchestration)

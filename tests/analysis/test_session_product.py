"""Tests for the assembled session-product LTS."""

from repro.analysis.session_product import (assemble, deadlocked_trees,
                                            is_unfailing)
from repro.core.actions import Event
from repro.core.plans import Plan
from repro.core.syntax import (event, external, internal, receive, request,
                               send, seq)
from repro.network.config import Leaf
from repro.network.repository import Repository
from repro.paper import figure2


class TestAssembly:
    def test_initial_state_is_the_client_leaf(self):
        lts = assemble(event("e"), Plan.empty(), Repository(), "me")
        assert lts.initial == Leaf("me", event("e"))

    def test_event_only_client(self):
        lts = assemble(seq(event("a"), event("b")), Plan.empty(),
                       Repository(), "me")
        assert len(lts) == 3
        labels = [label for moves in lts.transitions.values()
                  for label, _ in moves]
        assert all(label.rule == "access" for label in labels)

    def test_session_traces_include_service_events(self):
        client = request("r", None, send("go"))
        repo = Repository({"srv": seq(event("served"), receive("go"))})
        lts = assemble(client, Plan.single("r", "srv"), repo, "me")
        events = {label
                  for moves in lts.transitions.values()
                  for label, _ in moves
                  if label.appends and isinstance(label.appends[0], Event)}
        assert any(label.appends[0].name == "served" for label in events)

    def test_finite_for_recursive_services(self):
        from repro.core.syntax import Var, mu
        client = request("r", None,
                         send("ping", receive("pong", send("quit"))))
        server = mu("k", external(("ping", send("pong", Var("k"))),
                                  ("quit", seq())))
        lts = assemble(client, Plan.single("r", "srv"),
                       Repository({"srv": server}), "me")
        assert len(lts) < 50  # finite despite the loop


class TestDeadlocks:
    def test_unfailing_session(self):
        client = request("r", None, seq(send("a"), receive("b")))
        repo = Repository({"srv": seq(receive("a"), send("b"))})
        lts = assemble(client, Plan.single("r", "srv"), repo, "me")
        assert is_unfailing(lts)

    def test_unserved_request_deadlocks(self):
        client = request("r", None, send("a"))
        lts = assemble(client, Plan.empty(), Repository(), "me")
        stuck = deadlocked_trees(lts)
        assert stuck == {Leaf("me", client)}

    def test_commitment_reveals_bad_internal_choice(self):
        client = request("r", None,
                         seq(send("q"), external(("ok", seq()))))
        repo = Repository({"srv": receive("q", internal(("ok", seq()),
                                                        ("err", seq())))})
        with_commits = assemble(client, Plan.single("r", "srv"), repo,
                                "me", commit_outputs=True)
        without = assemble(client, Plan.single("r", "srv"), repo, "me",
                           commit_outputs=False)
        assert not is_unfailing(with_commits)
        assert is_unfailing(without)

    def test_paper_pi1_is_unfailing(self, repo):
        lts = assemble(figure2.client_1(), figure2.plan_pi1(), repo,
                       figure2.LOC_CLIENT_1)
        assert is_unfailing(lts)

    def test_paper_s2_plan_fails(self, repo):
        lts = assemble(figure2.client_2(),
                       figure2.plan_pi2_bad_compliance(), repo,
                       figure2.LOC_CLIENT_2)
        assert not is_unfailing(lts)

"""Tests for request extraction and the nesting tree."""

from repro.analysis.requests import (RequestInfo, extract_requests,
                                     request_tree)
from repro.core.syntax import (EPSILON, event, external, receive, request,
                               send, seq)
from repro.paper import figure2
from repro.policies.library import forbid

PHI = forbid("x")


class TestExtraction:
    def test_no_requests(self):
        assert extract_requests(seq(event("e"), send("a"))) == ()

    def test_single_request_carries_policy_and_body(self):
        term = request("r", PHI, send("a"))
        (info,) = extract_requests(term)
        assert info == RequestInfo("r", PHI, send("a"))

    def test_nested_requests_in_preorder(self):
        inner = request("r2", None, send("x"))
        outer = request("r1", PHI, seq(send("a"), inner))
        ids = [info.request for info in extract_requests(outer)]
        assert ids == ["r1", "r2"]

    def test_requests_under_choices(self):
        term = external(("a", request("r1", None, EPSILON)),
                        ("b", request("r2", None, EPSILON)))
        ids = {info.request for info in extract_requests(term)}
        assert ids == {"r1", "r2"}

    def test_paper_client_has_one_request(self):
        (info,) = extract_requests(figure2.client_1())
        assert info.request == "1"
        assert info.policy == figure2.policy_c1()

    def test_paper_broker_has_one_request(self):
        (info,) = extract_requests(figure2.broker())
        assert info.request == "3"
        assert info.policy is None


class TestRequestTree:
    def test_flat_requests(self):
        term = seq(request("a", None, EPSILON),
                   request("b", None, EPSILON))
        tree = request_tree(term)
        assert [info.request for info, _ in tree.direct] == ["a", "b"]
        assert all(not subtree.direct for _, subtree in tree.direct)

    def test_nesting_recorded(self):
        inner = request("r2", None, send("x"))
        outer = request("r1", None, seq(receive("q"), inner))
        tree = request_tree(outer)
        ((info, subtree),) = tree.direct
        assert info.request == "r1"
        assert [i.request for i, _ in subtree.direct] == ["r2"]

    def test_all_requests_flattens_outermost_first(self):
        inner = request("r2", None, EPSILON)
        outer = request("r1", None, inner)
        tree = request_tree(outer)
        assert [i.request for i in tree.all_requests()] == ["r1", "r2"]
        assert len(tree) == 2

"""Tests for plan enumeration and the static plan analysis."""

from repro.analysis.planner import (analyze_plan, enumerate_plans,
                                    find_valid_plans, unfailing_in_product)
from repro.core.plans import Plan
from repro.core.syntax import (EPSILON, external, receive, request, send,
                               seq)
from repro.network.repository import Repository
from repro.paper import figure2


class TestEnumeration:
    def test_no_requests_yields_empty_plan(self):
        plans = list(enumerate_plans(send("a"), Repository()))
        assert plans == [Plan.empty()]

    def test_one_request_yields_one_plan_per_location(self):
        client = request("r", None, send("a"))
        repo = Repository({"x": receive("a"), "y": receive("a")})
        plans = list(enumerate_plans(client, repo))
        assert {plan["r"] for plan in plans} == {"x", "y"}

    def test_transitive_requests_resolved(self):
        client = request("outer", None, send("go"))
        middle = receive("go", request("inner", None, send("deep")))
        bottom = receive("deep")
        repo = Repository({"mid": middle, "bot": bottom})
        plans = list(enumerate_plans(client, repo))
        # outer ∈ {mid, bot}; when outer→mid, inner ∈ {mid, bot} too.
        with_inner = [p for p in plans if "inner" in p]
        assert all(p["outer"] == "mid" for p in with_inner)
        assert len(with_inner) == 2
        assert len([p for p in plans if p["outer"] == "bot"]) == 1

    def test_candidates_restrict_locations(self):
        client = request("r", None, send("a"))
        repo = Repository({"x": receive("a"), "y": receive("a")})
        plans = list(enumerate_plans(client, repo,
                                     candidates={"r": ["y"]}))
        assert [plan["r"] for plan in plans] == ["y"]

    def test_mutually_requesting_services_terminate(self):
        # a requests b; b requests a (same request id is bound once).
        a = receive("start", request("rb", None, send("ping")))
        b = receive("ping", request("ra", None, send("start")))
        client = request("ra", None, send("start"))
        repo = Repository({"a": a, "b": b})
        plans = list(enumerate_plans(client, repo))
        assert plans  # terminates and produces something

    def test_paper_plan_count(self, repo, c1):
        # Request 1 has 5 candidate locations; only the broker introduces
        # request 3 (5 more): 4 + 5 plans.
        plans = list(enumerate_plans(c1, repo))
        assert len(plans) == 9


class TestAnalysis:
    def test_paper_pi1_valid(self, repo, c1):
        analysis = analyze_plan(c1, figure2.plan_pi1(), repo,
                                figure2.LOC_CLIENT_1)
        assert analysis.valid
        assert analysis.compliant and analysis.secure
        assert "VALID" in analysis.explain()

    def test_incomplete_plan_reports_unserved(self, repo, c1):
        analysis = analyze_plan(c1, Plan.single("1", figure2.LOC_BROKER),
                                repo)
        assert not analysis.valid
        assert analysis.unserved_requests == ("3",)
        assert "unserved" in analysis.explain()

    def test_noncompliant_plan_explains_pair(self, repo, c2):
        analysis = analyze_plan(c2, figure2.plan_pi2_bad_compliance(),
                                repo)
        assert not analysis.compliant
        failing = [c for c in analysis.compliance if not c.compliant]
        assert [(c.request, c.location) for c in failing] == [("3", "ls2")]

    def test_insecure_plan_explains_policy(self, repo, c2):
        analysis = analyze_plan(c2, figure2.plan_pi2_bad_security(), repo,
                                figure2.LOC_CLIENT_2)
        assert analysis.compliant and not analysis.secure
        assert analysis.security.violated_policy == figure2.policy_c2()

    def test_unknown_location_counts_as_unserved(self, repo, c1):
        plan = Plan.of({"1": "nowhere", "3": "ls3"})
        analysis = analyze_plan(c1, plan, repo)
        assert "1" in analysis.unserved_requests


class TestFindValidPlans:
    def test_paper_client1(self, repo, c1):
        result = find_valid_plans(c1, repo, location=figure2.LOC_CLIENT_1)
        assert result.has_valid_plan
        assert [str(a.plan) for a in result.valid_plans] == \
            ["1[lbr] ∪ 3[ls3]"]
        assert result.best() is result.valid_plans[0]

    def test_paper_client2(self, repo, c2):
        result = find_valid_plans(c2, repo, location=figure2.LOC_CLIENT_2)
        assert [str(a.plan) for a in result.valid_plans] == \
            ["2[lbr] ∪ 3[ls4]"]

    def test_max_plans_bounds_work(self, repo, c1):
        result = find_valid_plans(c1, repo, max_plans=2)
        assert (len(result.valid_plans) + len(result.invalid_plans)) == 2

    def test_no_valid_plan_result(self):
        client = request("r", None, seq(send("a"), receive("never")))
        repo = Repository({"srv": receive("a")})
        result = find_valid_plans(client, repo)
        assert not result.has_valid_plan
        assert result.best() is None


class TestWholeProductProgress:
    def test_agrees_with_compliance_on_paper_plans(self, repo, c1, c2):
        cases = [
            (c1, figure2.plan_pi1(), True),
            (c2, figure2.plan_pi2_bad_compliance(), False),
            (c2, figure2.plan_pi2_valid(), True),
        ]
        for client, plan, expected in cases:
            assert unfailing_in_product(client, plan, repo) is expected

"""Tests for the static security model checker."""

from repro.analysis.security import check_security
from repro.analysis.session_product import assemble
from repro.core.plans import Plan
from repro.core.syntax import (Framing, Var, event, external, mu, receive,
                               request, send, seq)
from repro.network.repository import Repository
from repro.paper import figure2
from repro.policies.library import at_most, forbid, never_after


def secure(client, plan=Plan.empty(), repo=None, location="me"):
    lts = assemble(client, plan, repo or Repository(), location)
    return check_security(lts)


class TestBasics:
    def test_no_policies_is_secure(self):
        report = secure(seq(event("a"), event("b")))
        assert report.secure and bool(report)

    def test_framed_violation_detected(self):
        report = secure(Framing(forbid("boom"), event("boom")))
        assert not report.secure
        assert report.violated_policy == forbid("boom")

    def test_event_outside_framing_is_allowed(self):
        report = secure(seq(event("boom"),
                            Framing(forbid("boom"), event("ok"))))
        # History dependence: the earlier boom violates φ when it opens.
        assert not report.secure

    def test_event_after_framing_closes_is_allowed(self):
        report = secure(seq(Framing(forbid("boom"), event("ok")),
                            event("boom")))
        assert report.secure

    def test_counterexample_is_shortest(self):
        term = Framing(forbid("boom"),
                       seq(event("fine"), event("boom")))
        report = secure(term)
        assert report.counterexample is not None
        # Lφ, fine, boom — three product labels.
        assert len(report.counterexample) == 3


class TestBranching:
    def test_one_bad_branch_suffices(self):
        # The server picks internally; only one branch misbehaves, but
        # the checker quantifies over every trace.
        from repro.core.syntax import internal
        client = request("r", forbid("boom"),
                         seq(send("q"), external(("ok", seq()),
                                                 ("ko", seq()))))
        server = receive("q", internal(("ok", seq()),
                                       ("ko", event("boom"))))
        report = secure(client, Plan.single("r", "srv"),
                        Repository({"srv": server}))
        assert not report.secure

    def test_all_branches_clean_is_secure(self):
        from repro.core.syntax import internal
        client = request("r", forbid("boom"),
                         seq(send("q"), external(("ok", seq()),
                                                 ("ko", seq()))))
        server = receive("q", internal(("ok", event("fine")),
                                       ("ko", seq())))
        report = secure(client, Plan.single("r", "srv"),
                        Repository({"srv": server}))
        assert report.secure


class TestSessions:
    def test_service_events_checked_under_client_policy(self, repo):
        report = secure(figure2.client_2(),
                        figure2.plan_pi2_bad_security(), repo,
                        figure2.LOC_CLIENT_2)
        assert not report.secure
        assert report.violated_policy == figure2.policy_c2()

    def test_valid_paper_plan_is_secure(self, repo):
        report = secure(figure2.client_1(), figure2.plan_pi1(), repo,
                        figure2.LOC_CLIENT_1)
        assert report.secure

    def test_nested_session_policy_propagates(self):
        phi = forbid("boom")
        client = request("outer", phi, send("go"))
        middle = receive("go", request("inner", None, send("deep")))
        bottom = receive("deep", event("boom"))
        repo = Repository({"mid": middle, "bot": bottom})
        plan = Plan.of({"outer": "mid", "inner": "bot"})
        report = secure(client, plan, repo)
        assert not report.secure


class TestRecursion:
    def test_recursive_service_with_bounded_policy(self):
        phi = at_most("tick", 2)
        client = request("r", phi,
                         send("go", send("go", send("stop"))))
        server = mu("k", external(("go", seq(event("tick"), Var("k"))),
                                  ("stop", seq())))
        repo = Repository({"srv": server})
        report = secure(client, Plan.single("r", "srv"), repo)
        assert report.secure  # exactly 2 ticks

    def test_recursive_service_exceeding_bound(self):
        phi = at_most("tick", 1)
        client = request("r", phi,
                         send("go", send("go", send("stop"))))
        server = mu("k", external(("go", seq(event("tick"), Var("k"))),
                                  ("stop", seq())))
        repo = Repository({"srv": server})
        report = secure(client, Plan.single("r", "srv"), repo)
        assert not report.secure

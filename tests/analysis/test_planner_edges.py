"""Edge-case coverage for the planner and the explanation pipeline."""

import pytest

from repro.analysis.diagnostics import explain_plan, explain_security
from repro.analysis.planner import (analyze_plan, enumerate_plans,
                                    find_valid_plans)
from repro.core.plans import Plan
from repro.core.syntax import (EPSILON, event, external, internal,
                               receive, request, send, seq)
from repro.network.repository import Repository
from repro.policies.library import forbid


class TestPlanEnumerationEdges:
    def test_empty_repository(self):
        client = request("r", None, send("a"))
        assert list(enumerate_plans(client, Repository())) == []

    def test_candidates_with_unknown_location_skipped(self):
        client = request("r", None, send("a"))
        repo = Repository({"w": receive("a")})
        plans = list(enumerate_plans(client, repo,
                                     candidates={"r": ["ghost", "w"]}))
        assert plans == [Plan.single("r", "w")]

    def test_client_with_no_communication_is_trivially_verified(self):
        client = seq(event("solo"))
        result = find_valid_plans(client, Repository())
        assert result.has_valid_plan
        assert result.best().plan == Plan.empty()

    def test_framed_pure_client(self):
        phi = forbid("boom")
        from repro.core.syntax import Framing
        ok = Framing(phi, event("fine"))
        bad = Framing(phi, event("boom"))
        assert find_valid_plans(ok, Repository()).has_valid_plan
        assert not find_valid_plans(bad, Repository()).has_valid_plan


class TestChoiceDependentRequests:
    def test_request_inside_one_branch_only(self):
        # The nested session is only opened on the 'deep' branch; plans
        # must still bind it, and the analysis explores both branches.
        inner = request("r2", None, seq(send("ping"),
                                        external(("pong", EPSILON))))
        client = request("r1", None, seq(
            send("q"),
            external(("shallow", EPSILON), ("deep", inner))))
        front = receive("q", internal(
            ("shallow", EPSILON), ("deep", EPSILON)))
        echo = receive("ping", send("pong"))
        repo = Repository({"front": front, "echo": echo})
        plan = Plan.of({"r1": "front", "r2": "echo"})
        analysis = analyze_plan(client, plan, repo)
        assert analysis.valid

    def test_branch_request_failure_detected(self):
        inner = request("r2", None, seq(send("ping"),
                                        external(("pong", EPSILON))))
        client = request("r1", None, seq(
            send("q"),
            external(("shallow", EPSILON), ("deep", inner))))
        front = receive("q", internal(
            ("shallow", EPSILON), ("deep", EPSILON)))
        mute = receive("ping")  # never answers pong
        repo = Repository({"front": front, "mute": mute})
        plan = Plan.of({"r1": "front", "r2": "mute"})
        analysis = analyze_plan(client, plan, repo)
        assert not analysis.valid
        assert "r2" in explain_plan(analysis)


class TestExplainEdges:
    def test_explain_secure_report_counts_states(self):
        from repro.analysis.security import check_security
        from repro.analysis.session_product import assemble
        lts = assemble(event("e"), Plan.empty(), Repository(), "me")
        text = explain_security(check_security(lts))
        assert "states checked" in text

    def test_explain_valid_and_incomplete_together(self):
        client = seq(request("a", None, send("x")),
                     request("b", None, send("y")))
        repo = Repository({"w": external(("x", EPSILON),
                                         ("y", EPSILON))})
        analysis = analyze_plan(client, Plan.single("a", "w"), repo)
        text = explain_plan(analysis)
        assert "incomplete" in text and "b" in text

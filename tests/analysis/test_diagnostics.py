"""Tests for the verdict-explanation module."""

from repro.analysis.diagnostics import (explain_compliance, explain_pair,
                                        explain_plan, explain_security)
from repro.analysis.planner import analyze_plan
from repro.analysis.security import check_security
from repro.analysis.session_product import assemble
from repro.core.compliance import check_compliance
from repro.core.plans import Plan
from repro.core.syntax import (EPSILON, external, internal, receive,
                               request, send, seq)
from repro.network.repository import Repository
from repro.paper import figure2


class TestExplainCompliance:
    def test_compliant_narrative(self):
        result = check_compliance(send("a"), receive("a"))
        assert "compliant" in explain_compliance(result)

    def test_unmatched_output_blames_the_sender(self):
        text = explain_pair(send("a"), receive("b"))
        assert "NOT compliant" in text
        assert "client output !a" in text
        assert "condition (ii)" in text

    def test_deadlock_blames_condition_i(self):
        text = explain_pair(receive("a"), receive("a"))
        assert "both participants wait" in text
        assert "condition (i)" in text

    def test_terminated_server_called_out(self):
        text = explain_pair(receive("a"), EPSILON)
        assert "server has terminated" in text

    def test_path_is_shown_for_deep_failures(self):
        client = send("go", external(("fine", EPSILON)))
        server = receive("go", internal(("fine", EPSILON),
                                        ("boom", EPSILON)))
        text = explain_pair(client, server)
        assert "path to the stuck configuration" in text
        assert "server output !boom" in text

    def test_paper_del_example(self, repo):
        from repro.analysis.requests import extract_requests
        (broker_request,) = extract_requests(figure2.broker())
        text = explain_pair(broker_request.body, repo["ls2"])
        assert "!Del" in text  # the message the paper blames


class TestExplainSecurity:
    def test_secure_narrative(self):
        lts = assemble(seq(), Plan.empty(), Repository(), "me")
        report = check_security(lts)
        assert "secure" in explain_security(report)

    def test_violation_shows_policy_and_history(self, repo, c2):
        lts = assemble(c2, figure2.plan_pi2_bad_security(), repo,
                       figure2.LOC_CLIENT_2)
        report = check_security(lts)
        text = explain_security(report)
        assert "INSECURE" in text
        assert str(figure2.policy_c2()) in text
        assert "@sgn(3)" in text  # the event that trips the black list


class TestExplainPlan:
    def test_valid_plan_mentions_the_monitor(self, repo, c1):
        analysis = analyze_plan(c1, figure2.plan_pi1(), repo,
                                figure2.LOC_CLIENT_1)
        text = explain_plan(analysis)
        assert "VALID" in text and "monitor" in text

    def test_incomplete_plan(self, repo, c1):
        analysis = analyze_plan(c1, Plan.single("1", figure2.LOC_BROKER),
                                repo)
        assert "incomplete" in explain_plan(analysis)

    def test_invalid_plan_aggregates_reasons(self, repo, c2):
        analysis = analyze_plan(c2, figure2.plan_pi2_bad_compliance(),
                                repo, figure2.LOC_CLIENT_2)
        text = explain_plan(analysis)
        assert "request 3 -> ls2" in text
        assert "NOT compliant" in text

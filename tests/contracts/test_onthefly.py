"""Tests for the on-the-fly product search (:func:`search_product`).

Cross-validates the lazy engine against the explicit automaton of
Definition 5 and regression-tests the early exit: on a non-compliant
pair the search materialises no product state beyond the BFS radius of
the shortest counterexample.
"""

from collections import deque

from repro.core.compliance import check_compliance
from repro.core.syntax import (EPSILON, external, internal, receive, send,
                               seq)
from repro.contracts.contract import Contract
from repro.contracts.product import build_product, search_product

from tests.contracts.test_product import TestTheorem1, product_of


def search_of(client, server):
    return search_product(Contract(client), Contract(server))


def bfs_depths(product):
    """Synchronisation depth of every reachable product state."""
    depths = {product.initial: 0}
    frontier = deque([product.initial])
    while frontier:
        state = frontier.popleft()
        for _, target in product.lts.moves(state):
            if target not in depths:
                depths[target] = depths[state] + 1
                frontier.append(target)
    return depths


class TestAgreesWithEagerProduct:
    def test_verdicts_match_on_fixed_cases(self):
        for client, server in TestTheorem1.CASES:
            eager = product_of(client, server)
            lazy = search_of(client, server)
            assert lazy.empty == eager.language_is_empty(), \
                f"engines disagree on {client} / {server}"

    def test_traces_are_shortest_in_both_engines(self):
        for client, server in TestTheorem1.CASES:
            eager = product_of(client, server).counterexample()
            lazy = search_of(client, server).trace
            if eager is None:
                assert lazy is None
            else:
                assert lazy is not None
                assert len(lazy) == len(eager)
                assert lazy[0] == eager[0]  # both start at ⟨H1, H2⟩

    def test_trace_states_are_consecutive_synchronisations(self):
        client = send("go", send("go2", receive("never")))
        server = receive("go", receive("go2"))
        search = search_of(client, server)
        assert not search.empty and search.trace is not None
        product = product_of(client, server)
        for before, after in zip(search.trace, search.trace[1:]):
            assert after in {target for _, target
                             in product.lts.moves(before)}
        assert search.witness in product.final_states

    def test_immediately_stuck_pair(self):
        search = search_of(receive("a"), receive("a"))
        assert not search.empty
        assert search.trace is not None and len(search.trace) == 1
        assert search.explored == 1


class TestEarlyExit:
    """The acceptance regression: a non-compliant check explores no more
    product states than live within the BFS depth of the shortest
    counterexample."""

    def assert_explored_within_radius(self, client, server):
        search = search_of(client, server)
        assert not search.empty and search.trace is not None
        depth = len(search.trace) - 1
        product = product_of(client, server)
        within_radius = sum(1 for d in bfs_depths(product).values()
                            if d <= depth)
        assert search.explored <= within_radius, (
            f"explored {search.explored} states; only {within_radius} "
            f"live within counterexample depth {depth}")

    def test_deep_counterexample(self):
        client = send("go", send("go2", receive("never")))
        server = receive("go", receive("go2"))
        self.assert_explored_within_radius(client, server)

    def test_shallow_counterexample_skips_deep_compliant_branches(self):
        # One branch deadlocks immediately; the others run long compliant
        # protocols.  The search must stop at radius 1, leaving the deep
        # branches unexplored.
        deep = EPSILON
        for i in range(6):
            deep = send(f"ping{i}", receive(f"pong{i}", deep))
        deep_server = EPSILON
        for i in range(6):
            deep_server = receive(f"ping{i}", send(f"pong{i}", deep_server))
        client = internal(("bad", receive("never")),
                          ("ok1", deep), ("ok2", deep))
        server = external(("bad", EPSILON),
                          ("ok1", deep_server), ("ok2", deep_server))
        self.assert_explored_within_radius(client, server)
        search = search_of(client, server)
        product = product_of(client, server)
        assert search.explored < len(product.lts), \
            "early exit saved nothing: full product explored"

    def test_check_compliance_reports_the_explored_count(self):
        client = internal(("bad", receive("never")),
                          ("ok", send("more", receive("done"))))
        server = external(("bad", EPSILON),
                          ("ok", receive("more", send("done"))))
        result = check_compliance(client, server)
        search = search_of(client, server)
        assert result.explored_states == search.explored
        assert result.trace == search.trace


class TestEngineParameter:
    def test_eager_engine_matches_default(self):
        cases = TestTheorem1.CASES
        for client, server in cases:
            lazy = check_compliance(client, server)
            eager = check_compliance(client, server, engine="eager")
            assert lazy.compliant == eager.compliant
            if not lazy.compliant:
                assert lazy.trace is not None and eager.trace is not None
                assert len(lazy.trace) == len(eager.trace)

    def test_unknown_engine_rejected(self):
        try:
            check_compliance(send("a"), receive("a"), engine="psychic")
        except ValueError as error:
            assert "psychic" in str(error)
        else:
            raise AssertionError("bad engine accepted")

    def test_events_are_transparent_to_both_engines(self):
        from repro.core.syntax import event
        client = seq(event("log"), send("a"))
        server = seq(event("audit", 7), receive("a"))
        assert check_compliance(client, server).compliant
        assert check_compliance(client, server, engine="eager").compliant

"""Tests for the generic finite-LTS substrate."""

import pytest

from repro.core.errors import StateSpaceLimitError
from repro.contracts.lts import (LTS, bisimilar, build_lts, trace_language)


def chain(n):
    """0 --t--> 1 --t--> … --t--> n (no moves from n)."""
    return build_lts(0, lambda s: [("t", s + 1)] if s < n else [])


def cycle(n):
    """A directed n-cycle."""
    return build_lts(0, lambda s: [("t", (s + 1) % n)])


class TestBuild:
    def test_single_state(self):
        lts = build_lts("s", lambda s: [])
        assert lts.states == {"s"}
        assert lts.deadlocks() == {"s"}

    def test_chain(self):
        lts = chain(3)
        assert len(lts) == 4
        assert lts.deadlocks() == {3}

    def test_cycle_terminates(self):
        lts = cycle(5)
        assert len(lts) == 5
        assert lts.deadlocks() == frozenset()

    def test_state_limit_enforced(self):
        with pytest.raises(StateSpaceLimitError):
            build_lts(0, lambda s: [("t", s + 1)], max_states=100)

    def test_branching(self):
        lts = build_lts(0, lambda s: [("a", 1), ("b", 2)] if s == 0 else [])
        assert lts.labels_from(0) == {"a", "b"}
        assert lts.successors(0, "a") == {1}


class TestObservations:
    def test_alphabet(self):
        lts = build_lts(0, lambda s: [("x", 1), ("y", 1)] if s == 0 else [])
        assert lts.alphabet() == {"x", "y"}

    def test_reachable_from(self):
        lts = chain(3)
        assert lts.reachable_from(2) == {2, 3}

    def test_some_state_satisfies_bfs_order(self):
        lts = chain(5)
        assert lts.some_state_satisfies(lambda s: s >= 2) == 2
        assert lts.some_state_satisfies(lambda s: s > 99) is None

    def test_path_to(self):
        lts = chain(3)
        path = lts.path_to(lambda s: s == 2)
        assert path == (("t", 1), ("t", 2))

    def test_path_to_initial_is_empty(self):
        lts = chain(1)
        assert lts.path_to(lambda s: s == 0) == ()

    def test_path_to_unreachable_is_none(self):
        lts = chain(1)
        assert lts.path_to(lambda s: s == 99) is None


class TestTransformations:
    def test_map_labels(self):
        lts = chain(2).map_labels(lambda label: label.upper())
        assert lts.alphabet() == {"T"}

    def test_filter_labels_prunes_unreachable(self):
        lts = build_lts(0, lambda s: ([("keep", 1), ("drop", 2)]
                                      if s == 0 else []))
        kept = lts.filter_labels(lambda label: label == "keep")
        assert kept.states == {0, 1}

    def test_renumber_is_isomorphic(self):
        lts = build_lts("root", lambda s: ([("t", "leaf")]
                                           if s == "root" else []))
        dense = lts.renumber()
        assert dense.initial == 0
        assert dense.states == {0, 1}

    def test_to_dot(self):
        dot = chain(1).to_dot(name="g")
        assert dot.startswith("digraph g")
        assert "0 -> 1" in dot


class TestBisimilarity:
    def test_identical_systems(self):
        assert bisimilar(chain(3), chain(3))

    def test_different_lengths(self):
        assert not bisimilar(chain(2), chain(3))

    def test_unrolled_cycle_is_bisimilar(self):
        # A 1-cycle and a 2-cycle on the same label are bisimilar.
        assert bisimilar(cycle(1), cycle(2))

    def test_label_mismatch(self):
        a = build_lts(0, lambda s: [("x", 0)])
        b = build_lts(0, lambda s: [("y", 0)])
        assert not bisimilar(a, b)

    def test_branching_vs_linear(self):
        branching = build_lts(0, lambda s: ([("a", 1), ("b", 2)]
                                            if s == 0 else []))
        linear = build_lts(0, lambda s: [("a", 1)] if s == 0 else [])
        assert not bisimilar(branching, linear)


class TestTraceLanguage:
    def test_bounded_traces(self):
        lts = chain(2)
        language = trace_language(lts, max_length=2)
        assert language == {(), ("t",), ("t", "t")}

    def test_cycle_traces_capped(self):
        lts = cycle(1)
        language = trace_language(lts, max_length=3)
        assert ("t", "t", "t") in language
        assert all(len(t) <= 3 for t in language)

"""Tests for the Contract wrapper."""

import pytest

from repro.core.actions import Receive, Send
from repro.core.syntax import (EPSILON, Var, event, external, internal, mu,
                               seq, send)
from repro.contracts.contract import Contract


class TestConstruction:
    def test_projects_by_default(self):
        contract = Contract(seq(event("e"), send("a")))
        assert contract.term == send("a")

    def test_already_projected_skips_projection(self):
        term = send("a")
        contract = Contract(term, already_projected=True)
        assert contract.term is term

    def test_rejects_open_terms(self):
        with pytest.raises(ValueError):
            Contract(Var("h"))


class TestLTS:
    def test_finite_state_for_recursion(self):
        loop = mu("h", external(("ping", internal(("pong", Var("h")),)),))
        contract = Contract(loop)
        assert 1 <= len(contract.lts) <= 4

    def test_lts_is_cached(self):
        contract = Contract(send("a"))
        assert contract.lts is contract.lts

    def test_states_include_epsilon(self):
        contract = Contract(send("a"))
        assert EPSILON in contract.states


class TestStateObservations:
    def test_outputs_and_inputs_from(self):
        term = seq(internal(("a", EPSILON), ("b", EPSILON)),
                   external(("c", EPSILON)))
        contract = Contract(term)
        assert contract.outputs_from(term) == {Send("a"), Send("b")}
        assert contract.inputs_from(term) == frozenset()
        follow = external(("c", EPSILON))
        assert contract.inputs_from(follow) == {Receive("c")}

    def test_ready_sets_default_to_initial(self):
        contract = Contract(internal(("a", EPSILON), ("b", EPSILON)))
        assert contract.ready_sets_of() == frozenset({
            frozenset({Send("a")}), frozenset({Send("b")})})


class TestValueSemantics:
    def test_equality_is_structural_on_projection(self):
        assert Contract(seq(event("x"), send("a"))) == Contract(send("a"))
        assert Contract(send("a")) != Contract(send("b"))

    def test_hashable(self):
        assert len({Contract(send("a")), Contract(send("a"))}) == 1

    def test_str_renders_surface_syntax(self):
        assert str(Contract(send("a"))) == "!a"

"""Tests for the product automaton of Definition 5 and Theorems 1–2."""

from repro.core.compliance import compliant_coinductive
from repro.core.syntax import (EPSILON, Var, external, internal, mu,
                               receive, send)
from repro.contracts.contract import Contract
from repro.contracts.product import build_product


def product_of(client, server):
    return build_product(Contract(client), Contract(server))


class TestFinalStates:
    def test_compliant_pair_has_no_final_states(self):
        product = product_of(send("a"), receive("a"))
        assert product.final_states == frozenset()
        assert product.language_is_empty()

    def test_initial_final_when_both_wait(self):
        product = product_of(receive("a"), receive("a"))
        assert product.initial in product.final_states
        assert not product.language_is_empty()

    def test_condition_i_both_inputs(self):
        # ¬(i): no output anywhere.
        product = product_of(receive("a"), receive("b"))
        assert product.violates_invariant(product.initial)

    def test_condition_ii_unmatched_output(self):
        # (i) holds, (ii) fails: client output has no co-input.
        product = product_of(send("a"), receive("b"))
        assert product.violates_invariant(product.initial)

    def test_terminated_client_never_final(self):
        product = product_of(EPSILON, send("anything"))
        assert product.final_states == frozenset()
        assert product.language_is_empty()

    def test_no_transitions_out_of_final_states(self):
        # Even a syncable pair stops once the state is final: here the
        # client also offers an unmatched output.
        client = internal(("a", EPSILON), ("bad", EPSILON))
        server = external(("a", EPSILON))
        product = product_of(client, server)
        assert product.initial in product.final_states
        assert product.lts.moves(product.initial) == ()


class TestReachability:
    def test_failure_after_some_synchronisations(self):
        client = send("go", send("go2", receive("never")))
        server = receive("go", receive("go2"))
        product = product_of(client, server)
        assert not product.language_is_empty()
        trace = product.counterexample()
        assert trace is not None
        assert len(trace) == 3  # initial, after go, after go2
        assert trace[-1] in product.final_states

    def test_counterexample_none_when_compliant(self):
        product = product_of(send("a"), receive("a"))
        assert product.counterexample() is None

    def test_unreachable_final_states_do_not_matter(self):
        # The server's 'err' branch would deadlock, but the client never
        # sends err, so the bad pair is unreachable.
        client = send("ok")
        server = external(("ok", EPSILON), ("err", receive("x")))
        product = product_of(client, server)
        assert product.language_is_empty()


class TestTheorem1:
    """L(H1 ⊗ H2) = ∅ iff H1 ⊢ H2 (here: against the coinductive
    decider)."""

    CASES = [
        (send("a"), receive("a")),
        (send("a"), receive("b")),
        (receive("a"), send("a")),
        (receive("a"), receive("a")),
        (EPSILON, EPSILON),
        (EPSILON, send("x")),
        (internal(("a", EPSILON), ("b", EPSILON)),
         external(("a", EPSILON), ("b", EPSILON))),
        (internal(("a", EPSILON), ("b", EPSILON)),
         external(("a", EPSILON))),
        (mu("h", send("p", receive("q", Var("h")))),
         mu("k", receive("p", send("q", Var("k"))))),
        (mu("h", internal(("more", receive("ack", Var("h"))),
                          ("done", EPSILON))),
         mu("k", external(("more", send("ack", Var("k"))),
                          ("done", EPSILON)))),
    ]

    def test_equivalence_on_fixed_cases(self):
        for client, server in self.CASES:
            product = product_of(client, server)
            assert (product.language_is_empty()
                    == compliant_coinductive(client, server)), \
                f"Theorem 1 mismatch on {client} / {server}"


class TestTheorem2:
    """Compliance is an invariant: checking it only needs the current
    state."""

    def test_invariant_formulation_matches_emptiness(self):
        for client, server in TestTheorem1.CASES:
            product = product_of(client, server)
            reachable = product.lts.reachable_from(product.initial)
            invariant_holds = not any(product.violates_invariant(state)
                                      for state in reachable)
            assert invariant_holds == product.language_is_empty()

    def test_violation_is_detectable_statewise(self):
        # The invariant check uses no history: re-checking any reachable
        # state in isolation gives the same verdict.
        client = send("go", receive("never"))
        server = receive("go")
        product = product_of(client, server)
        bad = [state for state in
               product.lts.reachable_from(product.initial)
               if product.violates_invariant(state)]
        assert bad
        for state in bad:
            fresh = product_of(state[0], state[1])
            assert fresh.initial in fresh.final_states

"""Tests for the subcontract (server-substitutability) preorder."""

import itertools
import random

import pytest

from repro.core.compliance import compliant
from repro.core.syntax import (EPSILON, Var, event, external, internal, mu,
                               receive, send, seq)
from repro.contracts.subcontract import (equivalent, refine_violation,
                                         subcontract,
                                         substitutable_services)
from repro.network.repository import Repository


class TestBasics:
    def test_reflexive(self):
        for term in (EPSILON, send("a"), receive("a"),
                     internal(("a", EPSILON), ("b", EPSILON))):
            assert subcontract(term, term)

    def test_epsilon_refines_everything(self):
        # Only ε complies with ε, and ε complies with any server.
        for term in (send("a"), receive("a"),
                     mu("h", external(("go", send("x", Var("h"))),))):
            assert subcontract(EPSILON, term)

    def test_nothing_nontrivial_refines_epsilon(self):
        assert not subcontract(send("a"), EPSILON)
        assert not subcontract(receive("a"), EPSILON)

    def test_fewer_outputs_is_larger(self):
        # A server that may send a or b is refined by one sending only a.
        both = internal(("a", EPSILON), ("b", EPSILON))
        only_a = internal(("a", EPSILON))
        assert subcontract(both, only_a)
        assert not subcontract(only_a, both)

    def test_more_inputs_is_larger(self):
        few = external(("a", EPSILON))
        many = external(("a", EPSILON), ("b", EPSILON))
        assert subcontract(few, many)
        assert not subcontract(many, few)

    def test_depth_refinement(self):
        # Same first step, refined continuation.
        smaller = receive("go", internal(("yes", EPSILON),
                                         ("no", EPSILON)))
        larger = receive("go", internal(("yes", EPSILON)))
        assert subcontract(smaller, larger)
        assert not subcontract(larger, smaller)

    def test_events_are_transparent(self):
        noisy = seq(event("log"), send("a"))
        assert equivalent(noisy, send("a"))


class TestRecursion:
    LOOP = mu("h", external(("go", internal(("yes", Var("h")),
                                            ("no", EPSILON))),))

    def test_loop_self_refinement(self):
        assert subcontract(self.LOOP, self.LOOP)

    def test_extra_input_branch_refines(self):
        wider = mu("h", external(("go", internal(("yes", Var("h")),
                                                 ("no", EPSILON))),
                                 ("ping", EPSILON)))
        assert subcontract(self.LOOP, wider)
        assert not subcontract(wider, self.LOOP)

    def test_pruned_output_refines(self):
        deterministic = mu("h", external(("go", internal(("no",
                                                          EPSILON),)),))
        assert subcontract(self.LOOP, deterministic)


class TestViolationWitness:
    def test_witness_none_on_refinement(self):
        assert refine_violation(send("a"), send("a")) is None

    def test_witness_path_on_failure(self):
        smaller = receive("go", external(("a", EPSILON)))
        larger = receive("go", external(("b", EPSILON)))
        path = refine_violation(smaller, larger)
        assert path is not None
        assert len(path) == 1  # fails right after the go exchange


class TestSemanticDefinition:
    """Bounded-exhaustive exactness: compare against the literal
    definition '∀C: C ⊢ H1 ⟹ C ⊢ H2', quantifying over *all* clients of
    depth ≤ 2 over two channels (127 clients) — exact for servers of the
    same depth."""

    @staticmethod
    def generate(depth):
        if depth == 0:
            return [EPSILON]
        subs = TestSemanticDefinition.generate(depth - 1)
        out = [EPSILON]
        for kind in (internal, external):
            for channel in ("a", "b"):
                for sub in subs:
                    out.append(kind((channel, sub)))
            for sub1 in subs:
                for sub2 in subs:
                    out.append(kind(("a", sub1), ("b", sub2)))
        return out

    def test_exact_on_small_contracts(self):
        universe = self.generate(2)
        clients = universe  # clients and servers range over the same set
        rng = random.Random(42)
        pairs = [(rng.choice(universe), rng.choice(universe))
                 for _ in range(60)]
        for h1, h2 in pairs:
            quantified = all(not compliant(c, h1) or compliant(c, h2)
                             for c in clients)
            assert subcontract(h1, h2) == quantified, (str(h1), str(h2))

    def test_sound_on_deeper_contracts(self):
        # Depth-2 clients cannot refute every depth-3 non-refinement, but
        # a positive subcontract verdict must never be refuted.
        servers = self.generate(3)
        clients = self.generate(2)
        rng = random.Random(43)
        pairs = [(rng.choice(servers), rng.choice(servers))
                 for _ in range(25)]
        for h1, h2 in pairs:
            if subcontract(h1, h2):
                for client in clients:
                    assert not compliant(client, h1) or \
                        compliant(client, h2)


class TestDiscovery:
    def test_substitutable_services(self):
        advertised = internal(("ok", EPSILON), ("err", EPSILON))
        repo = Repository({
            "exact": internal(("ok", EPSILON), ("err", EPSILON)),
            "better": internal(("ok", EPSILON)),
            "worse": internal(("ok", EPSILON), ("err", EPSILON),
                              ("maybe", EPSILON)),
        })
        assert substitutable_services(advertised, repo) == \
            ("exact", "better")

    def test_discovery_preserves_compliance(self):
        advertised = internal(("ok", EPSILON), ("err", EPSILON))
        client = external(("ok", EPSILON), ("err", EPSILON))
        repo = Repository({
            "better": internal(("ok", EPSILON)),
        })
        assert compliant(client, advertised)
        for location in substitutable_services(advertised, repo):
            assert compliant(client, repo[location])

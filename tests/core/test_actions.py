"""Tests for the action alphabets (Ev, Comm, Frm) and co-actions."""

import pytest

from repro.core.actions import (TAU, Event, FrameClose, FrameOpen, Receive,
                                Send, SessionClose, SessionOpen, Tau, co,
                                is_communication, is_event, is_framing,
                                is_history_label, is_input, is_output)


class TestCoActions:
    def test_co_of_send_is_receive(self):
        assert co(Send("a")) == Receive("a")

    def test_co_of_receive_is_send(self):
        assert co(Receive("a")) == Send("a")

    def test_co_is_involutive(self):
        for action in (Send("x"), Receive("y")):
            assert co(co(action)) == action

    def test_co_preserves_channel(self):
        assert co(Send("chan")).channel == "chan"

    @pytest.mark.parametrize("action", [
        Event("e"), TAU, SessionOpen("r"), SessionClose("r"),
        FrameOpen("p"), FrameClose("p")])
    def test_co_rejects_non_channel_actions(self, action):
        with pytest.raises(ValueError):
            co(action)


class TestPredicates:
    def test_output_and_input(self):
        assert is_output(Send("a")) and not is_output(Receive("a"))
        assert is_input(Receive("a")) and not is_input(Send("a"))

    def test_events_are_not_communications(self):
        assert is_event(Event("e")) and not is_communication(Event("e"))

    def test_session_actions_are_communications(self):
        assert is_communication(SessionOpen("r"))
        assert is_communication(SessionClose("r", None))
        assert is_communication(TAU)

    def test_framings(self):
        assert is_framing(FrameOpen("p")) and is_framing(FrameClose("p"))
        assert not is_framing(Event("e"))

    def test_history_labels_are_events_and_framings_only(self):
        assert is_history_label(Event("e"))
        assert is_history_label(FrameOpen("p"))
        assert is_history_label(FrameClose("p"))
        assert not is_history_label(Send("a"))
        assert not is_history_label(TAU)
        assert not is_history_label(SessionOpen("r"))


class TestValueSemantics:
    def test_events_compare_structurally(self):
        assert Event("e", (1, 2)) == Event("e", (1, 2))
        assert Event("e", (1,)) != Event("e", (2,))
        assert Event("e") != Event("f")

    def test_actions_are_hashable(self):
        labels = {Send("a"), Receive("a"), TAU, Event("e"),
                  SessionOpen("r", None), FrameOpen("p")}
        assert len(labels) == 6

    def test_tau_is_singletonish(self):
        assert Tau() == TAU

    def test_session_open_distinct_by_policy(self):
        assert SessionOpen("r", "p1") != SessionOpen("r", "p2")
        assert SessionOpen("r", None) == SessionOpen("r")


class TestRendering:
    def test_event_str(self):
        assert str(Event("sgn", (3,))) == "@sgn(3)"
        assert str(Event("ping")) == "@ping"

    def test_send_receive_str(self):
        assert str(Send("Req")) == "!Req"
        assert str(Receive("Req")) == "?Req"

    def test_framing_str_shows_direction(self):
        assert str(FrameOpen("phi")) == "[phi"
        assert str(FrameClose("phi")) == "]phi"

    def test_session_str_mentions_request(self):
        assert "r1" in str(SessionOpen("r1", None))
        assert "r1" in str(SessionClose("r1", None))

"""Tests for reversible sessions: checkpointed choices, rollback, the
doom-lfp decider, and its replayable witnesses."""

import pytest

from repro.contracts.contract import Contract
from repro.core.compliance import check_compliance, compliant
from repro.core.reversible import (ReversibleSession, ReversibleWitness,
                                   check_reversible, reversibly_compliant,
                                   sync_moves)
from repro.core.syntax import (EPSILON, Var, external, internal, mu,
                               receive, send)


def branchy_pair():
    """Ordinarily non-compliant (branch ``a`` strands the client one
    step in), reversibly compliant (roll back, take ``b``)."""
    client = internal(("a", send("x")), ("b", EPSILON))
    server = external(("a", receive("y")), ("b", EPSILON))
    return client, server


def doomed_pair():
    """Every branch strands the client: no rollback target helps."""
    client = internal(("a", send("x")))
    server = external(("a", receive("y")))
    return client, server


class TestSyncMoves:
    def test_covers_both_directions(self):
        client = Contract(send("a", receive("b")))
        server = Contract(receive("a", send("b")))
        moves = sync_moves(client.lts, server.lts,
                           (client.term, server.term))
        assert len(moves) == 1
        (successor,), = moves.values()
        moves_next = sync_moves(client.lts, server.lts, successor)
        assert len(moves_next) == 1  # now the client-side input

    def test_unmatched_labels_are_absent(self):
        client = Contract(send("a"))
        server = Contract(receive("b"))
        moves = sync_moves(client.lts, server.lts,
                           (client.term, server.term))
        assert moves == {}

    def test_labels_and_successors_are_canonically_ordered(self):
        client = Contract(internal(("b", EPSILON), ("a", EPSILON)))
        server = Contract(external(("a", EPSILON), ("b", EPSILON)))
        moves = sync_moves(client.lts, server.lts,
                           (client.term, server.term))
        labels = list(moves)
        assert labels == sorted(labels, key=repr)
        for successors in moves.values():
            assert list(successors) == sorted(successors, key=repr)


class TestDecider:
    def test_compliant_pair_is_reversibly_compliant(self):
        client = send("a", receive("b"))
        server = receive("a", send("b"))
        assert compliant(client, server)
        assert reversibly_compliant(client, server)

    def test_rollback_rescues_a_doomed_branch(self):
        client, server = branchy_pair()
        assert not compliant(client, server)
        result = check_reversible(client, server)
        assert result.compliant
        assert result.witness is None and result.trace is None

    def test_no_alternative_means_doomed(self):
        client, server = doomed_pair()
        result = check_reversible(client, server)
        assert not result.compliant
        assert result.witness is not None

    def test_immediately_stuck_pair_is_doomed_at_rank_zero(self):
        result = check_reversible(send("a"), receive("b"))
        assert not result.compliant
        initial = result.witness.initial
        assert result.witness.rank_table()[initial] == 0
        assert result.trace == (initial,)

    def test_terminated_client_is_never_doomed(self):
        assert reversibly_compliant(EPSILON, receive("a"))
        assert reversibly_compliant(EPSILON, EPSILON)

    def test_livelock_is_reversibly_compliant(self):
        # The client can loop forever but never reach its exit branch:
        # ordinarily non-compliant, yet never *stuck* — the reversible
        # (safety) relation accepts it.
        client = mu("k", internal(("go", receive("ack", Var("k"))),
                                  ("quit", EPSILON)))
        server = mu("k", external(("go", send("ack", Var("k")))))
        assert not compliant(client, server)
        assert reversibly_compliant(client, server)

    def test_unknown_engine_is_rejected(self):
        with pytest.raises(ValueError, match="unknown reversible engine"):
            check_reversible(send("a"), receive("a"), engine="magic")

    def test_result_is_boolean(self):
        assert check_reversible(send("a"), receive("a"))
        assert not check_reversible(send("a"), receive("b"))


class TestComplianceImpliesReversible:
    CASES = (
        (send("a", receive("b")), receive("a", send("b"))),
        (internal(("a", EPSILON), ("b", EPSILON)),
         external(("a", EPSILON), ("b", EPSILON))),
        (mu("k", internal(("go", receive("ack", Var("k"))),
                          ("quit", EPSILON))),
         mu("k", external(("go", send("ack", Var("k"))),
                          ("quit", EPSILON)))),
    )

    def test_on_fixed_compliant_pairs(self):
        for client, server in self.CASES:
            assert compliant(client, server)
            assert reversibly_compliant(client, server), (client, server)


class TestWitness:
    def test_witness_replays(self):
        for client, server in (doomed_pair(),
                               (send("a"), receive("b")),
                               (send("a", send("b")), receive("a"))):
            result = check_reversible(client, server)
            assert not result.compliant
            assert result.witness.replays(), (client, server)

    def test_demonic_play_ends_at_rank_zero(self):
        result = check_reversible(*doomed_pair())
        ranks = result.witness.rank_table()
        assert ranks[result.trace[0]] > 0
        assert ranks[result.trace[-1]] == 0
        played_ranks = [ranks[pair] for pair in result.trace]
        assert played_ranks == sorted(played_ranks, reverse=True)

    def test_tampered_witness_fails_replay(self):
        result = check_reversible(*doomed_pair())
        witness = result.witness
        # Drop the initial pair from the rank table: no longer a proof.
        tampered = ReversibleWitness(
            client=witness.client, server=witness.server,
            initial=witness.initial,
            ranks=tuple((pair, rank) for pair, rank in witness.ranks
                        if pair != witness.initial),
            strategy=witness.strategy)
        assert not tampered.replays()

    def test_inflated_rank_fails_replay(self):
        result = check_reversible(*doomed_pair())
        witness = result.witness
        tampered = ReversibleWitness(
            client=witness.client, server=witness.server,
            initial=witness.initial,
            ranks=tuple((pair, rank + 1 if rank == 0 else rank)
                        for pair, rank in witness.ranks),
            strategy=witness.strategy)
        assert not tampered.replays()

    def test_describe_mentions_the_initial_rank(self):
        result = check_reversible(*doomed_pair())
        text = result.witness.describe()
        assert "doomed pair(s)" in text
        assert "rank" in text


class TestReversibleSession:
    def test_straight_line_completion(self):
        session = ReversibleSession(send("a", receive("b")),
                                    receive("a", send("b")))
        assert session.run() == "completed"
        assert session.rollbacks == 0
        assert session.stack == []

    def test_choice_pushes_a_checkpoint(self):
        client, server = branchy_pair()
        session = ReversibleSession(client, server)
        labels = session.enabled()
        assert len(labels) == 2
        session.sync(labels[0])
        assert len(session.stack) == 1
        assert session.stack[0].untried == (labels[1],)

    def test_rollback_restores_pair_and_restricts_choice(self):
        client, server = branchy_pair()
        session = ReversibleSession(client, server)
        bad = next(label for label in session.enabled()
                   if "a" in repr(label))
        initial = session.pair
        session.sync(bad)
        assert session.enabled() == ()  # stranded
        assert session.rollback()
        assert session.pair == initial
        assert session.rollbacks == 1
        remaining = session.enabled()
        assert len(remaining) == 1
        assert "b" in repr(remaining[0])

    def test_trace_is_rewound_to_a_prefix(self):
        client, server = branchy_pair()
        session = ReversibleSession(client, server)
        bad = next(label for label in session.enabled()
                   if "a" in repr(label))
        before = list(session.trace)
        session.sync(bad)
        extended = list(session.trace)
        assert extended[:len(before)] == before
        session.rollback()
        assert list(session.trace) == before  # exact prefix restored

    def test_run_with_adversarial_chooser_recovers(self):
        client, server = branchy_pair()

        def worst_first(labels):
            return next((label for label in labels
                         if "a" in repr(label)), labels[0])

        session = ReversibleSession(client, server)
        assert session.run(chooser=worst_first) == "completed"
        assert session.rollbacks == 1

    def test_exhausted_stack_reports_exhaustion(self):
        session = ReversibleSession(*doomed_pair())
        assert session.run() == "exhausted"
        assert not session.can_rollback()

    def test_sync_rejects_disabled_labels(self):
        session = ReversibleSession(send("a"), receive("a"))
        with pytest.raises(ValueError, match="not enabled"):
            session.sync("nonsense")

    def test_branches_never_repeat_from_one_checkpoint(self):
        client = internal(("a", send("x")), ("b", send("y")),
                          ("c", EPSILON))
        server = external(("a", receive("p")), ("b", receive("q")),
                          ("c", EPSILON))
        session = ReversibleSession(client, server)
        tried = []
        while True:
            labels = session.enabled()
            if session.is_complete():
                break
            if not labels:
                assert session.rollback()
                continue
            tried.append(labels[0])
            session.sync(labels[0])
        assert session.is_complete()
        assert len(tried) == len(set(tried))  # no branch retried


class TestEngineDispatch:
    def test_reversible_engine_through_check_compliance(self):
        client, server = branchy_pair()
        result = check_compliance(client, server, engine="reversible")
        assert result.compliant
        doomed = check_compliance(*doomed_pair(), engine="reversible")
        assert not doomed.compliant
        assert doomed.witness is not None
        assert doomed.trace is not None

    def test_unknown_engine_error_lists_reversible(self):
        with pytest.raises(ValueError, match="reversible"):
            check_compliance(send("a"), receive("a"), engine="nope")


class TestCompiledAgreement:
    PAIRS = (
        branchy_pair(),
        doomed_pair(),
        (send("a"), receive("b")),
        (send("a", receive("b")), receive("a", send("b"))),
        (mu("k", internal(("go", receive("ack", Var("k"))),
                          ("quit", EPSILON))),
         mu("k", external(("go", send("ack", Var("k"))),
                          ("quit", EPSILON)))),
        (mu("k", internal(("go", receive("ack", Var("k"))),
                          ("quit", EPSILON))),
         mu("k", external(("go", send("ack", Var("k")))))),
    )

    def test_full_results_agree(self):
        for client, server in self.PAIRS:
            interpreted = check_reversible(client, server,
                                           engine="interpreted")
            compiled = check_reversible(client, server,
                                        engine="compiled")
            assert interpreted == compiled, (client, server)

"""Tests for the well-formedness checks (closedness, guarded tail
recursion, unique requests)."""

import pytest

from repro.core.errors import WellFormednessError
from repro.core.syntax import (EPSILON, Framing, Mu, Var, event, external,
                               internal, mu, receive, request, send, seq)
from repro.core.wellformed import check_well_formed, is_well_formed
from repro.paper import figure2
from repro.policies.library import forbid

PHI = forbid("boom")


class TestClosedness:
    def test_free_variable_rejected(self):
        with pytest.raises(WellFormednessError, match="free"):
            check_well_formed(Var("h"))

    def test_free_variable_allowed_when_opted_out(self):
        # Guardedness still applies, but openness may be tolerated (used
        # when checking μ-bodies in isolation).
        check_well_formed(receive("a", Var("h")), require_closed=False)

    def test_closed_terms_pass(self):
        check_well_formed(mu("h", receive("a", Var("h"))))


class TestGuardedness:
    def test_unguarded_variable_rejected(self):
        with pytest.raises(WellFormednessError, match="unguarded"):
            check_well_formed(Mu("h", Var("h")))

    def test_event_guard_is_not_enough(self):
        # Guards must be communication actions, not events.
        with pytest.raises(WellFormednessError, match="unguarded"):
            check_well_formed(Mu("h", seq(event("e"), Var("h"))))

    def test_input_guard_accepted(self):
        check_well_formed(mu("h", receive("a", Var("h"))))

    def test_output_guard_accepted(self):
        check_well_formed(mu("h", send("a", Var("h"))))

    def test_guard_deep_in_sequence_prefix(self):
        term = mu("h", seq(receive("a"), internal(("b", Var("h")),
                                                  ("c", EPSILON))))
        check_well_formed(term)


class TestTailPosition:
    def test_variable_followed_by_work_rejected(self):
        term = Mu("h", receive("a", seq(Var("h"), event("e"))))
        with pytest.raises(WellFormednessError, match="non-tail"):
            check_well_formed(term)

    def test_variable_inside_framing_rejected(self):
        # φ[… h] puts h before the closing Mφ: not a tail position.
        term = Mu("h", receive("a", Framing(PHI, Var("h"))))
        with pytest.raises(WellFormednessError, match="non-tail"):
            check_well_formed(term)

    def test_variable_inside_request_rejected(self):
        term = Mu("h", receive("a", request("r", None, Var("h"))))
        with pytest.raises(WellFormednessError, match="non-tail"):
            check_well_formed(term)

    def test_tail_after_sequence_accepted(self):
        term = mu("h", receive("a", seq(event("e"), send("b", Var("h")))))
        check_well_formed(term)

    def test_shadowed_variable_checked_against_inner_binder(self):
        inner = Mu("h", receive("b", Var("h")))
        outer = mu("h", receive("a", seq(inner, send("c", Var("h")))))
        check_well_formed(outer)


class TestUniqueRequests:
    def test_duplicate_request_ids_rejected(self):
        term = seq(request("r", None, EPSILON),
                   request("r", None, EPSILON))
        with pytest.raises(WellFormednessError, match="not unique"):
            check_well_formed(term)

    def test_distinct_request_ids_accepted(self):
        term = seq(request("r1", None, EPSILON),
                   request("r2", None, EPSILON))
        check_well_formed(term)

    def test_nested_requests_counted(self):
        term = request("r", None, request("r", None, EPSILON))
        assert not is_well_formed(term)


class TestPaperTerms:
    @pytest.mark.parametrize("factory", [
        figure2.client_1, figure2.client_2, figure2.broker,
        figure2.hotel_1, figure2.hotel_2, figure2.hotel_3, figure2.hotel_4])
    def test_all_figure2_terms_are_well_formed(self, factory):
        check_well_formed(factory())


class TestBooleanWrapper:
    def test_is_well_formed(self):
        assert is_well_formed(EPSILON)
        assert not is_well_formed(Var("h"))
        assert not is_well_formed(Mu("h", Var("h")))
        assert is_well_formed(external(("a", EPSILON), ("b", event("e"))))

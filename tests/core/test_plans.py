"""Tests for plans and plan vectors (Definition 2)."""

import pytest

from repro.core.errors import PlanError
from repro.core.plans import Plan, PlanVector


class TestConstruction:
    def test_empty_plan(self):
        plan = Plan.empty()
        assert len(plan) == 0
        assert str(plan) == "∅"

    def test_single_binding(self):
        plan = Plan.single("r", "loc")
        assert plan["r"] == "loc"
        assert str(plan) == "r[loc]"

    def test_of_mapping(self):
        plan = Plan.of({"1": "lbr", "3": "ls3"})
        assert plan["1"] == "lbr" and plan["3"] == "ls3"

    def test_of_pairs(self):
        plan = Plan.of([("a", "x"), ("b", "y")])
        assert plan["b"] == "y"

    def test_bindings_are_sorted_canonically(self):
        assert Plan.of({"b": "y", "a": "x"}) == Plan.of({"a": "x",
                                                         "b": "y"})


class TestBindAndUnion:
    def test_bind_extends(self):
        plan = Plan.empty().bind("r", "loc")
        assert "r" in plan

    def test_bind_is_functional(self):
        base = Plan.empty()
        extended = base.bind("r", "loc")
        assert len(base) == 0 and len(extended) == 1

    def test_rebinding_same_location_is_noop(self):
        plan = Plan.single("r", "loc")
        assert plan.bind("r", "loc") == plan

    def test_rebinding_conflict_raises(self):
        plan = Plan.single("r", "loc")
        with pytest.raises(PlanError):
            plan.bind("r", "other")

    def test_union_merges(self):
        merged = Plan.single("a", "x").union(Plan.single("b", "y"))
        assert merged == Plan.of({"a": "x", "b": "y"})

    def test_union_conflict_raises(self):
        with pytest.raises(PlanError):
            Plan.single("a", "x").union(Plan.single("a", "y"))

    def test_union_idempotent(self):
        plan = Plan.of({"a": "x"})
        assert plan.union(plan) == plan


class TestLookups:
    def test_lookup_missing_returns_none(self):
        assert Plan.empty().lookup("r") is None

    def test_getitem_missing_raises(self):
        with pytest.raises(PlanError):
            Plan.empty()["r"]

    def test_requests_and_locations(self):
        plan = Plan.of({"1": "lbr", "3": "ls3"})
        assert plan.requests() == {"1", "3"}
        assert plan.locations() == {"lbr", "ls3"}

    def test_contains_uses_string_coercion(self):
        plan = Plan.single(1, "loc")
        assert "1" in plan
        assert plan.lookup(1) == "loc"

    def test_items_iterates_bindings(self):
        plan = Plan.of({"a": "x", "b": "y"})
        assert dict(plan.items()) == {"a": "x", "b": "y"}


class TestPlanVector:
    def test_indexing_and_len(self):
        vector = PlanVector.of(Plan.single("1", "x"), Plan.single("2", "y"))
        assert len(vector) == 2
        assert vector[0]["1"] == "x"
        assert vector[1]["2"] == "y"

    def test_iteration(self):
        plans = [Plan.single("1", "x"), Plan.empty()]
        vector = PlanVector.of(*plans)
        assert list(vector) == plans

    def test_str(self):
        vector = PlanVector.of(Plan.single("1", "x"))
        assert str(vector) == "[1[x]]"

"""Tests for contract duality."""

import pytest

from repro.core.compliance import compliant
from repro.core.duality import dual
from repro.core.syntax import (EPSILON, Framing, Var, event, external,
                               internal, mu, receive, send, seq)
from repro.policies.library import forbid


class TestDualisation:
    def test_epsilon_and_vars_self_dual(self):
        assert dual(EPSILON) == EPSILON
        assert dual(Var("h")) == Var("h")

    def test_output_becomes_input(self):
        assert dual(send("a")) == receive("a")
        assert dual(receive("a")) == send("a")

    def test_choices_flip_kind(self):
        term = internal(("a", EPSILON), ("b", send("c")))
        assert dual(term) == external(("a", EPSILON), ("b", receive("c")))

    def test_involution(self):
        term = mu("h", external(("go", internal(("yes", Var("h")),
                                                ("no", EPSILON))),))
        assert dual(dual(term)) == term

    def test_seq_distributes(self):
        term = seq(send("a"), receive("b"))
        assert dual(term) == seq(receive("a"), send("b"))

    def test_rejects_unprojected_nodes(self):
        with pytest.raises(TypeError):
            dual(event("e"))
        with pytest.raises(TypeError):
            dual(Framing(forbid("x"), EPSILON))


class TestDualCompliance:
    CONTRACTS = [
        send("a"),
        receive("a", send("b")),
        internal(("a", EPSILON), ("b", receive("x"))),
        external(("a", send("x")), ("b", EPSILON)),
        mu("h", internal(("more", receive("ack", Var("h"))),
                         ("done", EPSILON))),
        seq(send("a"), external(("x", EPSILON), ("y", EPSILON))),
    ]

    @pytest.mark.parametrize("contract", CONTRACTS,
                             ids=[str(i) for i in range(len(CONTRACTS))])
    def test_contract_complies_with_its_dual(self, contract):
        assert compliant(contract, dual(contract))

    @pytest.mark.parametrize("contract", CONTRACTS,
                             ids=[str(i) for i in range(len(CONTRACTS))])
    def test_dual_complies_with_the_contract(self, contract):
        # Compliance is client-biased, but duals terminate together, so
        # it holds in both directions.
        assert compliant(dual(contract), contract)

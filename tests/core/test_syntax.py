"""Tests for the history-expression AST and its structural operations."""

import pytest

from repro.core.actions import Receive, Send
from repro.core.syntax import (EPSILON, Epsilon, EventNode, ExternalChoice,
                               Framing, InternalChoice, Mu, Request, Seq,
                               Var, channels_of, event, events_of, external,
                               free_variables, internal, is_closed, mu,
                               policies_of, receive, request, requests_of,
                               send, seq, substitute, unfold)
from repro.policies.library import forbid


class TestSeqSmartConstructor:
    def test_epsilon_is_left_unit(self):
        term = send("a")
        assert seq(EPSILON, term) == term

    def test_epsilon_is_right_unit(self):
        term = send("a")
        assert seq(term, EPSILON) == term

    def test_empty_composition_is_epsilon(self):
        assert seq() == EPSILON
        assert seq(EPSILON, EPSILON) == EPSILON

    def test_right_association(self):
        a, b, c = event("a"), event("b"), event("c")
        assert seq(seq(a, b), c) == seq(a, seq(b, c))
        assert seq(seq(a, b), c) == seq(a, b, c)

    def test_structure_of_flattened_seq(self):
        a, b, c = event("a"), event("b"), event("c")
        term = seq(a, b, c)
        assert isinstance(term, Seq)
        assert term.first == a
        assert isinstance(term.second, Seq)

    def test_nested_epsilons_vanish(self):
        a = event("a")
        assert seq(EPSILON, seq(a, EPSILON), EPSILON) == a


class TestConvenienceConstructors:
    def test_send_is_single_branch_internal_choice(self):
        term = send("a")
        assert isinstance(term, InternalChoice)
        assert term.branches == ((Send("a"), EPSILON),)

    def test_receive_is_single_branch_external_choice(self):
        term = receive("a", event("e"))
        assert isinstance(term, ExternalChoice)
        assert term.branches == ((Receive("a"), event("e")),)

    def test_external_accepts_strings_and_labels(self):
        term = external(("a", EPSILON), (Receive("b"), EPSILON))
        assert {label.channel for label, _ in term.branches} == {"a", "b"}

    def test_internal_accepts_strings_and_labels(self):
        term = internal(("a", EPSILON), (Send("b"), EPSILON))
        assert all(isinstance(label, Send) for label, _ in term.branches)

    def test_event_builds_params_tuple(self):
        node = event("sgn", 1, "x")
        assert node.event.name == "sgn"
        assert node.event.params == (1, "x")

    def test_request_coerces_id_to_string(self):
        node = request(3, None, EPSILON)
        assert node.request == "3"


class TestFreeVariables:
    def test_var_is_free(self):
        assert free_variables(Var("h")) == {"h"}

    def test_mu_binds(self):
        assert free_variables(mu("h", receive("a", Var("h")))) == frozenset()

    def test_mu_leaves_other_vars_free(self):
        term = mu("h", receive("a", Var("k")))
        assert free_variables(term) == {"k"}

    def test_closedness(self):
        assert is_closed(EPSILON)
        assert not is_closed(Var("h"))
        assert is_closed(mu("h", send("a", Var("h"))))

    def test_free_vars_through_all_constructs(self):
        term = seq(Framing(forbid("x"), Var("h")),
                   request("r", None, Var("k")))
        assert free_variables(term) == {"h", "k"}


class TestSubstitution:
    def test_substitute_var(self):
        assert substitute(Var("h"), "h", EPSILON) == EPSILON

    def test_substitute_other_var_unchanged(self):
        assert substitute(Var("k"), "h", EPSILON) == Var("k")

    def test_substitute_stops_at_shadowing_mu(self):
        inner = mu("h", receive("a", Var("h")))
        assert substitute(inner, "h", event("e")) == inner

    def test_substitute_under_choices(self):
        term = external(("a", Var("h")), ("b", EPSILON))
        result = substitute(term, "h", event("e"))
        assert result.branches[0][1] == event("e")

    def test_capture_avoidance(self):
        # μk.(a.h) with h := k  must not capture the free k.
        term = Mu("k", receive("a", Var("h")))
        result = substitute(term, "h", Var("k"))
        assert isinstance(result, Mu)
        assert result.var != "k"
        assert free_variables(result) == {"k"}

    def test_unfold_substitutes_recursively(self):
        loop = mu("h", receive("a", Var("h")))
        unfolded = unfold(loop)
        assert unfolded == receive("a", loop)


class TestStructuralQueries:
    def test_requests_of_finds_nested(self):
        inner = request("r2", None, send("x"))
        outer = request("r1", None, seq(send("a"), inner))
        found = requests_of(outer)
        assert [node.request for node in found] == ["r1", "r2"]

    def test_events_of(self):
        term = seq(event("sgn", 1), receive("a", event("p", 45)))
        names = {e.name for e in events_of(term)}
        assert names == {"sgn", "p"}

    def test_channels_of(self):
        term = seq(send("out"), external(("in1", EPSILON),
                                         ("in2", EPSILON)))
        assert channels_of(term) == {"out", "in1", "in2"}

    def test_policies_of(self):
        phi = forbid("boom")
        term = seq(Framing(phi, EPSILON), request("r", phi, EPSILON))
        assert policies_of(term) == {phi}

    def test_policies_of_ignores_empty_request_policy(self):
        term = request("r", None, EPSILON)
        assert policies_of(term) == frozenset()

    def test_walk_is_preorder(self):
        a, b = event("a"), event("b")
        term = seq(a, b)
        nodes = list(term.walk())
        assert nodes[0] is term
        assert a in nodes and b in nodes


class TestHashabilityAndEquality:
    def test_terms_are_hashable(self):
        terms = {EPSILON, Epsilon(), event("a"), send("x"),
                 mu("h", receive("a", Var("h")))}
        assert EPSILON in terms
        # Epsilon() == EPSILON so the set deduplicates them.
        assert len([t for t in terms if isinstance(t, Epsilon)]) == 1

    def test_structural_equality(self):
        assert external(("a", EPSILON)) == external(("a", EPSILON))
        assert external(("a", EPSILON)) != internal(("a", EPSILON))

    def test_event_node_equality(self):
        assert EventNode(event("a").event) == event("a")

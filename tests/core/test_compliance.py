"""Tests for service compliance (Definition 4, Theorem 1)."""

from repro.core.compliance import (check_compliance, compliant,
                                   compliant_coinductive)
from repro.core.syntax import (EPSILON, Var, event, external, internal, mu,
                               receive, send, seq)
from repro.contracts.contract import Contract


class TestBasicCompliance:
    def test_empty_client_is_compliant_with_anything(self):
        assert compliant(EPSILON, receive("a"))
        assert compliant(EPSILON, send("a"))
        assert compliant(EPSILON, EPSILON)

    def test_matching_output_input(self):
        assert compliant(send("a"), receive("a"))

    def test_matching_input_output(self):
        assert compliant(receive("a"), send("a"))

    def test_channel_mismatch(self):
        assert not compliant(send("a"), receive("b"))

    def test_both_waiting_deadlocks(self):
        assert not compliant(receive("a"), receive("a"))

    def test_both_sending_deadlocks(self):
        assert not compliant(send("a"), send("a"))

    def test_client_waiting_on_terminated_server(self):
        assert not compliant(receive("a"), EPSILON)

    def test_client_sending_to_terminated_server(self):
        assert not compliant(send("a"), EPSILON)


class TestAsymmetry:
    """The client may terminate and leave; the server may not be left
    *blocking* the client."""

    def test_client_done_server_still_talking(self):
        client = send("a")
        server = receive("a", send("more"))
        # After the sync the client is ε; the dangling !more is fine.
        assert compliant(client, server)

    def test_server_done_client_still_talking_fails(self):
        client = send("a", send("b"))
        server = receive("a")
        assert not compliant(client, server)


class TestChoices:
    def test_every_client_output_must_be_handled(self):
        client = internal(("a", EPSILON), ("b", EPSILON))
        full_server = external(("a", EPSILON), ("b", EPSILON))
        partial_server = external(("a", EPSILON))
        assert compliant(client, full_server)
        assert not compliant(client, partial_server)

    def test_server_may_offer_more_inputs_than_used(self):
        client = internal(("a", EPSILON))
        server = external(("a", EPSILON), ("b", EPSILON), ("c", EPSILON))
        assert compliant(client, server)

    def test_every_server_output_must_be_handled(self):
        client = external(("ok", EPSILON))
        server = internal(("ok", EPSILON), ("err", EPSILON))
        assert not compliant(client, server)

    def test_client_may_offer_more_inputs_than_server_sends(self):
        client = external(("ok", EPSILON), ("err", EPSILON))
        server = internal(("ok", EPSILON))
        assert compliant(client, server)

    def test_failure_deep_in_protocol(self):
        client = send("go", external(("fine", EPSILON)))
        server = receive("go", internal(("fine", EPSILON),
                                        ("boom", EPSILON)))
        assert not compliant(client, server)


class TestRecursion:
    def test_compliant_ping_pong(self):
        client = mu("h", internal(("ping", receive("pong", Var("h"))),
                                  ("quit", EPSILON)))
        server = mu("k", external(("ping", send("pong", Var("k"))),
                                  ("quit", EPSILON)))
        assert compliant(client, server)

    def test_server_missing_exit_branch(self):
        client = mu("h", internal(("ping", receive("pong", Var("h"))),
                                  ("quit", EPSILON)))
        server = mu("k", external(("ping", send("pong", Var("k")))))
        assert not compliant(client, server)

    def test_infinite_interaction_is_compliant(self):
        # Progress, not termination: an endless ping-pong never sticks.
        client = mu("h", send("ping", receive("pong", Var("h"))))
        server = mu("k", receive("ping", send("pong", Var("k"))))
        assert compliant(client, server)


class TestProjectionIntegration:
    def test_events_are_transparent(self):
        client = seq(event("log"), send("a"))
        server = seq(event("audit", 7), receive("a"))
        assert compliant(client, server)

    def test_precomputed_contracts_accepted(self):
        client = Contract(send("a"))
        server = Contract(receive("a"))
        assert compliant(client, server)


class TestWitnesses:
    def test_compliant_result_has_no_witness(self):
        result = check_compliance(send("a"), receive("a"))
        assert result.compliant and bool(result)
        assert result.witness is None and result.trace is None

    def test_counterexample_trace_ends_in_witness(self):
        client = send("go", internal(("a", EPSILON), ("b", EPSILON)))
        server = receive("go", external(("a", EPSILON)))
        result = check_compliance(client, server)
        assert not result.compliant
        assert result.trace is not None
        assert result.trace[-1] == result.witness
        # One synchronisation (go) before the stuck pair.
        assert len(result.trace) == 2

    def test_immediately_stuck_trace_is_initial_state_only(self):
        result = check_compliance(send("a"), receive("b"))
        assert result.trace is not None and len(result.trace) == 1


class TestDecidersAgree:
    def test_both_deciders_on_paper_style_cases(self):
        cases = [
            (send("a"), receive("a")),
            (send("a"), receive("b")),
            (internal(("a", EPSILON), ("b", EPSILON)),
             external(("a", EPSILON))),
            (mu("h", send("p", receive("q", Var("h")))),
             mu("k", receive("p", send("q", Var("k"))))),
            (receive("a"), receive("a")),
            (EPSILON, send("x")),
        ]
        for client, server in cases:
            assert (compliant(client, server)
                    == compliant_coinductive(client, server))

"""Tests for the stand-alone operational semantics (the rules of Sect. 3)."""

import pytest

from repro.core.actions import (Event, FrameClose, FrameOpen, Receive, Send,
                                SessionClose, SessionOpen)
from repro.core.errors import OpenTermError, WellFormednessError
from repro.core.semantics import (can_step, enabled_labels, is_terminated,
                                  step, successors, traces)
from repro.core.syntax import (EPSILON, ClosePending, FrameClosePending,
                               Framing, Mu, Var, event, external, internal,
                               mu, receive, request, send, seq)
from repro.policies.library import forbid

PHI = forbid("boom")


class TestAxioms:
    def test_epsilon_is_stuck(self):
        assert successors(EPSILON) == ()
        assert is_terminated(EPSILON)

    def test_event_fires_and_terminates(self):
        moves = successors(event("sgn", 3))
        assert moves == ((Event("sgn", (3,)), EPSILON),)

    def test_internal_choice_offers_each_output(self):
        term = internal(("a", event("x")), ("b", event("y")))
        moves = dict(successors(term))
        assert moves == {Send("a"): event("x"), Send("b"): event("y")}

    def test_external_choice_offers_each_input(self):
        term = external(("a", EPSILON), ("b", EPSILON))
        assert enabled_labels(term) == {Receive("a"), Receive("b")}

    def test_session_open_leaves_close_pending(self):
        term = request("r", PHI, send("a"))
        ((label, residual),) = successors(term)
        assert label == SessionOpen("r", PHI)
        assert residual == seq(send("a"), ClosePending("r", PHI))

    def test_close_pending_fires_close(self):
        ((label, residual),) = successors(ClosePending("r", PHI))
        assert label == SessionClose("r", PHI)
        assert residual == EPSILON

    def test_framing_opens_and_leaves_close_pending(self):
        term = Framing(PHI, event("e"))
        ((label, residual),) = successors(term)
        assert label == FrameOpen(PHI)
        assert residual == seq(event("e"), FrameClosePending(PHI))

    def test_frame_close_pending_fires(self):
        ((label, residual),) = successors(FrameClosePending(PHI))
        assert label == FrameClose(PHI)
        assert residual == EPSILON


class TestSequencing:
    def test_seq_steps_through_first(self):
        term = seq(event("a"), event("b"))
        ((label, residual),) = successors(term)
        assert label == Event("a")
        assert residual == event("b")

    def test_seq_preserves_continuation_under_choice(self):
        term = seq(external(("a", event("x")), ("b", EPSILON)), event("z"))
        moves = dict(successors(term))
        assert moves[Receive("a")] == seq(event("x"), event("z"))
        assert moves[Receive("b")] == event("z")

    def test_empty_framing_reduces_to_close(self):
        term = Framing(PHI, EPSILON)
        ((_, residual),) = successors(term)
        assert residual == FrameClosePending(PHI)


class TestRecursion:
    def test_mu_unfolds_transparently(self):
        loop = mu("h", receive("ping", send("pong", Var("h"))))
        ((label, residual),) = successors(loop)
        assert label == Receive("ping")
        assert residual == send("pong", loop)

    def test_recursion_is_finite_state(self):
        loop = mu("h", receive("ping", send("pong", Var("h"))))
        first = dict(successors(loop))[Receive("ping")]
        second = dict(successors(first))[Send("pong")]
        assert second == loop  # the loop closes on itself

    def test_unguarded_recursion_raises(self):
        bad = Mu("h", Mu("k", Var("h")))
        with pytest.raises(WellFormednessError):
            list(step(bad))

    def test_open_term_raises(self):
        with pytest.raises(OpenTermError):
            list(step(Var("h")))

    def test_open_term_under_seq_raises(self):
        with pytest.raises(OpenTermError):
            list(step(seq(Var("h"), event("a"))))


class TestDerivedObservations:
    def test_can_step(self):
        assert can_step(event("a"))
        assert not can_step(EPSILON)

    def test_traces_enumerates_maximal_runs(self):
        term = seq(internal(("a", EPSILON), ("b", EPSILON)), event("z"))
        runs = set(traces(term, max_length=10))
        assert runs == {
            (Send("a"), Event("z")),
            (Send("b"), Event("z")),
        }

    def test_traces_respects_length_cap(self):
        loop = mu("h", receive("ping", Var("h")))
        runs = list(traces(loop, max_length=3))
        assert runs == [(Receive("ping"),) * 3]

    def test_whole_request_trace(self):
        term = request("r", PHI, send("a"))
        (run,) = traces(term, max_length=10)
        assert run == (SessionOpen("r", PHI), Send("a"),
                       SessionClose("r", PHI))

"""Tests for observable ready sets (Definition 3), incl. the paper's
worked examples."""

import pytest

from repro.core.actions import Receive, Send
from repro.core.ready_sets import co_set, offers_nothing, ready_sets
from repro.core.syntax import (EPSILON, Framing, Var, event, external,
                               internal, mu, receive, send, seq)
from repro.policies.library import forbid


def rs(*sets):
    return frozenset(frozenset(s) for s in sets)


class TestBaseCases:
    def test_epsilon_offers_nothing(self):
        assert ready_sets(EPSILON) == rs(set())
        assert offers_nothing(EPSILON)

    def test_variable_offers_nothing(self):
        assert ready_sets(Var("h")) == rs(set())

    def test_internal_choice_one_singleton_per_output(self):
        term = internal(("a1", EPSILON), ("a2", EPSILON))
        assert ready_sets(term) == rs({Send("a1")}, {Send("a2")})

    def test_external_choice_single_combined_set(self):
        term = external(("a1", EPSILON), ("a2", EPSILON))
        assert ready_sets(term) == rs({Receive("a1"), Receive("a2")})


class TestPaperExamples:
    def test_example_internal(self):
        """(ā1 ⊕ ā2) ⇓ {ā1} and ⇓ {ā2}."""
        term = internal(("a1", EPSILON), ("a2", EPSILON))
        assert frozenset({Send("a1")}) in ready_sets(term)
        assert frozenset({Send("a2")}) in ready_sets(term)

    def test_example_recursive_loop(self):
        """H = μh.(ā1 ⊕ ā2)·b̄·h  has ready sets {ā1} and {ā2}."""
        body = seq(internal(("a1", EPSILON), ("a2", EPSILON)),
                   send("b", Var("h")))
        term = mu("h", body)
        assert ready_sets(term) == rs({Send("a1")}, {Send("a2")})

    def test_example_seq_fallthrough(self):
        """ε·(a + b)·(d̄ ⊕ ē) ⇓ {a, b}."""
        term = seq(EPSILON,
                   external(("a", EPSILON), ("b", EPSILON)),
                   internal(("d", EPSILON), ("e", EPSILON)))
        assert ready_sets(term) == rs({Receive("a"), Receive("b")})


class TestSequencing:
    def test_first_nonempty_hides_second(self):
        term = seq(send("a"), receive("b"))
        assert ready_sets(term) == rs({Send("a")})

    def test_empty_first_falls_through(self):
        term = seq(EPSILON, send("a"))
        assert ready_sets(term) == rs({Send("a")})

    def test_mu_delegates_to_body(self):
        term = mu("h", receive("a", Var("h")))
        assert ready_sets(term) == rs({Receive("a")})


class TestNonContracts:
    @pytest.mark.parametrize("term", [
        event("e"),
        Framing(forbid("x"), EPSILON),
    ])
    def test_unprojected_nodes_rejected(self, term):
        with pytest.raises(TypeError):
            ready_sets(term)


class TestCoSet:
    def test_co_set_flips_polarity(self):
        actions = frozenset({Send("a"), Receive("b")})
        assert co_set(actions) == frozenset({Receive("a"), Send("b")})

    def test_co_set_is_involutive(self):
        actions = frozenset({Send("a"), Receive("b"), Send("c")})
        assert co_set(co_set(actions)) == actions

    def test_co_set_of_empty(self):
        assert co_set(frozenset()) == frozenset()

"""Tests for the projection on communication actions (Section 4)."""

from repro.core.projection import project
from repro.core.syntax import (EPSILON, ExternalChoice, Framing,
                               InternalChoice, Mu, Var, event, external,
                               internal, is_closed, mu, receive, request,
                               send, seq)
from repro.paper import figure2
from repro.policies.library import forbid

PHI = forbid("boom")


class TestErasure:
    def test_epsilon_projects_to_epsilon(self):
        assert project(EPSILON) == EPSILON

    def test_events_erase(self):
        assert project(event("sgn", 1)) == EPSILON

    def test_event_sequences_erase(self):
        assert project(seq(event("a"), event("b"))) == EPSILON

    def test_whole_requests_erase(self):
        term = request("r", PHI, seq(send("a"), receive("b")))
        assert project(term) == EPSILON

    def test_framing_projects_to_body(self):
        term = Framing(PHI, send("a"))
        assert project(term) == send("a")

    def test_nested_framing_and_events(self):
        term = Framing(PHI, seq(event("e"), receive("a"), event("f")))
        assert project(term) == receive("a")


class TestHomomorphism:
    def test_seq_distributes(self):
        term = seq(event("e"), send("a"), event("f"), receive("b"))
        assert project(term) == seq(send("a"), receive("b"))

    def test_external_choice_projects_branchwise(self):
        term = external(("a", event("e")), ("b", send("x")))
        expected = external(("a", EPSILON), ("b", send("x")))
        assert project(term) == expected

    def test_internal_choice_projects_branchwise(self):
        term = internal(("a", request("r", None, send("z"))),
                        ("b", EPSILON))
        expected = internal(("a", EPSILON), ("b", EPSILON))
        assert project(term) == expected

    def test_mu_projects_body(self):
        term = mu("h", receive("a", seq(event("e"), Var("h"))))
        assert project(term) == mu("h", receive("a", Var("h")))

    def test_var_projects_to_itself(self):
        assert project(Var("h")) == Var("h")


class TestDegenerateRecursion:
    def test_mu_without_var_after_projection_drops_binder(self):
        # μh.(a.ε) never reuses h — the binder is useless after projection.
        term = Mu("h", receive("a", EPSILON))
        assert project(term) == receive("a", EPSILON)

    def test_trivial_loop_simplifies_to_epsilon(self):
        # μh.(α·h) projects to μh.h, which denotes no communication.
        term = Mu("h", seq(event("e"), Var("h")))
        assert project(term) == EPSILON


class TestClosednessPreservation:
    def test_projection_preserves_closedness(self):
        term = figure2.client_1()
        assert is_closed(term)
        assert is_closed(project(term))


class TestPaperContracts:
    def test_client_projects_to_its_protocol(self):
        from repro.lang.pretty import pretty
        body = figure2.client_1().body
        # !Req ; (?CoBo . !Pay + ?NoAv) — events and framings are gone.
        assert pretty(project(body)) == "!Req ; (?CoBo . !Pay + ?NoAv)"

    def test_whole_client_projects_to_epsilon(self):
        # The client is a single request, so its own contract is empty.
        assert project(figure2.client_1()) == EPSILON

    def test_hotel_projects_to_id_then_answers(self):
        projected = project(figure2.hotel_3())
        assert isinstance(projected, ExternalChoice)
        ((label, continuation),) = projected.branches
        assert label.channel == "IdC"
        assert isinstance(continuation, InternalChoice)
        assert {l.channel for l, _ in continuation.branches} == \
            {"Bok", "UnA"}

    def test_broker_contract_keeps_outer_communications_only(self):
        from repro.lang.pretty import pretty
        # ?Req ; (!CoBo . ?Pay ++ !NoAv): the inner session r3 is erased.
        assert pretty(project(figure2.broker())) == \
            "?Req ; (!CoBo . ?Pay ++ !NoAv)"

"""Tests for histories, AP, balance and validity (Section 3.1)."""

import pytest

from repro.core.actions import Event, FrameClose, FrameOpen, Send
from repro.core.validity import (EMPTY_HISTORY, History, ValidityMonitor,
                                 first_invalid_prefix, is_valid)
from repro.policies.library import at_most, forbid, never_after

#: φ: no α (write) after γ (read) — the shape of the paper's example.
PHI = never_after("gamma", "alpha")

GAMMA = Event("gamma")
ALPHA = Event("alpha")
BETA = Event("beta")


class TestHistoryBasics:
    def test_empty_history(self):
        assert len(EMPTY_HISTORY) == 0
        assert str(EMPTY_HISTORY) == "ε"

    def test_append_and_extend(self):
        eta = EMPTY_HISTORY.append(GAMMA).extend([ALPHA, BETA])
        assert tuple(eta) == (GAMMA, ALPHA, BETA)

    def test_add_operator(self):
        eta = History([GAMMA]) + [ALPHA]
        assert isinstance(eta, History)
        assert tuple(eta) == (GAMMA, ALPHA)

    def test_rejects_non_history_labels(self):
        with pytest.raises(TypeError):
            History([Send("a")])

    def test_append_and_extend_validate_the_new_labels(self):
        eta = History([GAMMA])
        with pytest.raises(TypeError):
            eta.append(Send("a"))
        with pytest.raises(TypeError):
            eta.extend([ALPHA, Send("a")])
        with pytest.raises(TypeError):
            eta + [Send("a")]

    def test_growth_fast_paths_stay_histories(self):
        # append/extend/__add__/prefixes skip re-validating labels that
        # already passed through a History; the results must still be
        # full-fledged History values.
        eta = History([GAMMA]).append(ALPHA).extend(History([BETA]))
        assert isinstance(eta, History)
        assert tuple(eta) == (GAMMA, ALPHA, BETA)
        for prefix in eta.prefixes():
            assert isinstance(prefix, History)
        assert isinstance(History(eta), History)
        assert tuple(History(eta)) == tuple(eta)

    def test_flatten_erases_framings(self):
        eta = History([GAMMA, FrameOpen(PHI), ALPHA, FrameClose(PHI)])
        assert eta.flatten() == (GAMMA, ALPHA)

    def test_prefixes_shortest_first(self):
        eta = History([GAMMA, ALPHA])
        assert [len(p) for p in eta.prefixes()] == [0, 1, 2]


class TestActivePolicies:
    def test_ap_of_empty(self):
        assert EMPTY_HISTORY.active_policies() == {}

    def test_ap_counts_activations(self):
        psi = forbid("x")
        eta = History([FrameOpen(PHI), FrameOpen(PSI := psi),
                       FrameOpen(PHI)])
        active = eta.active_policies()
        assert active[PHI] == 2 and active[PSI] == 1

    def test_ap_removes_closed(self):
        eta = History([FrameOpen(PHI), GAMMA, FrameClose(PHI)])
        assert eta.active_policies() == {}

    def test_events_do_not_affect_ap(self):
        eta = History([GAMMA, ALPHA])
        assert eta.active_policies() == {}


class TestBalance:
    def test_empty_is_balanced(self):
        assert EMPTY_HISTORY.is_balanced()

    def test_events_are_balanced(self):
        assert History([GAMMA, ALPHA]).is_balanced()

    def test_framed_history_is_balanced(self):
        eta = History([FrameOpen(PHI), GAMMA, FrameClose(PHI)])
        assert eta.is_balanced()

    def test_open_framing_is_prefix_only(self):
        eta = History([FrameOpen(PHI), GAMMA])
        assert not eta.is_balanced()
        assert eta.is_prefix_of_balanced()

    def test_improper_nesting_rejected(self):
        psi = forbid("x")
        eta = History([FrameOpen(PHI), FrameOpen(psi),
                       FrameClose(PHI), FrameClose(psi)])
        assert not eta.is_balanced()
        assert not eta.is_prefix_of_balanced()

    def test_unmatched_close_rejected(self):
        assert not History([FrameClose(PHI)]).is_prefix_of_balanced()


class TestValidity:
    """The paper's worked example: φ = 'no α after γ'."""

    def test_paper_negative_example(self):
        # γ·α·Lφ·β is NOT valid: when β fires, φ is active and the
        # flattened prefix γ·α already disobeys it.
        eta = History([GAMMA, ALPHA, FrameOpen(PHI), BETA])
        assert not is_valid(eta)

    def test_paper_positive_example(self):
        # Lφ·γ·Mφ·α·β is valid: φ is closed before α fires.
        eta = History([FrameOpen(PHI), GAMMA, FrameClose(PHI), ALPHA, BETA])
        assert is_valid(eta)

    def test_violation_inside_framing(self):
        eta = History([FrameOpen(PHI), GAMMA, ALPHA, FrameClose(PHI)])
        assert not is_valid(eta)

    def test_history_dependence_at_opening(self):
        # The violating pair precedes the framing entirely; opening the
        # framing is what makes the history invalid.
        eta = History([GAMMA, ALPHA, FrameOpen(PHI)])
        assert not is_valid(eta)
        assert is_valid(History([GAMMA, ALPHA]))

    def test_empty_history_is_valid(self):
        assert is_valid(EMPTY_HISTORY)

    def test_accepts_plain_iterables(self):
        assert is_valid([GAMMA, ALPHA])

    def test_first_invalid_prefix(self):
        eta = History([GAMMA, FrameOpen(PHI), ALPHA, BETA])
        prefix = first_invalid_prefix(eta)
        assert prefix is not None
        assert tuple(prefix) == (GAMMA, FrameOpen(PHI), ALPHA)

    def test_first_invalid_prefix_none_when_valid(self):
        eta = History([FrameOpen(PHI), GAMMA, FrameClose(PHI), ALPHA])
        assert first_invalid_prefix(eta) is None

    def test_multiset_activation(self):
        # Two activations: closing one keeps φ active.
        eta = History([FrameOpen(PHI), FrameOpen(PHI), FrameClose(PHI),
                       GAMMA, ALPHA])
        assert not is_valid(eta)

    def test_counting_policy(self):
        bound = at_most("tick", 2)
        ok = History([FrameOpen(bound), Event("tick"), Event("tick")])
        bad = ok.append(Event("tick"))
        assert is_valid(ok)
        assert not is_valid(bad)


class TestValidityMonitor:
    def test_monitor_matches_declarative_checker(self):
        labels = [GAMMA, FrameOpen(PHI), BETA, FrameClose(PHI), ALPHA]
        monitor = ValidityMonitor()
        eta = EMPTY_HISTORY
        for label in labels:
            eta = eta.append(label)
            monitor.extend(label)
            assert monitor.valid == is_valid(eta)

    def test_can_extend_is_pure(self):
        monitor = ValidityMonitor([GAMMA, FrameOpen(PHI)])
        assert not monitor.can_extend(ALPHA)
        assert monitor.valid  # nothing was recorded
        assert monitor.can_extend(BETA)

    def test_can_extend_framing_checks_past(self):
        monitor = ValidityMonitor([GAMMA, ALPHA])
        assert not monitor.can_extend(FrameOpen(PHI))
        assert monitor.can_extend(FrameOpen(forbid("unrelated")))

    def test_extend_records_violation(self):
        monitor = ValidityMonitor()
        monitor.extend(FrameOpen(PHI))
        monitor.extend(GAMMA)
        assert monitor.extend(ALPHA) is False
        assert not monitor.valid

    def test_frame_close_reenables_events(self):
        monitor = ValidityMonitor([GAMMA, FrameOpen(PHI),
                                   FrameClose(PHI)])
        assert monitor.can_extend(ALPHA)

    def test_copy_is_independent(self):
        monitor = ValidityMonitor([FrameOpen(PHI), GAMMA])
        clone = monitor.copy()
        monitor.extend(ALPHA)
        assert not monitor.valid
        assert clone.valid
        assert clone.can_extend(BETA)

    def test_active_policies_tracking(self):
        monitor = ValidityMonitor([FrameOpen(PHI), FrameOpen(PHI)])
        assert monitor.active_policies()[PHI] == 2
        monitor.extend(FrameClose(PHI))
        assert monitor.active_policies()[PHI] == 1

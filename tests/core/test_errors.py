"""Tests for the exception hierarchy and failure-path behaviours."""

import pytest

from repro.core.errors import (OpenTermError, ParseError, PlanError,
                               PolicyDefinitionError, ReproError,
                               SecurityViolationError,
                               StateSpaceLimitError, StuckSessionError,
                               WellFormednessError)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        WellFormednessError("x"), OpenTermError("h"),
        StateSpaceLimitError(10), SecurityViolationError("p", "h", "e"),
        StuckSessionError("x"), PlanError("x"),
        ParseError("bad", 1, 2), PolicyDefinitionError("x")])
    def test_everything_is_a_repro_error(self, exc):
        assert isinstance(exc, ReproError)

    def test_open_term_error_is_well_formedness(self):
        assert isinstance(OpenTermError("h"), WellFormednessError)

    def test_parse_error_carries_position(self):
        error = ParseError("unexpected thing", 3, 14)
        assert (error.line, error.column) == (3, 14)
        assert "3:14" in str(error)
        assert error.message == "unexpected thing"

    def test_state_space_limit_mentions_bound(self):
        error = StateSpaceLimitError(1234, "product")
        assert "1234" in str(error)
        assert "product" in str(error)
        assert error.limit == 1234

    def test_security_violation_carries_context(self):
        error = SecurityViolationError("policy", "history", "event")
        assert error.policy == "policy"
        assert error.history == "history"
        assert error.event == "event"

    def test_open_term_error_names_the_variable(self):
        error = OpenTermError("loop")
        assert error.variable == "loop"
        assert "loop" in str(error)


class TestFailurePaths:
    def test_lts_limit_enforced_on_history_expressions(self):
        # A wide expression explored with a tiny bound.
        from repro.core.semantics import step
        from repro.core.syntax import event, seq
        from repro.contracts.lts import build_lts
        term = seq(*(event(f"e{i}") for i in range(10)))
        with pytest.raises(StateSpaceLimitError):
            build_lts(term, step, max_states=3)

    def test_security_checker_limit(self):
        from repro.analysis.security import check_security
        from repro.analysis.session_product import assemble
        from repro.core.plans import Plan
        from repro.core.syntax import Framing, event, seq
        from repro.network.repository import Repository
        from repro.policies.library import forbid
        term = Framing(forbid("x"), seq(*(event(f"e{i}")
                                          for i in range(20))))
        lts = assemble(term, Plan.empty(), Repository(), "me")
        with pytest.raises(StateSpaceLimitError):
            check_security(lts, max_states=2)

    def test_bpa_limit(self):
        from repro.bpa.modelcheck import check_validity_bpa
        from repro.core.syntax import Framing, event, seq
        from repro.policies.library import forbid
        term = Framing(forbid("x"), seq(*(event(f"e{i}")
                                          for i in range(20))))
        with pytest.raises(StateSpaceLimitError):
            check_validity_bpa(term, max_states=2)

"""Tests for rollback-first supervision: checkpointed choices, rewinds,
the recovery-ladder order, and the distinct recovery counters.

The workload is the branchy module (a linear preamble, then an internal
choice between two service branches) — seed 3 makes the scheduler pick
the ``go_a`` branch first, which a permanent ``drop`` on ``ok_a``
strands one step in.
"""

import pytest

from benchmarks.workloads import branchy_client, branchy_worker
from repro.core.plans import Plan, PlanVector
from repro.core.validity import is_valid
from repro.network.repository import Repository
from repro.resilience import (Fault, FaultPlan, RollbackPolicy,
                              Supervisor, move_key)
from repro.resilience.recovery import BackoffPolicy

#: A seed whose first scheduler pick is the doomed ``go_a`` branch.
BAD_BRANCH_SEED = 3


def branchy_module(workers=("wa",)):
    clients = {"lc": branchy_client()}
    plans = PlanVector.of(Plan.of({"r": "wa"}))
    repository = Repository({name: branchy_worker() for name in workers})
    return clients, plans, repository


DROP_OK_A = FaultPlan((Fault("drop", location="wa", channel="ok_a"),))

#: ``ok_a`` dead from the start, and ``go_b`` — the rollback's escape
#: branch — freshly dropped while the first rollback is waiting out its
#: backoff delay (the supervisor re-applies due faults mid-rollback).
DROP_BOTH_BRANCHES = FaultPlan((
    Fault("drop", location="wa", channel="ok_a"),
    Fault("drop", location="wa", channel="go_b", at_step=7)))


class TestRollbackPolicy:
    def test_of_normalises_booleans(self):
        assert RollbackPolicy.of(True) == RollbackPolicy()
        assert not RollbackPolicy.of(False).enabled
        policy = RollbackPolicy(enabled=True, max_rollbacks=2)
        assert RollbackPolicy.of(policy) is policy

    def test_move_key_distinguishes_channels(self):
        clients, plans, repository = branchy_module()
        supervisor = Supervisor(clients, plans, repository,
                                seed=BAD_BRANCH_SEED)
        transitions = supervisor.simulator.available()
        keys = {move_key(t) for t in transitions}
        assert len(keys) == len({(t.rule, str(t.label))
                                 for t in transitions})


class TestRollbackRecovery:
    def test_rollback_recovers_the_dropped_branch(self):
        clients, plans, repository = branchy_module()
        supervisor = Supervisor(clients, plans, repository,
                                fault_plan=DROP_OK_A,
                                seed=BAD_BRANCH_SEED)
        result = supervisor.run()
        assert result.status == "completed"
        assert result.rollbacks == 1
        assert result.retries == 0
        assert result.replans == 0
        assert supervisor.checkpoints_pushed >= 1
        episode, = result.episodes
        assert episode.outcome == "rolled-back"
        assert "1 rollback(s)" in episode.describe()
        assert all(is_valid(history) for history in result.histories)

    def test_rollback_disabled_has_no_way_out(self):
        # One worker, permanent drop: without rollback the ladder can
        # only retry (fails — the drop is permanent) and replan (fails —
        # there is no alternative location).
        clients, plans, repository = branchy_module()
        result = Supervisor(clients, plans, repository,
                            fault_plan=DROP_OK_A, rollback=False,
                            seed=BAD_BRANCH_SEED).run()
        assert result.status == "aborted"
        assert "gave-up" in result.diagnosis
        assert result.rollbacks == 0
        assert all(is_valid(history) for history in result.histories)

    def test_rollback_beats_failover_on_steps_and_ticks(self):
        clients, plans, repository = branchy_module(("wa", "wb"))
        rolled = Supervisor(clients, plans, repository,
                            fault_plan=DROP_OK_A,
                            seed=BAD_BRANCH_SEED).run()
        replanned = Supervisor(clients, plans, repository,
                               fault_plan=DROP_OK_A, rollback=False,
                               seed=BAD_BRANCH_SEED).run()
        assert rolled.status == replanned.status == "completed"
        assert rolled.rollbacks == 1 and replanned.replans == 1
        assert rolled.steps < replanned.steps
        assert rolled.clock < replanned.clock

    def test_rollback_budget_exhaustion_falls_down_the_ladder(self):
        clients, plans, repository = branchy_module(("wa", "wb"))
        result = Supervisor(clients, plans, repository,
                            fault_plan=DROP_OK_A,
                            rollback=RollbackPolicy(max_rollbacks=0),
                            seed=BAD_BRANCH_SEED).run()
        assert result.status == "completed"
        assert result.rollbacks == 0
        assert result.replans == 1  # straight to the failover rung

    def test_fault_free_runs_identical_with_and_without_rollback(self):
        # Checkpointing must not perturb the scheduler's RNG stream:
        # with no fault a run is bit-identical either way.
        clients, plans, repository = branchy_module(("wa", "wb"))
        for seed in range(6):
            on = Supervisor(clients, plans, repository,
                            rollback=True, seed=seed).run()
            off = Supervisor(clients, plans, repository,
                             rollback=False, seed=seed).run()
            assert on.status == off.status == "completed"
            assert on.steps == off.steps
            assert on.histories == off.histories

    def test_histories_stay_valid_across_seeds(self):
        clients, plans, repository = branchy_module()
        for seed in range(8):
            result = Supervisor(clients, plans, repository,
                                fault_plan=DROP_OK_A, seed=seed).run()
            assert result.status == "completed"
            assert all(is_valid(history)
                       for history in result.histories)


class TestFaultDuringRollback:
    def test_blocked_alternative_escalates_to_failover(self):
        # The ``go_b`` drop arms during the rollback's backoff wait, so
        # the rewound choice finds its alternative blocked too; the
        # episode then walks the whole ladder — and each rung is
        # counted distinctly, never conflated.
        clients, plans, repository = branchy_module(("wa", "wb"))
        result = Supervisor(clients, plans, repository,
                            fault_plan=DROP_BOTH_BRANCHES,
                            seed=BAD_BRANCH_SEED).run()
        assert result.status == "completed"
        episode, = result.episodes
        assert episode.outcome == "failed-over"
        assert episode.rollbacks == 1
        assert episode.retries == 3
        assert episode.replanned
        assert (result.rollbacks, result.retries, result.replans) \
            == (1, 3, 1)
        assert all(is_valid(history) for history in result.histories)

    def test_no_alternative_left_gives_up_diagnosed(self):
        clients, plans, repository = branchy_module()
        result = Supervisor(clients, plans, repository,
                            fault_plan=DROP_BOTH_BRANCHES,
                            seed=BAD_BRANCH_SEED).run()
        assert result.status == "aborted"
        assert result.diagnosed
        episode, = result.episodes
        assert episode.outcome == "gave-up"
        assert episode.rollbacks == 1
        assert episode.retries == 3
        assert all(is_valid(history) for history in result.histories)


class TestLadderOrder:
    def test_retry_budget_exhaustion_reaches_failover_without_rollback(
            self):
        # With the checkpoint rung disabled and a permanent drop, the
        # retry rung must burn its whole budget before failover fires.
        clients, plans, repository = branchy_module(("wa", "wb"))
        backoff = BackoffPolicy(base=1, factor=2, max_delay=8,
                                max_retries=3)
        result = Supervisor(clients, plans, repository,
                            fault_plan=DROP_OK_A, rollback=False,
                            backoff=backoff,
                            seed=BAD_BRANCH_SEED).run()
        assert result.status == "completed"
        episode, = result.episodes
        assert episode.retries == backoff.max_retries
        assert episode.waited_ticks == sum(backoff.delays())
        assert episode.outcome == "failed-over"

    def test_zero_retry_budget_goes_straight_to_failover(self):
        clients, plans, repository = branchy_module(("wa", "wb"))
        result = Supervisor(clients, plans, repository,
                            fault_plan=DROP_OK_A, rollback=False,
                            backoff=BackoffPolicy(max_retries=0),
                            seed=BAD_BRANCH_SEED).run()
        assert result.status == "completed"
        episode, = result.episodes
        assert episode.retries == 0
        assert episode.outcome == "failed-over"

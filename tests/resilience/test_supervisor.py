"""Tests for the supervisor: circuit breaker, detection, recovery and
budgets."""

import pytest

from repro.core.plans import PlanVector
from repro.core.validity import is_valid
from repro.network.repository import Repository
from repro.paper import figure2
from repro.policies.library import hotel_policy
from repro.resilience.faults import Fault, FaultPlan
from repro.resilience.recovery import BackoffPolicy
from repro.resilience.supervisor import (BREAKER_EDGES, CLOSED, HALF_OPEN,
                                         OPEN, CircuitBreaker, Supervisor)


class TestCircuitBreaker:
    def test_opens_at_threshold(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=5)
        breaker.record_failure(0)
        assert breaker.state == CLOSED
        breaker.record_failure(1)
        assert breaker.state == OPEN
        assert not breaker.allows(2)

    def test_half_opens_after_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=5)
        breaker.record_failure(0)
        assert not breaker.allows(4)
        assert breaker.allows(5)
        assert breaker.state == HALF_OPEN

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=2)
        breaker.record_failure(0)
        breaker.allows(2)
        breaker.record_success(3)
        assert breaker.state == CLOSED
        assert breaker.failures == 0

    def test_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=2)
        breaker.record_failure(0)
        breaker.allows(2)
        breaker.record_failure(3)
        assert breaker.state == OPEN
        # ... and the cooldown restarts from the new failure.
        assert not breaker.allows(4)
        assert breaker.allows(5)

    def test_half_open_retrip_ignores_the_threshold(self):
        # In half-open a single probe failure re-trips the breaker, no
        # matter how high the closed-state threshold is.
        breaker = CircuitBreaker(failure_threshold=5, cooldown=2)
        for _ in range(5):
            breaker.record_failure(0)
        assert breaker.state == OPEN
        assert breaker.allows(2)
        assert breaker.state == HALF_OPEN
        breaker.record_failure(3)
        assert breaker.state == OPEN
        assert (HALF_OPEN, OPEN) in {(s, t)
                                     for s, t, _ in breaker.transitions}

    def test_half_open_retrip_restarts_the_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=3)
        breaker.record_failure(0)
        breaker.allows(3)            # half-open probe
        breaker.record_failure(4)    # probe fails: re-trip at tick 4
        assert not breaker.allows(6)  # old cooldown would have expired
        assert breaker.allows(7)      # the new one counts from tick 4
        assert breaker.state == HALF_OPEN

    def test_repeated_half_open_cycles_stay_on_legal_edges(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1)
        now = 0
        for _ in range(4):
            breaker.record_failure(now)
            now += 1
            breaker.allows(now)
        for source, target, _tick in breaker.transitions:
            assert (source, target) in BREAKER_EDGES
        for before, after in zip(breaker.transitions,
                                 breaker.transitions[1:]):
            assert before[1] == after[0]

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=5)
        breaker.record_failure(0)
        breaker.record_success(1)
        breaker.record_failure(2)
        assert breaker.state == CLOSED

    def test_transitions_follow_legal_edges(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1)
        breaker.record_failure(0)
        breaker.allows(1)
        breaker.record_failure(1)
        breaker.allows(2)
        breaker.record_success(2)
        for source, target, _tick in breaker.transitions:
            assert (source, target) in BREAKER_EDGES


def hotel_module():
    clients = {figure2.LOC_CLIENT_1: figure2.client_1(),
               figure2.LOC_CLIENT_2: figure2.client_2()}
    plans = PlanVector((figure2.plan_pi1(), figure2.plan_pi2_valid()))
    return clients, plans, figure2.repository()


def flaky_module():
    repository = Repository({
        figure2.LOC_BROKER: figure2.broker(),
        "ls_alpha": figure2.hotel(7, 55, 70),
        "ls_beta": figure2.hotel(8, 50, 90),
    })
    clients = {"lc": figure2.client("1", hotel_policy(set(), 60, 80))}
    from repro.core.plans import Plan
    plans = PlanVector((Plan.of({"1": figure2.LOC_BROKER,
                                 "3": "ls_alpha"}),))
    return clients, plans, repository


class TestSupervisorHappyPath:
    def test_completes_without_faults(self):
        clients, plans, repository = hotel_module()
        result = Supervisor(clients, plans, repository, seed=1).run()
        assert result.status == "completed"
        assert result.episodes == []
        assert result.diagnosed
        assert all(is_valid(history) for history in result.histories)

    def test_runs_are_seeded(self):
        clients, plans, repository = hotel_module()
        one = Supervisor(clients, plans, repository, seed=4).run()
        two = Supervisor(clients, plans, repository, seed=4).run()
        assert one.steps == two.steps
        assert one.histories == two.histories


class TestSupervisorRecovery:
    def test_transient_drop_is_retried(self):
        clients, plans, repository = hotel_module()
        fault_plan = FaultPlan((Fault("drop", location="ls3",
                                      channel="Bok", at_step=0,
                                      duration=2),))
        result = Supervisor(clients, plans, repository,
                            fault_plan=fault_plan, seed=1).run()
        assert result.status == "completed"
        if result.episodes:
            assert all(e.outcome == "retried" for e in result.episodes)

    def test_crash_fails_over_to_alternative(self):
        clients, plans, repository = flaky_module()
        fault_plan = FaultPlan((Fault("crash", location="ls_alpha"),))
        supervisor = Supervisor(clients, plans, repository,
                                fault_plan=fault_plan, seed=2)
        result = supervisor.run()
        assert result.status == "completed"
        assert result.replans == 1
        assert supervisor._plans[0].lookup("3") == "ls_beta"
        assert all(is_valid(history) for history in result.histories)

    def test_compensated_history_stays_valid_after_failover(self):
        clients, plans, repository = flaky_module()
        # Crash mid-run, once the session with ls_alpha is open.
        fault_plan = FaultPlan((Fault("crash", location="ls_alpha",
                                      at_step=4),))
        result = Supervisor(clients, plans, repository,
                            fault_plan=fault_plan, seed=2).run()
        assert result.status == "completed"
        assert all(is_valid(history) for history in result.histories)
        assert all(history.is_balanced() for history in result.histories)

    def test_crash_without_alternative_aborts_with_diagnosis(self):
        clients, plans, repository = hotel_module()
        fault_plan = FaultPlan((Fault("crash", location="ls3"),))
        result = Supervisor(clients, plans, repository,
                            fault_plan=fault_plan, seed=1).run()
        assert result.status == "aborted"
        assert result.diagnosis is not None
        assert "gave-up" in result.diagnosis
        assert result.diagnosed

    def test_recovery_disabled_aborts_immediately(self):
        clients, plans, repository = hotel_module()
        fault_plan = FaultPlan((Fault("crash", location="lbr"),))
        result = Supervisor(clients, plans, repository,
                            fault_plan=fault_plan, recover=False,
                            seed=1).run()
        assert result.status == "aborted"
        assert "recovery disabled" in result.diagnosis
        assert result.episodes == []

    def test_failed_suspects_trip_the_breaker(self):
        clients, plans, repository = flaky_module()
        fault_plan = FaultPlan((Fault("crash", location="ls_alpha"),))
        supervisor = Supervisor(clients, plans, repository,
                                fault_plan=fault_plan,
                                breaker_threshold=1, seed=2)
        result = supervisor.run()
        assert result.status == "completed"
        assert supervisor.breakers["ls_alpha"].state != CLOSED
        transitions = result.breakers["ls_alpha"]
        assert transitions[0][:2] == (CLOSED, OPEN)


class TestSupervisorBudgets:
    def test_step_budget(self):
        clients, plans, repository = hotel_module()
        result = Supervisor(clients, plans, repository, max_steps=2,
                            seed=1).run()
        assert result.status == "budget-exhausted"
        assert "step budget" in result.diagnosis

    def test_deadline(self):
        clients, plans, repository = hotel_module()
        fault_plan = FaultPlan((Fault("drop", location="ls3",
                                      channel="Bok"),))
        result = Supervisor(clients, plans, repository,
                            fault_plan=fault_plan, deadline=3,
                            backoff=BackoffPolicy(max_retries=20),
                            seed=1).run()
        assert result.status == "budget-exhausted"
        assert "deadline" in result.diagnosis


class TestSecurityDetection:
    def test_bad_plan_reports_violation_with_cause(self):
        # Route C2 to the black-listed ls3: a genuine policy violation,
        # not an injected fault — the supervisor must NOT mask it.
        clients = {figure2.LOC_CLIENT_2: figure2.client_2()}
        plans = PlanVector((figure2.plan_pi2_bad_security(),))
        result = Supervisor(clients, plans, figure2.repository(),
                            seed=1).run()
        assert result.status == "security-violation"
        assert result.abort_cause is not None
        policy_name, label = result.abort_cause
        assert policy_name == "phi"
        assert label is not None

"""Tests for fault plans: activation windows, blocking, mutation and
seeded sampling."""

import random

import pytest

from repro.core.plans import Plan
from repro.core.syntax import receive, request, send, seq
from repro.network.config import Component, Configuration
from repro.network.repository import Repository
from repro.network.simulator import Simulator
from repro.paper import figure2
from repro.resilience.faults import (DEVIANT_SUFFIX, Fault, FaultPlan,
                                     involved_locations, module_requests,
                                     mutate_term, sample_fault_plan,
                                     service_channels)


def make_simulator():
    client = request("r", None, seq(send("a"), receive("b")))
    repo = Repository({"srv": seq(receive("a"), send("b"))})
    config = Configuration.of(Component.client("me", client))
    return Simulator(config, Plan.single("r", "srv"), repo)


class TestFault:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault("meltdown")

    def test_crash_is_permanent(self):
        fault = Fault("crash", location="srv", at_step=3, duration=2)
        assert not fault.active(2)
        assert fault.active(3)
        assert fault.active(1_000)

    def test_drop_window_closes(self):
        fault = Fault("drop", location="srv", channel="b", at_step=2,
                      duration=3)
        assert not fault.active(1)
        assert fault.active(2)
        assert fault.active(4)
        assert not fault.active(5)

    def test_permanent_drop(self):
        fault = Fault("drop", location="srv", channel="b")
        assert fault.active(10_000)

    def test_descriptions_are_stable(self):
        assert Fault("crash", location="srv").describe() == \
            "crash of srv at tick 0"
        assert "for 3 tick(s)" in Fault("stall", request="r", at_step=1,
                                        duration=3).describe()


class TestInvolvedLocations:
    def test_open_involves_opener_and_target(self):
        simulator = make_simulator()
        transition = simulator.available()[0]
        assert transition.rule == "open"
        before = simulator.configuration[0].tree
        after = transition.successor[0].tree
        assert involved_locations(before, after) == {"me", "srv"}

    def test_synch_involves_both_participants(self):
        simulator = make_simulator()
        simulator.fire_matching(lambda t: t.rule == "open")
        transition = simulator.available()[0]
        assert transition.rule == "synch"
        before = simulator.configuration[0].tree
        after = transition.successor[0].tree
        assert involved_locations(before, after) == {"me", "srv"}


class TestBlocking:
    def test_crash_blocks_open_to_location(self):
        simulator = make_simulator()
        transition = simulator.available()[0]
        before = simulator.configuration[0].tree
        plan = FaultPlan((Fault("crash", location="srv"),))
        fault = plan.blocking_fault(transition, before, now=0)
        assert fault is not None and fault.kind == "crash"

    def test_crash_not_yet_armed_does_not_block(self):
        simulator = make_simulator()
        transition = simulator.available()[0]
        before = simulator.configuration[0].tree
        plan = FaultPlan((Fault("crash", location="srv", at_step=9),))
        assert plan.blocking_fault(transition, before, now=0) is None

    def test_stall_blocks_open_by_request(self):
        simulator = make_simulator()
        transition = simulator.available()[0]
        before = simulator.configuration[0].tree
        plan = FaultPlan((Fault("stall", request="r", duration=5),))
        fault = plan.blocking_fault(transition, before, now=0)
        assert fault is not None and fault.kind == "stall"
        other = FaultPlan((Fault("stall", request="nope", duration=5),))
        assert other.blocking_fault(transition, before, now=0) is None

    def test_drop_blocks_matching_synch_only(self):
        simulator = make_simulator()
        simulator.fire_matching(lambda t: t.rule == "open")
        transition = simulator.available()[0]  # synch on "a"
        before = simulator.configuration[0].tree
        plan = FaultPlan((Fault("drop", location="srv", channel="a",
                                duration=4),))
        assert plan.blocking_fault(transition, before, now=0) is not None
        other = FaultPlan((Fault("drop", location="srv", channel="b",
                                 duration=4),))
        assert other.blocking_fault(transition, before, now=0) is None

    def test_crashed_locations(self):
        plan = FaultPlan((Fault("crash", location="a", at_step=4),
                          Fault("drop", location="b", channel="x")))
        assert plan.crashed_locations(0) == ()
        assert plan.crashed_locations(4) == ("a",)


class TestMutation:
    def test_renames_one_send_to_deviant_channel(self):
        term = figure2.hotel_3()
        mutated = mutate_term(term, random.Random(0))
        assert mutated != term
        assert DEVIANT_SUFFIX in str(mutated)

    def test_mutation_is_seeded(self):
        term = figure2.broker()
        first = mutate_term(term, random.Random(5))
        second = mutate_term(term, random.Random(5))
        assert first == second

    def test_term_without_sends_hangs_on_deviant_input(self):
        term = receive("only-input")
        mutated = mutate_term(term, random.Random(0))
        assert DEVIANT_SUFFIX in str(mutated)


class TestSampling:
    def test_same_seed_same_plan(self):
        repository = figure2.repository()
        one = sample_fault_plan(3, repository, requests=("1", "3"))
        two = sample_fault_plan(3, repository, requests=("1", "3"))
        assert one == two

    def test_kinds_are_respected(self):
        repository = figure2.repository()
        for seed in range(30):
            plan = sample_fault_plan(seed, repository,
                                     requests=("1",),
                                     kinds=("crash", "stall"))
            assert all(f.kind in ("crash", "stall") for f in plan)

    def test_no_stall_without_requests(self):
        repository = figure2.repository()
        for seed in range(30):
            plan = sample_fault_plan(seed, repository, kinds=("stall",))
            assert len(plan) == 0

    def test_records_seed_provenance(self):
        plan = sample_fault_plan(42, figure2.repository())
        assert plan.seed == 42


class TestDiscovery:
    def test_service_channels_in_term_order(self):
        repository = figure2.repository()
        assert service_channels(repository, "ls2") == ("Bok", "UnA", "Del")
        assert service_channels(repository, "missing") == ()

    def test_module_requests_sorted(self):
        clients = {figure2.LOC_CLIENT_1: figure2.client_1(),
                   figure2.LOC_CLIENT_2: figure2.client_2()}
        assert module_requests(clients, figure2.repository()) == \
            ("1", "2", "3")

"""Tests for backoff, compensation and failover re-planning."""

from repro.core.actions import Event, FrameClose, FrameOpen
from repro.core.validity import History, is_valid
from repro.network.config import Component, Leaf
from repro.network.repository import Repository
from repro.paper import figure2
from repro.policies.library import hotel_policy
from repro.resilience.recovery import (BackoffPolicy, compensate, replan,
                                       residual_frame_closes)


class TestBackoffPolicy:
    def test_default_delays(self):
        assert list(BackoffPolicy().delays()) == [1, 2, 4]

    def test_delays_are_capped(self):
        policy = BackoffPolicy(base=3, factor=4, max_delay=10,
                               max_retries=4)
        assert list(policy.delays()) == [3, 10, 10, 10]

    def test_zero_retries(self):
        assert list(BackoffPolicy(max_retries=0).delays()) == []

    def test_budget_is_exactly_max_retries(self):
        for budget in range(5):
            policy = BackoffPolicy(max_retries=budget)
            assert len(list(policy.delays())) == budget

    def test_cap_below_base_flattens_every_delay(self):
        policy = BackoffPolicy(base=5, factor=3, max_delay=2,
                               max_retries=3)
        assert list(policy.delays()) == [2, 2, 2]

    def test_exhausted_budget_total_wait_is_closed_form(self):
        policy = BackoffPolicy(base=1, factor=2, max_delay=8,
                               max_retries=6)
        assert sum(policy.delays()) == sum(
            min(1 * 2 ** attempt, 8) for attempt in range(6))

    def test_delays_are_repeatable(self):
        policy = BackoffPolicy()
        assert list(policy.delays()) == list(policy.delays())


def component_with_history(labels):
    return Component(History(tuple(labels)), Leaf("lc", figure2.client_1()))


class TestResidualFrameCloses:
    def test_balanced_history_needs_nothing(self):
        phi = figure2.policy_c1()
        component = component_with_history(
            (FrameOpen(phi), Event("sgn", (3,)), FrameClose(phi)))
        assert residual_frame_closes(component) == ()

    def test_single_open_framing(self):
        phi = figure2.policy_c1()
        component = component_with_history(
            (FrameOpen(phi), Event("sgn", (3,))))
        assert residual_frame_closes(component) == (FrameClose(phi),)

    def test_nested_framings_close_innermost_first(self):
        phi1 = figure2.policy_c1()
        phi2 = figure2.policy_c2()
        component = component_with_history((FrameOpen(phi1),
                                            FrameOpen(phi2)))
        assert residual_frame_closes(component) == \
            (FrameClose(phi2), FrameClose(phi1))


class TestCompensate:
    def test_tree_collapses_and_history_balances(self):
        phi = figure2.policy_c1()
        component = component_with_history(
            (FrameOpen(phi), Event("sgn", (3,))))
        term = figure2.client_1()
        compensated = compensate(component, "lc1", term)
        assert compensated.tree == Leaf("lc1", term)
        assert is_valid(compensated.history)
        assert compensated.history.is_balanced()

    def test_keeps_observed_labels(self):
        phi = figure2.policy_c1()
        component = component_with_history(
            (FrameOpen(phi), Event("sgn", (3,))))
        compensated = compensate(component, "lc1", figure2.client_1())
        assert tuple(compensated.history)[:2] == tuple(component.history)


class TestReplan:
    def flaky_repository(self):
        return Repository({
            figure2.LOC_BROKER: figure2.broker(),
            "ls_alpha": figure2.hotel(7, 55, 70),
            "ls_beta": figure2.hotel(8, 50, 90),
        })

    def flaky_client(self):
        return figure2.client("1", hotel_policy(set(), 60, 80))

    def test_failover_to_the_alternative(self):
        from repro.core.plans import Plan
        previous = Plan.of({"1": figure2.LOC_BROKER, "3": "ls_alpha"})
        plan = replan(self.flaky_client(), self.flaky_repository(),
                      previous=previous, excluded=("ls_alpha",),
                      location="lc")
        assert plan is not None
        assert plan.lookup("3") == "ls_beta"
        # The healthy broker binding is preserved, not re-decided.
        assert plan.lookup("1") == figure2.LOC_BROKER

    def test_no_alternative_returns_none(self):
        from repro.core.plans import Plan
        previous = figure2.plan_pi1()
        plan = replan(figure2.client_1(), figure2.repository(),
                      previous=previous, excluded=("ls3",),
                      location=figure2.LOC_CLIENT_1)
        # ls3 is the only hotel valid for C1 — nothing to fail over to.
        assert plan is None

    def test_everything_excluded_returns_none(self):
        previous = figure2.plan_pi1()
        repository = figure2.repository()
        plan = replan(figure2.client_1(), repository, previous=previous,
                      excluded=tuple(repository.locations()),
                      location=figure2.LOC_CLIENT_1)
        assert plan is None

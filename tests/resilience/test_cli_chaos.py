"""Tests for the ``chaos`` CLI subcommand."""

import json

import pytest

from repro.cli import main

HOTEL_SUS = "examples/hotel_booking.sus"

UNVERIFIABLE = """
[policies.phi]
schema = "forbid"
schema_args = ["boom"]
args = {}

[clients.me]
term = "open r with phi { !go . ?done }"

[services.srv]
term = "?go . { @boom(1) ; !done }"
"""


class TestChaosCommand:
    def test_exit_zero_and_invariant(self, capsys):
        status = main(["chaos", HOTEL_SUS, "--seed", "7",
                       "--trials", "5"])
        out = capsys.readouterr().out
        assert status == 0
        assert "invariant HOLDS" in out
        assert "seed 7" in out

    def test_output_is_reproducible(self, capsys):
        main(["chaos", HOTEL_SUS, "--seed", "7", "--trials", "5"])
        first = capsys.readouterr().out
        main(["chaos", HOTEL_SUS, "--seed", "7", "--trials", "5"])
        second = capsys.readouterr().out
        assert first == second

    def test_json_format(self, capsys):
        status = main(["chaos", HOTEL_SUS, "--seed", "7",
                       "--trials", "4", "--format", "json"])
        out = capsys.readouterr().out
        assert status == 0
        data = json.loads(out)
        assert data["schema"] == "repro-chaos.v2"
        assert data["trials"] == 4
        assert data["invariant_holds"] is True

    def test_fault_kinds_flag(self, capsys):
        status = main(["chaos", HOTEL_SUS, "--seed", "2",
                       "--trials", "4", "--faults", "crash"])
        out = capsys.readouterr().out
        assert status == 0
        assert "faults crash," in out       # only the crash kind ran
        assert "crash+drop" not in out

    def test_unknown_fault_kind_is_usage_error(self, capsys):
        status = main(["chaos", HOTEL_SUS, "--faults", "gremlins"])
        err = capsys.readouterr().err
        assert status == 2
        assert "unknown fault kind" in err

    def test_unverifiable_network_fails(self, tmp_path, capsys):
        path = tmp_path / "bad.toml"
        path.write_text(UNVERIFIABLE)
        status = main(["chaos", str(path), "--trials", "2"])
        assert status == 1

    def test_no_recover_flag(self, capsys):
        status = main(["chaos", HOTEL_SUS, "--seed", "7",
                       "--trials", "4", "--no-recover"])
        out = capsys.readouterr().out
        assert status == 0
        assert "recovery off" in out

    def test_missing_file_is_usage_error(self, capsys):
        status = main(["chaos", "no/such/file.sus"])
        assert status == 2

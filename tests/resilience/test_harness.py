"""Tests for the chaos harness: the invariant, determinism and the
report formats."""

import json

import pytest

from repro.core.errors import ReproError
from repro.network.repository import Repository
from repro.paper import figure2
from repro.resilience.harness import CHAOS_SCHEMA, run_chaos


def hotel_clients():
    return {figure2.LOC_CLIENT_1: figure2.client_1(),
            figure2.LOC_CLIENT_2: figure2.client_2()}


class TestRunChaos:
    def test_invariant_holds_on_the_paper_module(self):
        report = run_chaos(hotel_clients(), figure2.repository(),
                           trials=15, seed=7, module="hotel")
        assert report.invariant_holds
        assert report.security_violations == 0
        assert report.undiagnosed == 0
        assert report.invalid_histories == 0
        assert sum(report.outcomes.values()) == 15

    def test_unverified_module_is_rejected(self):
        # Without ls4 the repository offers C2 no valid plan.
        repository = Repository({
            figure2.LOC_BROKER: figure2.broker(),
            "ls3": figure2.hotel_3(),
        })
        with pytest.raises(ReproError, match="verified module"):
            run_chaos({figure2.LOC_CLIENT_2: figure2.client_2()},
                      repository, trials=2, seed=0)

    def test_reports_are_reproducible(self):
        one = run_chaos(hotel_clients(), figure2.repository(),
                        trials=8, seed=3, module="hotel")
        two = run_chaos(hotel_clients(), figure2.repository(),
                        trials=8, seed=3, module="hotel")
        assert one.to_json() == two.to_json()
        assert one.render_text() == two.render_text()

    def test_different_seeds_sample_different_faults(self):
        one = run_chaos(hotel_clients(), figure2.repository(),
                        trials=8, seed=1, module="hotel")
        two = run_chaos(hotel_clients(), figure2.repository(),
                        trials=8, seed=2, module="hotel")
        assert [r.faults for r in one.results] != \
            [r.faults for r in two.results]

    def test_diagnosed_even_without_recovery(self):
        report = run_chaos(hotel_clients(), figure2.repository(),
                           trials=10, seed=5, recover=False,
                           module="hotel")
        assert report.undiagnosed == 0
        assert report.security_violations == 0

    def test_byzantine_faults_never_break_validity(self):
        report = run_chaos(hotel_clients(), figure2.repository(),
                           trials=10, seed=9,
                           kinds=("crash", "byzantine"),
                           module="hotel")
        assert report.invalid_histories == 0
        assert report.security_violations == 0
        assert report.undiagnosed == 0


class TestReportFormats:
    def test_json_schema_and_shape(self):
        report = run_chaos(hotel_clients(), figure2.repository(),
                           trials=4, seed=7, module="hotel")
        data = json.loads(report.to_json())
        assert data["schema"] == CHAOS_SCHEMA
        assert data["module"] == "hotel"
        assert data["seed"] == 7
        assert data["trials"] == 4
        assert data["invariant_holds"] is True
        assert len(data["results"]) == 4
        for result in data["results"]:
            assert set(result) >= {"trial", "seed", "faults", "status",
                                   "steps", "diagnosis",
                                   "histories_valid"}

    def test_text_report_mentions_the_invariant(self):
        report = run_chaos(hotel_clients(), figure2.repository(),
                           trials=4, seed=7, module="hotel")
        text = report.render_text()
        assert "invariant HOLDS" in text
        assert "seed 7" in text

    def test_no_wall_time_in_reports(self):
        report = run_chaos(hotel_clients(), figure2.repository(),
                           trials=3, seed=7, module="hotel")
        data = json.loads(report.to_json())
        assert "duration" not in json.dumps(data)
        assert "time" not in set(data)

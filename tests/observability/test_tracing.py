"""Tests for tracing spans: nesting, export, and JSONL round-trip."""

import pytest

from repro.observability.tracing import (TRACE_SCHEMA, Span, Tracer,
                                         iter_spans, load_jsonl,
                                         merged_events)


class TestNesting:
    def test_context_manager_nests_under_current(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.children == [inner]
        assert tracer.roots() == [outer]

    def test_siblings_share_a_parent(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        assert [child.name for child in parent.children] == ["a", "b"]

    def test_explicit_parent_overrides_stack(self):
        tracer = Tracer()
        root = tracer.start_span("root")
        with tracer.span("other"):
            child = tracer.start_span("child", parent=root)
        assert child.parent_id == root.span_id
        tracer.end_span(child)
        tracer.end_span(root)
        assert root.duration >= child.duration >= 0.0

    def test_durations_are_measured(self):
        tracer = Tracer()
        with tracer.span("timed") as span:
            pass
        assert span.end is not None
        assert span.duration >= 0.0

    def test_attributes_and_events(self):
        tracer = Tracer()
        with tracer.span("s", engine="onthefly") as span:
            span.set(explored=12)
            span.add_event("communication", channel="Req")
        assert span.attrs == {"engine": "onthefly", "explored": 12}
        assert span.events == [{"name": "communication", "seq": 1,
                                "channel": "Req"}]

    def test_find_by_name(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        with tracer.span("y"):
            pass
        assert [span.name for span in tracer.find("x")] == ["x"]

    def test_reset_drops_spans(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.reset()
        assert len(tracer) == 0 and tracer.roots() == []


class TestConstructionCounter:
    def test_every_span_is_counted(self):
        before = Span.constructed
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert Span.constructed == before + 2


class TestJsonlRoundTrip:
    def _sample_tracer(self) -> Tracer:
        tracer = Tracer()
        with tracer.span("planner.find_valid_plans", location="c1") as top:
            top.set(plans_analyzed=4)
            with tracer.span("compliance.check", engine="onthefly") as c:
                c.set(compliant=True, explored_states=17)
            with tracer.span("simulator.session", request="r3") as s:
                s.add_event("communication", step=3, channel="Req")
                s.add_event("framing_open", step=4, policy="phi")
        return tracer

    def test_round_trip_preserves_structure(self):
        tracer = self._sample_tracer()
        roots = load_jsonl(tracer.export_jsonl())
        assert len(roots) == 1
        top = roots[0]
        assert top.name == "planner.find_valid_plans"
        assert top.attrs["plans_analyzed"] == 4
        assert [child.name for child in top.children] == [
            "compliance.check", "simulator.session"]

    def test_round_trip_preserves_attrs_events_durations(self):
        tracer = self._sample_tracer()
        originals = {span.span_id: span for span in tracer.spans}
        for root in load_jsonl(tracer.export_jsonl()):
            stack = [root]
            while stack:
                span = stack.pop()
                original = originals[span.span_id]
                assert span.attrs == original.attrs
                assert span.events == original.events
                assert abs(span.duration - original.duration) < 1e-9
                stack.extend(span.children)

    def test_export_is_schema_header_plus_one_object_per_line(self):
        import json
        tracer = self._sample_tracer()
        lines = tracer.export_jsonl().splitlines()
        assert len(lines) == len(tracer) + 1
        assert json.loads(lines[0]) == {"schema": TRACE_SCHEMA}
        for line in lines[1:]:
            record = json.loads(line)
            assert {"span_id", "parent_id", "name", "attrs", "events",
                    "start", "duration"} <= set(record)

    def test_round_trip_twice_is_stable(self):
        tracer = self._sample_tracer()
        once = tracer.export_jsonl()
        roots = load_jsonl(once)
        # Re-export by hand from the reconstructed forest.
        import json
        flat = []

        def walk(span):
            flat.append(span.to_record())
            for child in span.children:
                walk(child)

        for root in roots:
            walk(root)
        again = "\n".join(json.dumps(record, sort_keys=True, default=str)
                          for record in flat)
        assert {json.dumps(json.loads(line), sort_keys=True)
                for line in once.splitlines()[1:]} == {
            json.dumps(json.loads(line), sort_keys=True)
            for line in again.splitlines()}

    def test_empty_tracer_renders_placeholder(self):
        import json
        tracer = Tracer()
        assert json.loads(tracer.export_jsonl()) == {
            "schema": TRACE_SCHEMA}
        assert "no spans" in tracer.render_tree()

    def test_unknown_schema_version_is_rejected(self):
        tracer = self._sample_tracer()
        export = tracer.export_jsonl()
        tampered = export.replace(TRACE_SCHEMA, "repro-trace.v99")
        with pytest.raises(ValueError, match="unsupported trace schema"):
            load_jsonl(tampered)

    def test_headerless_legacy_stream_is_accepted(self):
        tracer = self._sample_tracer()
        legacy = "\n".join(tracer.export_jsonl().splitlines()[1:])
        roots = load_jsonl(legacy)
        assert [root.name for root in roots] == [
            "planner.find_valid_plans"]

    def test_interleaved_event_order_survives_round_trip(self):
        tracer = Tracer()
        a = tracer.start_span("session.a")
        b = tracer.start_span("session.b")
        a.add_event("communication", step=1)
        b.add_event("communication", step=2)
        a.add_event("framing_open", step=3)
        b.add_event("framing_close", step=4)
        tracer.end_span(b)
        tracer.end_span(a)

        original = [(span.name, event["step"])
                    for span, event in tracer.merged_events()]
        assert [step for _, step in original] == [1, 2, 3, 4]

        roots = load_jsonl(tracer.export_jsonl())
        loaded = [(span.name, event["step"])
                  for span, event in merged_events(list(iter_spans(roots)))]
        assert loaded == original


class TestRenderTree:
    def test_tree_shows_names_events_and_indentation(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child") as child:
                child.add_event("access", event="@boom(1)")
        text = tracer.render_tree()
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  child")
        assert "· access" in text and "@boom(1)" in text

"""The no-op fast path and the runtime switch.

The satellite guarantee of the instrumentation layer: with telemetry
disabled (the default), the pipeline allocates **zero** spans — asserted
through ``Span.constructed``, the process-global construction counter —
and records no metrics; enabling it lights everything up without
touching behaviour.
"""

import pytest

from repro.core.syntax import external, internal, receive, send
from repro.contracts.contract import Contract
from repro.contracts.product import search_product
from repro.core.compliance import check_compliance
from repro.observability import runtime
from repro.observability.events import Event
from repro.observability.tracing import Span


@pytest.fixture()
def contracts():
    client = internal(("a", receive("x")), ("b", receive("x")))
    server = external(("a", send("x")), ("b", send("x")))
    return Contract(client), Contract(server)


@pytest.fixture(autouse=True)
def disabled_telemetry():
    """Each test starts from the disabled default and restores it."""
    previous = runtime.active()
    runtime.disable()
    yield
    if previous is not None:
        runtime.enable(previous)
    else:
        runtime.disable()


class TestDisabledFastPath:
    def test_search_product_constructs_zero_spans(self, contracts):
        client, server = contracts
        search_product(client, server)  # warm the LTS caches
        before = Span.constructed
        for _ in range(5):
            result = search_product(client, server)
        assert result.empty
        assert Span.constructed == before, \
            "disabled telemetry must not allocate spans in the search"

    def test_check_compliance_constructs_zero_spans(self, contracts):
        client, server = contracts
        before = Span.constructed
        assert check_compliance(client, server).compliant
        assert Span.constructed == before

    def test_search_product_appends_zero_events(self, contracts):
        client, server = contracts
        search_product(client, server)  # warm the caches
        before = Event.appended
        for _ in range(5):
            search_product(client, server)
        assert Event.appended == before, \
            "disabled telemetry must not append flight-recorder events"

    def test_compiled_s1_hot_path_allocates_nothing(self, contracts):
        """The S1 hot path under ``engine="compiled"``: with telemetry
        off, the compile + search pipeline constructs zero spans and
        appends zero flight-recorder events."""
        client, server = contracts
        search_product(client, server, engine="compiled")  # warm tables
        spans_before = Span.constructed
        events_before = Event.appended
        for _ in range(5):
            result = search_product(client, server, engine="compiled")
        assert result.empty
        assert Span.constructed == spans_before
        assert Event.appended == events_before

    def test_default_registry_stays_empty(self, contracts):
        client, server = contracts
        runtime.default_scope().reset()
        search_product(client, server)
        assert len(runtime.default_scope().metrics) == 0

    def test_active_is_none_when_disabled(self):
        assert runtime.active() is None
        assert not runtime.enabled()


class TestEnabled:
    def test_search_product_records_span_and_counters(self, contracts):
        client, server = contracts
        with runtime.telemetry_session() as tel:
            result = search_product(client, server)
            spans = tel.tracer.find("compliance.search_product")
            assert len(spans) == 1
            assert spans[0].attrs["explored"] == result.explored
            snapshot = tel.metrics.snapshot()
            assert (snapshot["counters"]["compliance.explored_states"]
                    == result.explored)
            assert (snapshot["counters"]["compliance.enqueued_states"]
                    == result.explored)

    def test_noncompliant_search_records_early_exit_depth(self):
        client = send("go", send("go2", receive("never")))
        server = receive("go", receive("go2"))
        with runtime.telemetry_session() as tel:
            result = search_product(Contract(client), Contract(server))
            assert not result.empty
            histogram = tel.metrics.histogram(
                "compliance.early_exit_depth")
            assert histogram.count == 1
            assert histogram.max == len(result.trace) - 1
            counters = tel.metrics.snapshot()["counters"]
            assert (counters["compliance.enqueued_states"]
                    == result.explored - 1)

    def test_check_compliance_span_nests_search(self, contracts):
        client, server = contracts
        with runtime.telemetry_session() as tel:
            check_compliance(client, server)
            check_span = tel.tracer.find("compliance.check")[0]
            assert [c.name for c in check_span.children] == [
                "compliance.search_product"]
            counters = tel.metrics.snapshot()["counters"]
            key = "compliance.checks{engine=onthefly,verdict=compliant}"
            assert counters[key] == 1


class TestSessionScoping:
    def test_sessions_are_isolated_and_restore_previous(self, contracts):
        client, server = contracts
        with runtime.telemetry_session() as outer:
            search_product(client, server)
            outer_count = len(outer.tracer)
            with runtime.telemetry_session() as inner:
                assert runtime.active() is inner
                search_product(client, server)
                assert len(inner.tracer) == 1
            assert runtime.active() is outer
            assert len(outer.tracer) == outer_count
        assert runtime.active() is None

    def test_enable_disable_roundtrip(self):
        scope = runtime.enable()
        assert runtime.enabled() and runtime.active() is scope
        runtime.disable()
        assert not runtime.enabled()

    def test_metrics_snapshot_includes_cache_stats(self, contracts):
        client, server = contracts
        with runtime.telemetry_session():
            check_compliance(client, server)
            snapshot = runtime.metrics_snapshot()
        assert "caches" in snapshot
        assert "contracts.projection" in snapshot["caches"]
        assert "contracts.lts" in snapshot["caches"]
        for stats in snapshot["caches"].values():
            assert {"hits", "misses", "currsize"} <= set(stats)

"""The merged observability report (:mod:`repro.observability.report`).

Layer classification, self-time attribution, causal-chain extraction,
and the determinism contract: without ``wall`` the JSON rendering must
be byte-for-byte stable and carry no wall-clock seconds.
"""

import json

from repro.core.syntax import external, internal, receive, send
from repro.contracts.contract import Contract
from repro.contracts.product import search_product
from repro.observability import runtime
from repro.observability.report import (REPORT_SCHEMA, LayerStats,
                                        build_report, causal_chains,
                                        layer_of)
from repro.observability.runtime import Telemetry


class TestLayerOf:
    def test_prefix_classification(self):
        assert layer_of("parse.load_module") == "parse"
        assert layer_of("compile.contract") == "compile"
        assert layer_of("compliance.search_product") == "search"
        assert layer_of("planner.find_valid_plans") == "search"
        assert layer_of("staticcheck.analyze_module") == "search"
        assert layer_of("simulator.run") == "monitor"
        assert layer_of("supervisor.recovery") == "recover"

    def test_unknown_names_go_to_other(self):
        assert layer_of("benchmark.warmup") == "other"
        assert layer_of("parse") == "other"  # no dot — not the prefix


class TestBuildReport:
    def _scope_with_story(self) -> Telemetry:
        tel = Telemetry()
        with tel.tracer.span("compile.contract"):
            tel.emit("compile.contract", states=3)
        with tel.tracer.span("supervisor.run"):
            with tel.events.session("trial-0"):
                fault = tel.emit("fault.injected", kind="crash",
                                 location="lbr1", tick=0)
                abort = tel.emit("session.abort", component=0,
                                 cause=fault.seq)
                replan = tel.emit("recovery.replan", component=0,
                                  cause=abort.seq)
                tel.emit("run.verdict", status="completed",
                         cause=replan.seq)
        tel.metrics.counter("chaos.trials", status="completed").inc()
        return tel

    def test_layers_count_spans_and_events(self):
        report = build_report(self._scope_with_story())
        assert report.layers["compile"].spans == 1
        assert report.layers["compile"].events == 1
        assert report.layers["recover"].spans == 1
        assert report.layers["recover"].events == 4
        assert report.layers["parse"].spans == 0

    def test_chains_walk_back_from_each_verdict(self):
        report = build_report(self._scope_with_story())
        assert len(report.chains) == 1
        kinds = [link["kind"] for link in report.chains[0]]
        assert kinds == ["fault.injected", "session.abort",
                         "recovery.replan", "run.verdict"]
        assert all(link["session"] == "trial-0"
                   for link in report.chains[0])

    def test_json_is_deterministic_and_wall_free_by_default(self):
        tel = self._scope_with_story()
        report = build_report(tel, module="m.sus")
        payload = report.to_json()
        assert payload == build_report(tel, module="m.sus").to_json()
        data = json.loads(payload)
        assert data["schema"] == REPORT_SCHEMA
        assert "self_seconds" not in data["layers"]["recover"]
        assert "histograms" not in data["metrics"]

    def test_wall_opt_in_adds_timings(self):
        tel = self._scope_with_story()
        tel.metrics.histogram("compile.seconds").observe(0.25)
        data = json.loads(build_report(tel, wall=True).to_json())
        assert "self_seconds" in data["layers"]["compile"]
        assert "compile.seconds" in data["metrics"]["histograms"]

    def test_self_time_partitions_nested_spans(self):
        tel = Telemetry()
        with tel.tracer.span("supervisor.run") as outer:
            with tel.tracer.span("compliance.search_product"):
                pass
        report = build_report(tel, wall=True)
        total = sum(stats.self_seconds
                    for stats in report.layers.values())
        assert abs(total - outer.duration) < 1e-6

    def test_chaos_dict_is_embedded_verbatim(self):
        chaos = {"trials": 3, "seed": 7, "outcomes": {"completed": 3},
                 "invariant_holds": True}
        report = build_report(Telemetry(), chaos=chaos)
        assert json.loads(report.to_json())["chaos"] == chaos
        assert "invariant HOLDS" in report.render_text()

    def test_render_text_shows_chain_links(self):
        text = build_report(self._scope_with_story()).render_text()
        assert "causal chains (1):" in text
        assert "session trial-0:" in text
        assert "<- #2" in text  # the abort points at the fault

    def test_empty_scope_renders(self):
        report = build_report(Telemetry(), module="empty.sus")
        assert report.chains == []
        assert "0 event(s)" in report.render_text()
        assert json.loads(report.to_json())["trace"]["spans"] == 0


class TestRealPipeline:
    def test_search_events_attribute_to_the_search_layer(self):
        client = Contract(internal(("a", receive("x"))))
        server = Contract(external(("a", send("x"))))
        with runtime.telemetry_session() as tel:
            search_product(client, server)
            report = build_report(tel)
        assert report.layers["search"].spans == 1
        assert report.layers["search"].events == 1
        assert report.event_counters == {"search.product": 1}


class TestCausalChainsHelper:
    def test_one_chain_per_verdict(self):
        tel = Telemetry()
        first = tel.events.emit("run.verdict", status="completed")
        tel.events.emit("run.verdict", status="aborted",
                        cause=first.seq)
        chains = causal_chains(tel.events)
        assert [len(chain) for chain in chains] == [1, 2]


class TestLayerStats:
    def test_to_dict_gates_wall(self):
        stats = LayerStats(spans=2, events=3, self_seconds=0.5)
        assert stats.to_dict(False) == {"spans": 2, "events": 3}
        assert stats.to_dict(True)["self_seconds"] == 0.5

"""End-to-end telemetry through the pipeline: planner metrics, simulator
session spans, monitor counters, and the diagnostics narratives."""

import pytest

from repro.analysis.diagnostics import explain_compliance, explain_plan
from repro.analysis.planner import find_valid_plans
from repro.core.actions import Event, FrameOpen
from repro.core.compliance import check_compliance
from repro.core.errors import SecurityViolationError
from repro.core.plans import Plan
from repro.core.syntax import receive, request, send, seq
from repro.network.config import Component, Configuration
from repro.network.monitor import ReferenceMonitor
from repro.network.repository import Repository
from repro.network.simulator import Simulator
from repro.observability import runtime
from repro.paper import figure2
from repro.policies.library import forbid


@pytest.fixture(autouse=True)
def fresh_session():
    with runtime.telemetry_session() as tel:
        yield tel


class TestPlanner:
    def test_metrics_filled_with_and_without_telemetry(self, repo, c1):
        runtime.disable()
        cold = find_valid_plans(c1, repo, location=figure2.LOC_CLIENT_1)
        with runtime.telemetry_session():
            warm = find_valid_plans(c1, repo,
                                    location=figure2.LOC_CLIENT_1)
        assert cold.metrics == warm.metrics
        assert cold.metrics["plans_analyzed"] == 9
        assert cold.metrics["plans_valid"] == len(cold.valid_plans)
        assert cold.metrics["memo_hits"] + cold.metrics["memo_misses"] > 0

    def test_span_and_counters_recorded(self, fresh_session, repo, c1):
        result = find_valid_plans(c1, repo, location=figure2.LOC_CLIENT_1)
        tel = fresh_session
        spans = tel.tracer.find("planner.find_valid_plans")
        assert len(spans) == 1
        assert spans[0].attrs["plans_analyzed"] == 9
        counters = tel.metrics.snapshot()["counters"]
        assert (counters["planner.plans{verdict=valid}"]
                == len(result.valid_plans))
        assert (counters["planner.plans{verdict=invalid}"]
                == len(result.invalid_plans))
        memo_total = (counters.get("planner.memo{outcome=hit}", 0)
                      + counters.get("planner.memo{outcome=miss}", 0))
        assert memo_total == (result.metrics["memo_hits"]
                              + result.metrics["memo_misses"])

    def test_pruning_is_counted(self, fresh_session, repo, c2):
        result = find_valid_plans(c2, repo, location=figure2.LOC_CLIENT_2)
        counters = fresh_session.metrics.snapshot()["counters"]
        assert (counters.get("planner.plans_pruned", 0)
                == result.metrics["plans_pruned"])


class TestSimulator:
    def make(self):
        client = request("r", None, seq(send("a"), receive("b")))
        repo = Repository({"srv": seq(receive("a"), send("b"))})
        config = Configuration.of(Component.client("me", client))
        return Simulator(config, Plan.single("r", "srv"), repo, seed=0)

    def test_run_produces_session_span_tree(self, fresh_session):
        simulator = self.make()
        simulator.run()
        tel = fresh_session
        run_spans = tel.tracer.find("simulator.run")
        assert len(run_spans) == 1
        assert run_spans[0].attrs["terminated"] is True
        components = tel.tracer.find("simulator.component")
        assert len(components) == 1
        assert components[0].parent_id == run_spans[0].span_id
        sessions = tel.tracer.find("simulator.session")
        assert len(sessions) == 1
        session = sessions[0]
        assert session.attrs["request"] == "r"
        assert "left_open" not in session.attrs
        communications = [e for e in session.events
                         if e["name"] == "communication"]
        assert {e["channel"] for e in communications} == {"a", "b"}

    def test_counters_match_the_log(self, fresh_session):
        simulator = self.make()
        log = simulator.run()
        counters = fresh_session.metrics.snapshot()["counters"]
        from collections import Counter as TallyCounter
        tally = TallyCounter(log.rules())
        for rule, count in tally.items():
            assert counters[f"simulator.steps{{rule={rule}}}"] == count
        assert counters["simulator.sessions_opened"] == tally["open"]
        assert counters["simulator.sessions_closed"] == tally["close"]
        assert counters["simulator.communications"] == tally["synch"]

    def test_disabled_run_matches_enabled_run(self, repo, c1):
        def run(seed):
            plans = find_valid_plans(c1, repo,
                                     location=figure2.LOC_CLIENT_1)
            analysis = plans.best()
            config = Configuration.of(
                Component.client(figure2.LOC_CLIENT_1, c1))
            simulator = Simulator(config, analysis.plan, repo, seed=seed)
            simulator.run()
            return simulator.log.rules()

        with runtime.telemetry_session():
            enabled_rules = run(7)
        runtime.disable()
        assert run(7) == enabled_rules


class TestMonitor:
    def test_labels_and_aborts_are_counted(self, fresh_session):
        policy = forbid("boom")
        monitor = ReferenceMonitor()
        monitor.observe(FrameOpen(policy))
        monitor.observe(Event("alpha"))
        with pytest.raises(SecurityViolationError):
            monitor.observe(Event("boom"))
        counters = fresh_session.metrics.snapshot()["counters"]
        assert counters["monitor.labels{kind=framing_open}"] == 1
        assert counters["monitor.labels{kind=event}"] == 2
        assert counters["monitor.aborts"] == 1
        spans = fresh_session.tracer.find("monitor.session")
        assert len(spans) == 1
        span = spans[0]
        assert span.end is not None  # closed by the abort
        assert span.events[-1]["name"] == "abort"

    def test_finish_closes_the_span(self, fresh_session):
        monitor = ReferenceMonitor()
        monitor.observe(Event("ok"))
        monitor.finish()
        span = fresh_session.tracer.find("monitor.session")[0]
        assert span.end is not None
        assert span.attrs["labels_observed"] == 1


class TestDiagnostics:
    def test_explain_compliance_mentions_explored_states(self):
        result = check_compliance(send("a"), receive("a"))
        text = explain_compliance(result)
        assert "product state(s) explored" in text
        assert str(result.explored_states) in text

    def test_noncompliant_narrative_mentions_explored_states(self):
        result = check_compliance(send("a"), receive("b"))
        assert not result.compliant
        text = explain_compliance(result)
        assert "explored before the verdict" in text

    def test_explain_plan_includes_planner_effort(self, repo, c1):
        result = find_valid_plans(c1, repo, location=figure2.LOC_CLIENT_1)
        text = explain_plan(result.best(), result.metrics)
        assert "compliance explored" in text
        assert "memo hit(s)" in text

    def test_explain_plan_marks_pruned_security(self, repo, c2):
        result = find_valid_plans(c2, repo, location=figure2.LOC_CLIENT_2)
        pruned = [analysis for analysis in result.invalid_plans
                  if analysis.security.skipped]
        if not pruned:  # pruning depends on enumeration order
            pytest.skip("no plan was pruned for this client")
        text = explain_plan(pruned[0])
        assert "security check skipped" in text

"""Tests for lru_cache statistics adapters and the contract-layer
clean-slate guarantee of ``clear_contract_caches``."""

from functools import lru_cache

from repro.contracts import (Contract, clear_contract_caches,
                             contract_cache_stats)
from repro.core.syntax import receive, send
from repro.observability.cache_stats import (CacheStatsAdapter,
                                             adapter, cache_stats,
                                             reset_cache_stats,
                                             tracked_caches)


class TestAdapter:
    def _cached(self):
        @lru_cache(maxsize=8)
        def double(x):
            return 2 * x

        return double

    def test_stats_report_deltas_since_reset(self):
        fn = self._cached()
        wrapped = CacheStatsAdapter("t", fn)
        fn(1)
        fn(1)
        fn(2)
        assert wrapped.stats() == {"hits": 1, "misses": 2,
                                   "currsize": 2, "maxsize": 8}
        wrapped.reset()
        assert wrapped.stats()["hits"] == 0
        assert wrapped.stats()["misses"] == 0
        assert wrapped.stats()["currsize"] == 2  # entries survive a reset
        fn(1)
        assert wrapped.stats() == {"hits": 1, "misses": 0,
                                   "currsize": 2, "maxsize": 8}

    def test_clear_drops_entries_and_rebaselines(self):
        fn = self._cached()
        wrapped = CacheStatsAdapter("t", fn)
        fn(1)
        fn(1)
        wrapped.clear()
        stats = wrapped.stats()
        assert stats == {"hits": 0, "misses": 0, "currsize": 0,
                         "maxsize": 8}

    def test_reset_after_external_cache_clear_stays_nonnegative(self):
        # cache_clear() zeroes cache_info(); a reset() afterwards must
        # rebaseline rather than leave the adapter counting from a stale
        # (now larger-than-live) baseline.
        fn = self._cached()
        wrapped = CacheStatsAdapter("t", fn)
        fn(1)
        fn(1)
        fn.cache_clear()
        wrapped.reset()
        stats = wrapped.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0


class TestRegistry:
    def test_pipeline_caches_are_tracked(self):
        names = tracked_caches()
        for expected in ("contracts.projection", "contracts.lts",
                         "analysis.extract_requests",
                         "compliance.contract_intern"):
            assert expected in names

    def test_cache_stats_selects_by_name(self):
        stats = cache_stats("contracts.lts")
        assert set(stats) == {"contracts.lts"}

    def test_reset_cache_stats_rebaselines_everything(self):
        clear_contract_caches()
        Contract(send("a", receive("b"))).lts
        assert contract_cache_stats()["contracts.lts"]["misses"] > 0
        reset_cache_stats()
        for stats in cache_stats().values():
            assert stats["hits"] == 0 and stats["misses"] == 0

    def test_adapter_lookup(self):
        assert adapter("contracts.lts").name == "contracts.lts"


class TestClearContractCaches:
    def test_clear_yields_clean_slate_counts(self):
        # Warm the caches, then clear: both the lru entries and the
        # adapters' baselines must reset, so a fresh run starts at zero.
        Contract(send("ping", receive("pong"))).lts
        clear_contract_caches()
        for name, stats in contract_cache_stats().items():
            assert stats["hits"] == 0, name
            assert stats["misses"] == 0, name
            assert stats["currsize"] == 0, name

    def test_fresh_run_counts_from_zero_after_clear(self):
        term = send("x", receive("y"))
        Contract(term).lts
        clear_contract_caches()
        Contract(term).lts
        Contract(term).lts  # second build hits both caches
        stats = contract_cache_stats()
        assert stats["contracts.lts"]["misses"] >= 1
        assert stats["contracts.lts"]["hits"] >= 1

"""Tests for the metrics registry (counters, gauges, histograms)."""

import pytest

from repro.observability.metrics import MetricsRegistry, render_key


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_same_name_returns_same_child(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_labels_create_independent_children(self):
        registry = MetricsRegistry()
        valid = registry.counter("plans", verdict="valid")
        invalid = registry.counter("plans", verdict="invalid")
        assert valid is not invalid
        valid.inc(3)
        assert invalid.value == 0
        assert registry.counter("plans", verdict="valid").value == 3

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        a = registry.counter("m", x=1, y=2)
        b = registry.counter("m", y=2, x=1)
        assert a is b


class TestGauge:
    def test_set_and_high_water(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(7)
        assert gauge.value == 7
        gauge.high_water(3)
        assert gauge.value == 7
        gauge.high_water(11)
        assert gauge.value == 11


class TestHistogram:
    def test_summary_statistics(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency")
        for value in (1.0, 3.0, 2.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["total"] == 6.0
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["mean"] == pytest.approx(2.0)

    def test_empty_summary_has_finite_bounds(self):
        registry = MetricsRegistry()
        summary = registry.histogram("empty").summary()
        assert summary == {"count": 0, "total": 0.0, "min": 0.0,
                           "max": 0.0, "mean": 0.0,
                           "p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_percentiles_by_rank_selection(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency")
        for value in range(1, 101):  # 1..100
            histogram.observe(float(value))
        # Bucket resolution is ~15%; rank selection must land within it.
        assert histogram.percentile(0.50) == pytest.approx(50.0, rel=0.16)
        assert histogram.percentile(0.95) == pytest.approx(95.0, rel=0.16)
        assert histogram.percentile(0.99) == pytest.approx(99.0, rel=0.16)
        assert histogram.percentile(1.0) == 100.0

    def test_percentiles_clamped_to_observed_range(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("one")
        histogram.observe(0.25)
        summary = histogram.summary()
        assert summary["p50"] == summary["p95"] == summary["p99"] == 0.25

    def test_percentiles_are_monotone(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("mono")
        for value in (0.001, 0.01, 0.1, 1.0, 10.0, 10.0, 0.01):
            histogram.observe(value)
        assert (histogram.percentile(0.5) <= histogram.percentile(0.95)
                <= histogram.percentile(0.99) <= histogram.max)

    def test_bucket_counts_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("buckets")
        for value in (0.5, 0.5, 2.0):
            histogram.observe(value)
        pairs = histogram.bucket_counts()
        assert [count for _, count in pairs] == [2, 3]
        assert pairs[0][0] >= 0.5 and pairs[1][0] >= 2.0

    def test_time_context_manager_observes_once(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("timer")
        with histogram.time():
            pass
        assert histogram.count == 1
        assert histogram.total >= 0.0


class TestSnapshot:
    def test_snapshot_is_json_friendly_and_keyed_flat(self):
        import json
        registry = MetricsRegistry()
        registry.counter("checks", engine="onthefly").inc(2)
        registry.gauge("frontier").set(10)
        registry.histogram("seconds").observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"checks{engine=onthefly}": 2}
        assert snapshot["gauges"] == {"frontier": 10}
        assert snapshot["histograms"]["seconds"]["count"] == 1
        json.dumps(snapshot)  # must serialise

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.histogram("b").observe(1)
        registry.reset()
        assert len(registry) == 0
        assert registry.snapshot()["counters"] == {}

    def test_render_key(self):
        assert render_key(("name", ())) == "name"
        assert (render_key(("name", (("a", "1"), ("b", "x"))))
                == "name{a=1,b=x}")

    def test_render_table_mentions_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("alpha").inc()
        registry.gauge("beta").set(2)
        registry.histogram("gamma").observe(3)
        table = registry.render_table()
        assert "alpha" in table and "beta" in table and "gamma" in table

    def test_render_table_empty(self):
        assert "no metrics" in MetricsRegistry().render_table()


class TestOpenMetrics:
    def test_exposition_has_types_series_and_eof(self):
        registry = MetricsRegistry()
        registry.counter("compliance.checks", engine="compiled").inc(2)
        registry.gauge("search.frontier").set(10)
        registry.histogram("planner.seconds").observe(0.5)
        text = registry.render_openmetrics()
        lines = text.splitlines()
        assert "# TYPE repro_compliance_checks counter" in lines
        assert 'repro_compliance_checks_total{engine="compiled"} 2' in lines
        assert "# TYPE repro_search_frontier gauge" in lines
        assert "# TYPE repro_planner_seconds histogram" in lines
        assert any(line.startswith("repro_planner_seconds_bucket{le=")
                   for line in lines)
        assert "repro_planner_seconds_count 1" in lines
        assert lines[-1] == "# EOF"

    def test_bucket_series_end_in_inf_and_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        for value in (0.001, 0.002, 1e9):  # last lands in overflow
            histogram.observe(value)
        lines = registry.render_openmetrics().splitlines()
        buckets = [line for line in lines
                   if line.startswith("repro_h_bucket")]
        assert buckets[-1].startswith('repro_h_bucket{le="+Inf"}')
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts) and counts[-1] == 3

    def test_empty_registry_is_just_eof(self):
        assert MetricsRegistry().render_openmetrics() == "# EOF"

"""Tests for the metrics registry (counters, gauges, histograms)."""

import pytest

from repro.observability.metrics import MetricsRegistry, render_key


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_same_name_returns_same_child(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_labels_create_independent_children(self):
        registry = MetricsRegistry()
        valid = registry.counter("plans", verdict="valid")
        invalid = registry.counter("plans", verdict="invalid")
        assert valid is not invalid
        valid.inc(3)
        assert invalid.value == 0
        assert registry.counter("plans", verdict="valid").value == 3

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        a = registry.counter("m", x=1, y=2)
        b = registry.counter("m", y=2, x=1)
        assert a is b


class TestGauge:
    def test_set_and_high_water(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(7)
        assert gauge.value == 7
        gauge.high_water(3)
        assert gauge.value == 7
        gauge.high_water(11)
        assert gauge.value == 11


class TestHistogram:
    def test_summary_statistics(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency")
        for value in (1.0, 3.0, 2.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["total"] == 6.0
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["mean"] == pytest.approx(2.0)

    def test_empty_summary_has_finite_bounds(self):
        registry = MetricsRegistry()
        summary = registry.histogram("empty").summary()
        assert summary == {"count": 0, "total": 0.0, "min": 0.0,
                           "max": 0.0, "mean": 0.0}

    def test_time_context_manager_observes_once(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("timer")
        with histogram.time():
            pass
        assert histogram.count == 1
        assert histogram.total >= 0.0


class TestSnapshot:
    def test_snapshot_is_json_friendly_and_keyed_flat(self):
        import json
        registry = MetricsRegistry()
        registry.counter("checks", engine="onthefly").inc(2)
        registry.gauge("frontier").set(10)
        registry.histogram("seconds").observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"checks{engine=onthefly}": 2}
        assert snapshot["gauges"] == {"frontier": 10}
        assert snapshot["histograms"]["seconds"]["count"] == 1
        json.dumps(snapshot)  # must serialise

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.histogram("b").observe(1)
        registry.reset()
        assert len(registry) == 0
        assert registry.snapshot()["counters"] == {}

    def test_render_key(self):
        assert render_key(("name", ())) == "name"
        assert (render_key(("name", (("a", "1"), ("b", "x"))))
                == "name{a=1,b=x}")

    def test_render_table_mentions_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("alpha").inc()
        registry.gauge("beta").set(2)
        registry.histogram("gamma").observe(3)
        table = registry.render_table()
        assert "alpha" in table and "beta" in table and "gamma" in table

    def test_render_table_empty(self):
        assert "no metrics" in MetricsRegistry().render_table()

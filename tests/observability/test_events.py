"""Tests for the flight recorder: bounded log, causal chains, export."""

import json

import pytest

from repro.observability.events import (EVENTS_SCHEMA, Event, EventLog,
                                        load_jsonl)


class TestEmit:
    def test_seq_is_monotone_and_counts_per_kind(self):
        log = EventLog()
        first = log.emit("fault.injected", kind_of="crash")
        second = log.emit("session.abort")
        third = log.emit("fault.injected")
        assert (first.seq, second.seq, third.seq) == (1, 2, 3)
        assert log.counters() == {"fault.injected": 2,
                                  "session.abort": 1}

    def test_every_append_is_counted_globally(self):
        before = Event.appended
        log = EventLog()
        log.emit("a")
        log.emit("b")
        assert Event.appended == before + 2

    def test_session_context_stamps_events(self):
        log = EventLog()
        outside = log.emit("x")
        with log.session("trial-3"):
            inside = log.emit("y")
            with log.session("trial-3/retry"):
                nested = log.emit("z")
            after_nested = log.emit("w")
        assert outside.session is None
        assert inside.session == "trial-3"
        assert nested.session == "trial-3/retry"
        assert after_nested.session == "trial-3"
        assert log.current_session() is None

    def test_explicit_session_and_span_win(self):
        log = EventLog()
        with log.session("ambient"):
            event = log.emit("x", session="explicit", span=42)
        assert event.session == "explicit"
        assert event.span == 42


class TestBounding:
    def test_ring_buffer_drops_oldest_and_counts_drops(self):
        log = EventLog(maxlen=3)
        for index in range(5):
            log.emit("tick", index=index)
        assert len(log) == 3
        assert log.dropped == 2
        assert [event.seq for event in log.events] == [3, 4, 5]
        # Per-kind counters survive eviction.
        assert log.counters() == {"tick": 5}


class TestCausalChain:
    def _chained_log(self) -> EventLog:
        log = EventLog()
        fault = log.emit("fault.injected", location="ls1")
        abort = log.emit("session.abort", cause=fault.seq)
        compensate = log.emit("recovery.compensate", cause=abort.seq)
        replan = log.emit("recovery.replan", cause=compensate.seq)
        log.emit("run.verdict", cause=replan.seq, status="completed")
        return log

    def test_chain_walks_back_to_the_fault(self):
        log = self._chained_log()
        verdict = log.find("run.verdict")[0]
        chain = log.causal_chain(verdict.seq)
        assert [event.kind for event in chain] == [
            "fault.injected", "session.abort", "recovery.compensate",
            "recovery.replan", "run.verdict"]

    def test_chain_truncates_at_evicted_links(self):
        log = EventLog(maxlen=2)
        root = log.emit("fault.injected")
        middle = log.emit("session.abort", cause=root.seq)
        tail = log.emit("run.verdict", cause=middle.seq)  # evicts root
        chain = log.causal_chain(tail.seq)
        assert [event.kind for event in chain] == [
            "session.abort", "run.verdict"]

    def test_chain_of_unknown_seq_is_empty(self):
        assert self._chained_log().causal_chain(999) == []


class TestRebaseline:
    def test_rebaseline_zeroes_counters_but_keeps_events(self):
        log = EventLog()
        log.emit("compile.contract")
        log.emit("compile.contract")
        assert log.counters() == {"compile.contract": 2}
        log.rebaseline()
        assert log.counters() == {}
        assert len(log) == 2
        log.emit("compile.contract")
        assert log.counters() == {"compile.contract": 1}

    def test_reset_restarts_sequences(self):
        log = EventLog()
        log.emit("a")
        log.reset()
        assert len(log) == 0 and log.counters() == {}
        assert log.emit("b").seq == 1


class TestExport:
    def test_jsonl_has_schema_header_and_round_trips(self):
        log = EventLog()
        with log.session("trial-1"):
            fault = log.emit("fault.injected", location="ls1", tick=4)
            log.emit("session.abort", cause=fault.seq, span=7)
        export = log.export_jsonl()
        lines = export.splitlines()
        assert json.loads(lines[0]) == {"schema": EVENTS_SCHEMA,
                                        "dropped": 0}
        loaded = load_jsonl(export)
        assert loaded.to_records() == log.to_records()
        assert loaded.counters() == log.counters()
        # Appends after load continue the sequence.
        assert loaded.emit("x").seq == 3

    def test_unknown_schema_is_rejected(self):
        log = EventLog()
        log.emit("a")
        tampered = log.export_jsonl().replace(EVENTS_SCHEMA,
                                              "repro-events.v99")
        with pytest.raises(ValueError,
                           match="unsupported event-log schema"):
            load_jsonl(tampered)

    def test_render_is_human_readable(self):
        log = EventLog(maxlen=2)
        with log.session("trial-0"):
            fault = log.emit("fault.injected", location="ls1")
            log.emit("session.abort", cause=fault.seq)
            log.emit("run.verdict", status="completed")
        text = log.render()
        assert "(1 event(s) dropped)" in text
        assert "#2 session.abort session=trial-0 cause=#1" in text
        assert "status=completed" in text

    def test_empty_render_placeholder(self):
        assert "no events" in EventLog().render()

"""Integration of the extension modules with the paper's network."""

from repro.analysis.capacity import check_capacities
from repro.contracts.subcontract import substitutable_services
from repro.core.plans import Plan
from repro.core.projection import project
from repro.paper import figure2
from repro.quantitative import (CostModel, cheapest_valid_plan,
                                plan_cost, priced_valid_plans)

#: Signing is expensive, publishing metadata is cheap.
MODEL = CostModel.of({"sgn": 10, "p": 1, "ta": 1})


class TestPricingThePaperNetwork:
    def test_every_hotel_session_costs_the_same(self, repo, c1):
        # All hotels fire sgn+p+ta: 12 under the model, so all complete
        # plans for C1 price identically; pricing cannot override
        # validity.
        cost = plan_cost(c1, figure2.plan_pi1(), repo,
                         MODEL, figure2.LOC_CLIENT_1)
        assert cost == 12

    def test_cheapest_valid_plan_is_pi1(self, repo, c1):
        best = cheapest_valid_plan(c1, repo, MODEL,
                                   location=figure2.LOC_CLIENT_1)
        assert best is not None
        assert best.plan == figure2.plan_pi1()
        assert best.cost == 12

    def test_pricing_ranks_only_valid_plans(self, repo, c2):
        priced = priced_valid_plans(c2, repo, MODEL,
                                    location=figure2.LOC_CLIENT_2)
        assert [entry.plan for entry in priced] == \
            [figure2.plan_pi2_valid()]


class TestCapacityOnThePaperNetwork:
    def test_single_broker_cannot_serve_both_clients(self, repo, c1, c2):
        clients = [(c1, figure2.plan_pi1()),
                   (c2, figure2.plan_pi2_valid())]
        report = check_capacities(clients, repo,
                                  {figure2.LOC_BROKER: 1})
        assert report.oversubscribed() == (figure2.LOC_BROKER,)

    def test_two_brokers_worth_of_capacity_suffice(self, repo, c1, c2):
        clients = [(c1, figure2.plan_pi1()),
                   (c2, figure2.plan_pi2_valid())]
        report = check_capacities(clients, repo,
                                  {figure2.LOC_BROKER: 2, "ls3": 1,
                                   "ls4": 1, "ls1": 0, "ls2": 0})
        assert report.feasible


class TestDiscoveryOnThePaperNetwork:
    def test_hotels_refining_s3(self, repo):
        # Advertising S3's contract: which hotels can substitute it?
        advertised = project(figure2.hotel_3())
        matches = substitutable_services(advertised, repo)
        # S1 and S4 have the same contract (?IdC.(Bok ⊕ UnA)); S2 adds
        # the Del output — more internal surprises, NOT a refinement; the
        # broker speaks a different protocol entirely.
        assert set(matches) == {"ls1", "ls3", "ls4"}

    def test_s2_refines_the_others_but_not_vice_versa(self, repo):
        from repro.contracts.subcontract import subcontract
        s2 = project(figure2.hotel_2())
        s3 = project(figure2.hotel_3())
        assert subcontract(s2, s3)       # dropping Del only helps
        assert not subcontract(s3, s2)   # adding Del can break clients

    def test_discovery_respects_the_broker(self, repo):
        # The broker handles Bok/UnA only: it is compliant with every
        # refinement of S3's contract the discovery returns.
        from repro.analysis.requests import extract_requests
        from repro.core.compliance import compliant
        (broker_request,) = extract_requests(figure2.broker())
        advertised = project(figure2.hotel_3())
        for location in substitutable_services(advertised, repo):
            assert compliant(broker_request.body, repo[location])

"""``repro report`` end to end: the acceptance contract of the merged
observability report.

A seeded chaos campaign over ``examples/resilient_booking.sus`` followed
by ``repro report --format json`` must be byte-for-byte reproducible and
contain, for at least one recovered session, the complete causal chain
fault → abort → retry* → compensate → replan → verdict.
"""

import json
import pathlib

import pytest

from repro.cli import main

REPO = pathlib.Path(__file__).resolve().parents[2]
RESILIENT = str(REPO / "examples" / "resilient_booking.sus")
HOTEL = str(REPO / "examples" / "hotel_booking.sus")

#: The seeded invocation the goldens and CI pin down.
REPORT_ARGS = ["report", RESILIENT, "--seed", "7", "--trials", "8",
               "--format", "json"]


def run_report(capsys, argv) -> tuple[int, str]:
    status = main(argv)
    return status, capsys.readouterr().out


class TestReportJson:
    def test_seeded_report_is_byte_reproducible(self, capsys):
        first_status, first = run_report(capsys, REPORT_ARGS)
        second_status, second = run_report(capsys, REPORT_ARGS)
        assert first_status == second_status == 0
        assert first == second

    def test_contains_a_full_recovery_chain(self, capsys):
        status, out = run_report(capsys, REPORT_ARGS)
        assert status == 0
        data = json.loads(out)
        assert data["schema"] == "repro-report.v1"
        chain_kinds = [[link["kind"] for link in chain]
                       for chain in data["chains"]]
        full = [kinds for kinds in chain_kinds
                if kinds[0] == "fault.injected"
                and "session.abort" in kinds
                and "recovery.compensate" in kinds
                and "recovery.replan" in kinds
                and kinds[-1] == "run.verdict"]
        assert full, f"no complete recovery chain in {chain_kinds}"

    def test_chain_links_are_causally_ordered(self, capsys):
        _, out = run_report(capsys, REPORT_ARGS)
        for chain in json.loads(out)["chains"]:
            seqs = [link["seq"] for link in chain]
            assert seqs == sorted(seqs)
            for previous, link in zip(chain, chain[1:]):
                assert link["cause"] == previous["seq"]
            # One chain = one supervised session.
            assert len({link["session"] for link in chain}) == 1

    def test_per_layer_attribution_covers_the_pipeline(self, capsys):
        _, out = run_report(capsys, REPORT_ARGS)
        layers = json.loads(out)["layers"]
        for layer in ("parse", "search", "monitor", "recover"):
            assert layers[layer]["spans"] > 0, layer
        # Deterministic by default: no wall seconds anywhere.
        for stats in layers.values():
            assert "self_seconds" not in stats

    def test_chaos_verdict_is_embedded(self, capsys):
        _, out = run_report(capsys, REPORT_ARGS)
        chaos = json.loads(out)["chaos"]
        assert chaos["schema"] == "repro-chaos.v2"
        assert chaos["invariant_holds"] is True
        assert chaos["trials"] == 8

    def test_wall_flag_adds_timings(self, capsys):
        status, out = run_report(capsys, REPORT_ARGS + ["--wall"])
        assert status == 0
        layers = json.loads(out)["layers"]
        assert any("self_seconds" in stats for stats in layers.values())


class TestReportText:
    def test_text_report_narrates_the_story(self, capsys):
        status, out = run_report(
            capsys, ["report", RESILIENT, "--seed", "7", "--trials", "8"])
        assert status == 0
        assert "observability report for resilient_booking.sus" in out
        assert "causal chains" in out
        assert "recovery.replan" in out
        assert "flight recorder:" in out

    def test_out_writes_to_file(self, capsys, tmp_path):
        target = tmp_path / "report.json"
        status = main(REPORT_ARGS + ["--out", str(target)])
        assert status == 0
        assert "wrote report" in capsys.readouterr().out
        assert json.loads(target.read_text())["schema"] == "repro-report.v1"

    def test_unknown_fault_kind_is_a_usage_error(self, capsys):
        status = main(["report", HOTEL, "--faults", "gremlins"])
        assert status == 2
        assert "unknown fault kind" in capsys.readouterr().err


class TestStatsExtensions:
    def test_stats_prints_compiled_tables_and_events(self, capsys):
        status = main(["--stats", "analyze", HOTEL,
                       "--engine", "compiled"])
        assert status == 0
        out = capsys.readouterr().out
        assert "compiled tables:" in out
        assert "event compile.contract:" in out
        assert "event staticcheck.verdict: 1" in out

    def test_stats_chaos_counts_recovery_events(self, capsys):
        status = main(["--stats", "chaos", RESILIENT, "--seed", "7",
                       "--trials", "8"])
        assert status == 0
        out = capsys.readouterr().out
        assert "event fault.injected:" in out
        assert "event recovery.replan:" in out
        assert "event run.verdict: 8" in out

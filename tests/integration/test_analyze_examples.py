"""End-to-end tests for ``repro analyze`` over the shipped examples.

The acceptance criteria of the static certification layer:

* the JSON output is byte-for-byte reproducible (golden files under
  ``examples/golden/`` — the CI ``analyze`` job diffs them too);
* every *rejected* example carries witnesses that replay concretely;
* every *accepted* example survives 200 seeded monitored simulator
  runs without a security abort.
"""

import json
import pathlib

import pytest

from repro.cli import load_module, main
from repro.analysis.verification import verify_network
from repro.core.errors import SecurityViolationError
from repro.network.config import Component, Configuration
from repro.network.simulator import Simulator
from repro.staticcheck import analyze_module

ROOT = pathlib.Path(__file__).resolve().parents[2]
EXAMPLES = ROOT / "examples"
GOLDEN = EXAMPLES / "golden"

ANALYZED = ("hotel_booking.sus", "broken_booking.sus",
            "lambda_module.sus", "hotel_booking.toml")
ACCEPTED = ("hotel_booking.sus", "lambda_module.sus",
            "hotel_booking.toml")


class TestGoldenOutput:
    @pytest.mark.parametrize("name", ANALYZED)
    def test_json_matches_the_golden_file(self, name, capsys):
        status = main(["analyze", "--format", "json",
                       str(EXAMPLES / name)])
        out = capsys.readouterr().out
        golden = (GOLDEN / f"{name}.json").read_text()
        assert out == golden
        document = json.loads(out)
        assert document["schema"] == "repro-analyze.v1"
        assert status == (0 if document["ok"] else 1)

    def test_text_and_json_verdicts_agree(self, capsys):
        for name in ANALYZED:
            text_status = main(["analyze", str(EXAMPLES / name)])
            out = capsys.readouterr().out
            verdict = "accepted" if text_status == 0 else "rejected"
            assert f"verdict: {verdict}" in out


class TestRejectionWitnessesReplay:
    def test_every_broken_witness_replays(self):
        module = load_module(EXAMPLES / "broken_booking.sus")
        analysis = analyze_module(module)
        assert not analysis.ok
        replayed = 0
        for report in analysis.terms:
            if report.validity.witness is not None:
                assert report.validity.witness.replays(), report.name
                replayed += 1
        for report in analysis.pairs:
            if report.certificate.witness is not None:
                assert report.certificate.witness.replays(), \
                    (report.request, report.service)
                replayed += 1
        for report in analysis.plans:
            if report.explanation is None:
                continue
            witness = report.explanation.security_witness
            if witness is not None:
                assert witness.replays(), report.client
                replayed += 1
            for constraint in report.explanation.core:
                for refusal in constraint.refusals:
                    if refusal.witness is not None:
                        assert refusal.witness.replays(), \
                            (report.client, refusal.location)
                        replayed += 1
        assert replayed > 0  # the rejection is evidence-backed


class TestAcceptedModulesSurviveSimulation:
    @pytest.mark.parametrize("name", ACCEPTED)
    def test_200_seeded_monitored_runs(self, name):
        module = load_module(EXAMPLES / name)
        analysis = analyze_module(module)
        assert analysis.ok, name
        repository = module.repository
        verdict = verify_network(module.clients, repository)
        assert verdict.verified, name
        plans = verdict.plan_vector()
        for seed in range(200):
            configuration = Configuration.of(*(
                Component.client(location, term)
                for location, term in module.clients.items()))
            simulator = Simulator(configuration, plans, repository,
                                  monitored=True, seed=seed)
            try:
                simulator.run(max_steps=300)
            except SecurityViolationError as error:  # pragma: no cover
                pytest.fail(f"{name}: monitor abort at seed {seed}: "
                            f"{error}")
            assert simulator.all_histories_valid()

"""Tests for the command-line driver."""

import pytest

from repro.cli import load_network, main

NETWORK = """
[policies.phi]
schema = "never_after"
schema_args = ["archive", "modify"]
args = {}

[clients.me]
term = "open r with phi { !job . (?done + ?failed) }"

[services.good]
term = "?job . { @modify(1) ; @archive(1) ; !done }"

[services.sloppy]
term = "?job . { @archive(1) ; @modify(1) ; !failed }"
"""

BROKEN_POLICY = """
[policies.phi]
schema = "no_such_schema"

[clients.me]
term = "eps"
"""


@pytest.fixture()
def network_file(tmp_path):
    path = tmp_path / "net.toml"
    path.write_text(NETWORK)
    return str(path)


class TestLoadNetwork:
    def test_loads_policies_clients_services(self, network_file):
        network = load_network(network_file)
        assert set(network.policies) == {"phi"}
        assert set(network.clients) == {"me"}
        assert set(network.services) == {"good", "sloppy"}

    def test_unknown_schema_is_an_error(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text(BROKEN_POLICY)
        from repro.core.errors import ReproError
        with pytest.raises(ReproError, match="unknown schema"):
            load_network(path)

    def test_term_lookup(self, network_file):
        network = load_network(network_file)
        assert network.term("me") is network.clients["me"]
        assert network.term("good") is network.services["good"]
        from repro.core.errors import ReproError
        with pytest.raises(ReproError):
            network.term("ghost")


class TestCommands:
    def test_check(self, network_file, capsys):
        assert main(["check", network_file]) == 0
        out = capsys.readouterr().out
        assert "me: well formed" in out

    def test_verify_success(self, network_file, capsys):
        assert main(["verify", network_file]) == 0
        out = capsys.readouterr().out
        assert "r[good]" in out
        assert "switch off the monitor" in out

    def test_compliance_positive(self, network_file, capsys):
        assert main(["compliance", network_file, "me", "good"]) == 0
        assert "compliant" in capsys.readouterr().out

    def test_compliance_negative(self, tmp_path, capsys):
        path = tmp_path / "net.toml"
        path.write_text("""
[clients.me]
term = "open r { !job . ?done }"

[services.mute]
term = "?job"
""")
        assert main(["compliance", str(path), "me", "mute"]) == 1
        assert "NOT compliant" in capsys.readouterr().out

    def test_simulate(self, network_file, capsys):
        assert main(["simulate", network_file, "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "terminated: True" in out

    def test_simulate_unverifiable_network_fails(self, tmp_path, capsys):
        path = tmp_path / "net.toml"
        path.write_text("""
[clients.me]
term = "open r { !job . ?done }"

[services.mute]
term = "?job"
""")
        assert main(["simulate", str(path)]) == 1

    def test_dot_policy(self, network_file, capsys):
        assert main(["dot", network_file, "phi"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_dot_contract(self, network_file, capsys):
        assert main(["dot", network_file, "good"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_missing_file_is_usage_error(self, capsys):
        assert main(["check", "/nonexistent/net.toml"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_paper_toml_in_examples_verifies(self, capsys):
        import pathlib
        path = (pathlib.Path(__file__).resolve().parents[2]
                / "examples" / "hotel_booking.toml")
        assert main(["verify", str(path)]) == 0
        out = capsys.readouterr().out
        assert "r3[ls3]" in out and "r3[ls4]" in out


SUS_NETWORK = """
policy phi = never_after(archive, modify)

client me = open r with phi { !job . (?done + ?failed) }

service good   = ?job . { @modify(1) ; @archive(1) ; !done }
service sloppy = ?job . { @archive(1) ; @modify(1) ; !failed }
"""


class TestModuleFormat:
    def test_sus_file_verifies(self, tmp_path, capsys):
        path = tmp_path / "net.sus"
        path.write_text(SUS_NETWORK)
        assert main(["verify", str(path)]) == 0
        out = capsys.readouterr().out
        assert "r[good]" in out

    def test_sus_and_toml_agree(self, network_file, tmp_path, capsys):
        sus = tmp_path / "net.sus"
        sus.write_text(SUS_NETWORK)
        assert main(["verify", str(sus)]) == 0
        sus_out = capsys.readouterr().out
        assert main(["verify", network_file]) == 0
        toml_out = capsys.readouterr().out
        assert sus_out == toml_out

    def test_simulate_sus_with_trace(self, tmp_path, capsys):
        path = tmp_path / "net.sus"
        path.write_text(SUS_NETWORK)
        assert main(["simulate", str(path), "--seed", "2",
                     "--trace"]) == 0
        out = capsys.readouterr().out
        assert "step   1:" in out
        assert "final configuration:" in out


class TestTraceCommand:
    def test_trace_prints_span_tree_and_metrics(self, network_file,
                                                capsys):
        assert main(["trace", network_file, "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "planner.find_valid_plans" in out
        assert "simulator.run" in out
        assert "simulator.session" in out
        assert "compliance.explored_states" in out

    def test_trace_writes_jsonl(self, network_file, tmp_path, capsys):
        out_file = tmp_path / "trace.jsonl"
        assert main(["trace", network_file, "--out",
                     str(out_file)]) == 0
        from repro.observability.tracing import load_jsonl
        roots = load_jsonl(out_file.read_text())
        names = set()
        stack = list(roots)
        while stack:
            span = stack.pop()
            names.add(span.name)
            stack.extend(span.children)
        # Plan synthesis and at least one simulated session are covered.
        assert "planner.find_valid_plans" in names
        assert "compliance.search_product" in names
        assert "simulator.session" in names

    def test_trace_unverifiable_network_fails(self, tmp_path, capsys):
        path = tmp_path / "net.sus"
        path.write_text("""
client me = open r { !job . ?done }
service mute = ?job
""")
        assert main(["trace", str(path)]) == 1

    def test_trace_leaves_telemetry_disabled(self, network_file, capsys):
        from repro.observability import runtime
        assert main(["trace", network_file]) == 0
        assert runtime.active() is None


class TestStatsFlag:
    def test_stats_prints_metrics_table(self, network_file, capsys):
        assert main(["--stats", "verify", network_file]) == 0
        out = capsys.readouterr().out
        assert "-- metrics --" in out
        assert "compliance.checks" in out
        assert "cache contracts.lts:" in out

    def test_stats_reports_simulation_counters(self, network_file,
                                               capsys):
        assert main(["--stats", "simulate", network_file,
                     "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "simulator.steps{rule=" in out
        assert "simulator.sessions_opened" in out

    def test_without_stats_no_metrics_table(self, network_file, capsys):
        assert main(["verify", network_file]) == 0
        assert "-- metrics --" not in capsys.readouterr().out


class TestEngineFlag:
    """`--engine` on check/analyze/compliance: every engine returns the
    same exit code and verdict; `--stats` shows the compiled telemetry."""

    ENGINES = ("onthefly", "eager", "gfp", "compiled")

    def test_compliance_engines_agree_positive(self, network_file,
                                               capsys):
        for engine in self.ENGINES:
            assert main(["compliance", network_file, "me", "good",
                         "--engine", engine]) == 0, engine
            assert "compliant" in capsys.readouterr().out

    def test_compliance_engines_agree_negative(self, tmp_path, capsys):
        path = tmp_path / "net.toml"
        path.write_text("""
[clients.me]
term = "open r { !job . ?done }"

[services.mute]
term = "?job"
""")
        for engine in self.ENGINES:
            assert main(["compliance", str(path), "me", "mute",
                         "--engine", engine]) == 1, engine
            assert "NOT compliant" in capsys.readouterr().out

    def test_check_with_compiled_engine(self, network_file, capsys):
        assert main(["check", network_file, "--engine", "compiled"]) == 0
        assert "me: well formed" in capsys.readouterr().out

    def test_analyze_output_identical_across_engines(self, network_file,
                                                     capsys):
        assert main(["analyze", network_file, "--format", "json"]) == 0
        default_out = capsys.readouterr().out
        assert main(["analyze", network_file, "--format", "json",
                     "--engine", "compiled"]) == 0
        compiled_out = capsys.readouterr().out
        assert default_out == compiled_out

    def test_stats_shows_compile_telemetry(self, network_file, capsys):
        # Compilation telemetry fires on memo misses only — start from a
        # cold cache so this run actually compiles.
        from repro.contracts.contract import clear_contract_caches
        clear_contract_caches()
        assert main(["--stats", "compliance", network_file, "me", "good",
                     "--engine", "compiled"]) == 0
        out = capsys.readouterr().out
        assert "compile.contracts" in out
        assert "compile.states_interned" in out
        assert "cache compiled.contract:" in out
        assert "compliance.checks{engine=compiled" in out

    def test_unknown_engine_is_a_usage_error(self, network_file, capsys):
        import pytest as _pytest
        with _pytest.raises(SystemExit):
            main(["compliance", network_file, "me", "good",
                  "--engine", "quantum"])


class TestExplainCommand:
    def test_explain_narrates_all_plans(self, network_file, capsys):
        assert main(["explain", network_file, "me"]) == 0
        out = capsys.readouterr().out
        assert "VALID" in out
        assert "INSECURE" in out  # the sloppy worker's plan

    def test_explain_unknown_client(self, network_file, capsys):
        assert main(["explain", network_file, "ghost"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_explain_exit_code_without_valid_plan(self, tmp_path, capsys):
        path = tmp_path / "net.sus"
        path.write_text("""
client me = open r { !job . ?done }
service mute = ?job
""")
        assert main(["explain", str(path), "me"]) == 1

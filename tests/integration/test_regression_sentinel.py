"""The perf-regression sentinel (``benchmarks/check_regression.py``).

The committed trajectory files anchor the contract: BENCH_1 → BENCH_2
is an improvement and must pass; the committed 2x-slowdown fixture must
trip every shared indicator.  Synthetic files exercise discovery,
tolerance boundaries and the usage-error paths.
"""

import json
import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parents[2]
SENTINEL = REPO / "benchmarks" / "check_regression.py"
FIXTURE = REPO / "benchmarks" / "fixtures" / "BENCH_2x_slowdown.json"


def run_sentinel(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run([sys.executable, str(SENTINEL), *args],
                          capture_output=True, text=True, timeout=60)


class TestCommittedTrajectories:
    def test_bench1_to_bench2_passes(self):
        result = run_sentinel("--baseline", str(REPO / "BENCH_1.json"),
                              "--candidate", str(REPO / "BENCH_2.json"))
        assert result.returncode == 0, result.stdout + result.stderr
        assert "no regressions" in result.stdout

    def test_2x_slowdown_fixture_fails(self):
        result = run_sentinel("--baseline", str(REPO / "BENCH_2.json"),
                              "--candidate", str(FIXTURE))
        assert result.returncode == 1, result.stdout + result.stderr
        assert "FAIL" in result.stdout

    def test_json_verdict_is_machine_readable(self):
        result = run_sentinel("--baseline", str(REPO / "BENCH_2.json"),
                              "--candidate", str(FIXTURE),
                              "--format", "json")
        assert result.returncode == 1
        verdict = json.loads(result.stdout)
        assert verdict["schema"] == "repro-regression.v1"
        assert verdict["ok"] is False
        assert verdict["regressions"] == verdict["compared"] > 0
        for record in verdict["indicators"]:
            assert record["ratio"] == pytest.approx(
                record["candidate"] / record["baseline"])

    def test_only_shared_indicators_are_compared(self):
        """BENCH_1 is v1 (no compiled core), so compiled indicators
        must not appear in a BENCH_1-based comparison."""
        result = run_sentinel("--baseline", str(REPO / "BENCH_1.json"),
                              "--candidate", str(REPO / "BENCH_2.json"),
                              "--format", "json")
        verdict = json.loads(result.stdout)
        names = {record["indicator"] for record in verdict["indicators"]}
        assert "compiled_median_speedup" not in names
        assert "noncompliant_mean_speedup" in names


def _write_bench(path: pathlib.Path, speedup: float,
                 overhead: float = 1.5) -> None:
    path.write_text(json.dumps({
        "schema": "repro-bench.v3",
        "suites": {
            "s2": {"memoized_mean_speedup": speedup},
            "r1": {"fault_free_overhead": overhead},
        },
    }))


class TestToleranceBoundary:
    def test_within_tolerance_passes(self, tmp_path):
        _write_bench(tmp_path / "BENCH_1.json", 2.0)
        _write_bench(tmp_path / "BENCH_2.json", 1.3)  # x0.65 > 0.6
        result = run_sentinel("--dir", str(tmp_path))
        assert result.returncode == 0, result.stdout

    def test_past_tolerance_fails(self, tmp_path):
        _write_bench(tmp_path / "BENCH_1.json", 2.0)
        _write_bench(tmp_path / "BENCH_2.json", 1.1)  # x0.55 < 0.6
        result = run_sentinel("--dir", str(tmp_path))
        assert result.returncode == 1

    def test_lower_is_better_direction(self, tmp_path):
        _write_bench(tmp_path / "BENCH_1.json", 2.0, overhead=1.5)
        _write_bench(tmp_path / "BENCH_2.json", 2.0, overhead=3.0)
        result = run_sentinel("--dir", str(tmp_path), "--format", "json")
        assert result.returncode == 1
        failing = [record for record
                   in json.loads(result.stdout)["indicators"]
                   if not record["ok"]]
        assert [record["indicator"] for record in failing] == [
            "fault_free_overhead"]

    def test_custom_tolerance(self, tmp_path):
        _write_bench(tmp_path / "BENCH_1.json", 2.0)
        _write_bench(tmp_path / "BENCH_2.json", 1.1)
        result = run_sentinel("--dir", str(tmp_path),
                              "--tolerance", "0.5")  # floor 0.5 < 0.55
        assert result.returncode == 0


class TestDiscoveryAndErrors:
    def test_discovery_picks_two_highest_numbers(self, tmp_path):
        _write_bench(tmp_path / "BENCH_1.json", 5.0)
        _write_bench(tmp_path / "BENCH_2.json", 2.0)
        _write_bench(tmp_path / "BENCH_10.json", 2.0)  # numeric sort
        result = run_sentinel("--dir", str(tmp_path), "--format", "json")
        verdict = json.loads(result.stdout)
        assert verdict["baseline"] == "BENCH_2.json"
        assert verdict["candidate"] == "BENCH_10.json"
        assert result.returncode == 0

    def test_fewer_than_two_files_is_usage_error(self, tmp_path):
        _write_bench(tmp_path / "BENCH_1.json", 2.0)
        result = run_sentinel("--dir", str(tmp_path))
        assert result.returncode == 2
        assert "need at least two" in result.stderr

    def test_non_bench_json_is_usage_error(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"schema": "something-else"}')
        _write_bench(tmp_path / "base.json", 2.0)
        result = run_sentinel("--baseline", str(tmp_path / "base.json"),
                              "--candidate", str(bogus))
        assert result.returncode == 2
        assert "not a benchmark file" in result.stderr

    def test_baseline_without_candidate_is_usage_error(self):
        result = run_sentinel("--baseline", str(REPO / "BENCH_1.json"))
        assert result.returncode == 2

"""Cross-validation of the modular static analysis against the exhaustive
network explorer on a battery of small networks.

This is the strongest guarantee the test suite gives: for every candidate
plan of every scenario, the paper's compose-and-check analysis and the
brute-force semantics agree on validity.
"""

import pytest

from repro.analysis.planner import analyze_plan, enumerate_plans
from repro.core.syntax import (EPSILON, Framing, Var, event, external,
                               internal, mu, receive, request, send, seq)
from repro.network.config import Component, Configuration
from repro.network.explorer import plan_is_valid_exhaustive
from repro.network.repository import Repository
from repro.paper import figure2
from repro.policies.library import (at_most, forbid, never_after,
                                    require_before)


def scenario_paper():
    return (figure2.client_1(), figure2.repository())


def scenario_paper_c2():
    return (figure2.client_2(), figure2.repository())


def scenario_policy_mix():
    phi = never_after("archive", "modify")
    client = request("r", phi, seq(send("job"),
                                   external(("done", EPSILON),
                                            ("failed", EPSILON))))
    repo = Repository({
        "good": receive("job", seq(event("modify", 1),
                                   event("archive", 1), send("done"))),
        "sloppy": receive("job", seq(event("archive", 1),
                                     event("modify", 1), send("failed"))),
        "chatty": receive("job", internal(("done", EPSILON),
                                          ("progress", EPSILON))),
    })
    return client, repo


def scenario_nested():
    phi = require_before("auth", "charge")
    client = request("checkout", phi,
                     seq(send("order"), external(("receipt", send("ack")),
                                                 ("declined", EPSILON))))
    store = receive("order", seq(
        request("capture", None, seq(send("amount"),
                                     external(("ok", EPSILON),
                                              ("fail", EPSILON)))),
        internal(("receipt", receive("ack")), ("declined", EPSILON))))
    repo = Repository({
        "store": store,
        "fastpay": receive("amount", seq(event("auth", 9),
                                         event("charge", 9),
                                         internal(("ok", EPSILON),
                                                  ("fail", EPSILON)))),
        "sketchpay": receive("amount", seq(event("charge", 9),
                                           internal(("ok", EPSILON),
                                                    ("fail", EPSILON)))),
    })
    return client, repo


def scenario_counting():
    phi = at_most("tick", 2)
    client = request("r", phi, seq(send("go"), send("go"),
                                   send("stop")))
    ticker = mu("k", external(("go", seq(event("tick"), Var("k"))),
                              ("stop", EPSILON)))
    double = mu("k", external(("go", seq(event("tick"), event("tick"),
                                         Var("k"))),
                              ("stop", EPSILON)))
    return client, Repository({"one": ticker, "two": double})


SCENARIOS = [
    pytest.param(scenario_paper, id="paper-c1"),
    pytest.param(scenario_paper_c2, id="paper-c2"),
    pytest.param(scenario_policy_mix, id="policy-mix"),
    pytest.param(scenario_nested, id="nested-sessions"),
    pytest.param(scenario_counting, id="counting-recursion"),
]


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_static_analysis_agrees_with_exhaustive_oracle(scenario):
    client, repo = scenario()
    config = Configuration.of(Component.client("client", client))
    plans = list(enumerate_plans(client, repo))
    assert plans, "scenario must induce at least one candidate plan"
    disagreements = []
    for plan in plans:
        static = analyze_plan(client, plan, repo).valid
        oracle = plan_is_valid_exhaustive(config, plan, repo)
        if static != oracle:
            disagreements.append((str(plan), static, oracle))
    assert not disagreements, disagreements


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_each_scenario_is_discriminating(scenario):
    """Sanity: every scenario has both valid and invalid candidates
    (otherwise the cross-validation above proves little)."""
    client, repo = scenario()
    verdicts = {analyze_plan(client, plan, repo).valid
                for plan in enumerate_plans(client, repo)}
    assert verdicts == {True, False}

"""Coverage of public-API corners not exercised elsewhere."""

import repro


class TestTopLevelPackage:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_is_a_string(self):
        assert isinstance(repro.__version__, str)

    def test_subpackage_alls_resolve(self):
        import repro.analysis
        import repro.bpa
        import repro.contracts
        import repro.lam
        import repro.lang
        import repro.network
        import repro.policies
        import repro.quantitative
        for module in (repro.analysis, repro.bpa, repro.contracts,
                       repro.lam, repro.lang, repro.network,
                       repro.policies, repro.quantitative):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)


class TestVerifyClientCandidates:
    def test_candidates_restrict_the_search(self, repo, c1):
        from repro.analysis.verification import verify_client
        from repro.paper import figure2
        # Force request 3 to ls4: C1's policy rejects it, so the search
        # (correctly) finds nothing.
        verdict = verify_client(
            c1, repo, location=figure2.LOC_CLIENT_1,
            candidates={"1": [figure2.LOC_BROKER], "3": ["ls4"]})
        assert not verdict.verified
        # Allowing ls3 restores π1.
        verdict = verify_client(
            c1, repo, location=figure2.LOC_CLIENT_1,
            candidates={"1": [figure2.LOC_BROKER], "3": ["ls3"]})
        assert verdict.verified


class TestTraceLog:
    def test_labels_and_len(self):
        from repro.paper import figure3
        simulator, fired = figure3.replay()
        log = simulator.log
        assert len(log) == 13
        assert log.labels() == tuple(t.label for t in fired)
        assert log.rules()[0] == "open"

    def test_transition_str_is_informative(self):
        from repro.paper import figure3
        _, fired = figure3.replay()
        text = str(fired[0])
        assert "component 0" in text and "open" in text


class TestMiscObservers:
    def test_simulator_stuck_on_unserved_request(self):
        from repro import (Component, Configuration, Plan, Repository,
                           Simulator, request, send)
        client = request("r", None, send("x"))
        simulator = Simulator(
            Configuration.of(Component.client("me", client)),
            Plan.empty(), Repository())
        assert simulator.stuck() == (0,)

    def test_cost_model_names(self):
        from repro.quantitative import CostModel
        assert CostModel.of({"a": 1, "b": 2}).names() == {"a", "b"}

    def test_contract_repr(self):
        from repro import Contract, send
        assert "Contract(" in repr(Contract(send("a")))

    def test_automaton_str_helpers(self):
        from repro.policies.library import hotel_policy_automaton
        automaton = hotel_policy_automaton()
        edge_texts = [str(edge) for edge in automaton.edges]
        assert any("when" in text for text in edge_texts)
        pattern_text = str(automaton.edges[0].pattern)
        assert pattern_text.startswith("@sgn")

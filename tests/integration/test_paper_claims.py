"""End-to-end checks of every claim the paper's Section 2 states about
the motivating example, plus the Figure 3 computation."""

import pytest

from repro.analysis.planner import analyze_plan, find_valid_plans
from repro.analysis.requests import extract_requests
from repro.core.actions import Event
from repro.core.compliance import compliant, compliant_coinductive
from repro.core.plans import Plan
from repro.paper import figure2, figure3


def hotel_trace(identifier, price, rating):
    return (Event("sgn", (identifier,)), Event("p", (price,)),
            Event("ta", (rating,)))


HOTEL_TRACES = {
    "ls1": hotel_trace(1, 45, 80),
    "ls2": hotel_trace(2, 70, 100),
    "ls3": hotel_trace(3, 90, 100),
    "ls4": hotel_trace(4, 50, 90),
}


class TestComplianceClaims:
    """'Since Br is ready to receive each sent message, we say that the
    mentioned services are compliant with Br.  Instead, service S2 is not
    compliant with Br since it can send a message Del …'"""

    @pytest.mark.parametrize("location,expected", [
        ("ls1", True), ("ls2", False), ("ls3", True), ("ls4", True)])
    def test_hotels_vs_broker(self, repo, broker_term, location, expected):
        (broker_request,) = extract_requests(broker_term)
        assert compliant(broker_request.body, repo[location]) is expected

    def test_both_deciders_agree_on_the_matrix(self, repo, broker_term):
        (broker_request,) = extract_requests(broker_term)
        for location in figure2.LOC_HOTELS:
            assert (compliant(broker_request.body, repo[location])
                    == compliant_coinductive(broker_request.body,
                                             repo[location]))

    def test_clients_are_compliant_with_broker(self, repo, c1, c2):
        for client in (c1, c2):
            (info,) = extract_requests(client)
            assert compliant(info.body, repo[figure2.LOC_BROKER])


class TestSecurityClaims:
    """'… the services S1 and S4 violate the policy of C1 … while the
    services S1, S3 do not satisfy the policy of C2 since they are black
    listed.'"""

    @pytest.mark.parametrize("location,expected", [
        ("ls1", False), ("ls2", True), ("ls3", True), ("ls4", False)])
    def test_phi1_verdicts(self, phi1, location, expected):
        assert phi1.respects(HOTEL_TRACES[location]) is expected

    @pytest.mark.parametrize("location,expected", [
        ("ls1", False), ("ls2", True), ("ls3", False), ("ls4", True)])
    def test_phi2_verdicts(self, phi2, location, expected):
        assert phi2.respects(HOTEL_TRACES[location]) is expected


class TestPlanClaims:
    def test_pi1_is_valid(self, repo, c1):
        """'We call π1 valid, because it drives a computation where both
        the security constraints and compliance are guaranteed.'"""
        analysis = analyze_plan(c1, figure2.plan_pi1(), repo,
                                figure2.LOC_CLIENT_1)
        assert analysis.valid

    def test_pi1_is_the_only_valid_plan_for_c1(self, repo, c1):
        result = find_valid_plans(c1, repo, location=figure2.LOC_CLIENT_1)
        assert [a.plan for a in result.valid_plans] == [figure2.plan_pi1()]

    def test_s2_plan_rejected_for_compliance(self, repo, c2):
        """'Since S2 does not comply with Br … this plan is not valid.'"""
        analysis = analyze_plan(c2, figure2.plan_pi2_bad_compliance(),
                                repo, figure2.LOC_CLIENT_2)
        assert not analysis.valid
        assert not analysis.compliant
        assert analysis.secure  # compliance, not security, is the flaw

    def test_s3_plan_rejected_for_security(self, repo, c2):
        """'However S3 is black-listed by C2, and so a policy violation
        occurs; also this plan is not valid.'"""
        analysis = analyze_plan(c2, figure2.plan_pi2_bad_security(), repo,
                                figure2.LOC_CLIENT_2)
        assert not analysis.valid
        assert analysis.compliant  # S3 IS compliant with the broker
        assert not analysis.secure

    def test_c2_valid_plan_uses_s4(self, repo, c2):
        result = find_valid_plans(c2, repo, location=figure2.LOC_CLIENT_2)
        assert [a.plan for a in result.valid_plans] == \
            [figure2.plan_pi2_valid()]

    def test_direct_hotel_plans_fail_compliance(self, repo, c1):
        # Binding the client's own session to a hotel (skipping the
        # broker) can never work: hotels don't speak Req.
        for location in figure2.LOC_HOTELS:
            analysis = analyze_plan(c1, Plan.single("1", location), repo)
            assert not analysis.valid


class TestFigure3:
    def test_fragment_replays_with_exact_histories(self, phi1, phi2):
        from repro.core.actions import FrameClose, FrameOpen
        simulator, fired = figure3.replay()
        assert len(fired) == 13
        history_c1, history_c2 = simulator.histories()
        assert tuple(history_c1) == (
            FrameOpen(phi1), Event("sgn", (3,)), Event("p", (90,)),
            Event("ta", (100,)), FrameClose(phi1))
        assert tuple(history_c2) == (FrameOpen(phi2),)

    def test_fragment_respects_monitoring(self):
        # The same 13 steps fire with the angelic filter on: the run
        # never needs angelic help under the valid plan vector.
        monitored, _ = figure3.replay(monitored=True)
        unmonitored, _ = figure3.replay(monitored=False)
        assert monitored.histories() == unmonitored.histories()

    def test_whole_network_terminates_after_fragment(self):
        simulator, _ = figure3.replay()
        simulator.run(max_steps=500)
        assert simulator.is_terminated()
        assert simulator.all_histories_valid()


class TestHeadlineClaim:
    """'With such plans, neither violations of security, nor missing
    communications can occur, so there is no need for any execution
    monitor at run-time.'"""

    def test_valid_plans_never_need_the_monitor(self, repo, c1, c2):
        from repro.core.plans import PlanVector
        from repro.network.explorer import explore
        config = figure2.initial_configuration()
        plans = PlanVector.of(figure2.plan_pi1(), figure2.plan_pi2_valid())
        result = explore(config, plans, repo)
        assert result.valid
        assert result.secure and result.unfailing

    def test_invalid_plan_does_need_the_monitor(self, repo, c2):
        from repro.network.config import Component, Configuration
        from repro.network.explorer import explore
        config = Configuration.of(
            Component.client(figure2.LOC_CLIENT_2, c2))
        result = explore(config, figure2.plan_pi2_bad_security(), repo)
        assert not result.secure

"""Every example script must run to completion (their inline asserts do
the actual checking)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_cleanly(script):
    result = subprocess.run([sys.executable, str(script)],
                            capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr
    assert result.stdout  # examples narrate what they demonstrate


NETWORK_FILES = sorted(
    path for pattern in ("*.toml", "*.sus")
    for path in (pathlib.Path(__file__).resolve().parents[2]
                 / "examples").glob(pattern)
    # broken_* examples are deliberately unverifiable lint fodder
    # (tests/lint/ asserts their exact diagnostics).
    if not path.name.startswith("broken_"))


@pytest.mark.parametrize("network", NETWORK_FILES, ids=lambda p: p.name)
def test_example_network_files_verify(network):
    from repro.cli import main
    assert main(["verify", str(network)]) == 0


def test_broken_example_fails_verification_but_lints_precisely():
    """The deliberately broken example is broken in exactly the ways
    the lint engine reports: verification fails, and lint pinpoints
    the vacuous policy, dead branch and doomed request."""
    from repro.cli import main
    broken = str(pathlib.Path(__file__).resolve().parents[2]
                 / "examples" / "broken_booking.sus")
    assert main(["verify", broken]) == 1
    assert main(["lint", broken]) == 1

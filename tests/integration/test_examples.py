"""Every example script must run to completion (their inline asserts do
the actual checking)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_cleanly(script):
    result = subprocess.run([sys.executable, str(script)],
                            capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr
    assert result.stdout  # examples narrate what they demonstrate


NETWORK_FILES = sorted(
    path for pattern in ("*.toml", "*.sus")
    for path in (pathlib.Path(__file__).resolve().parents[2]
                 / "examples").glob(pattern))


@pytest.mark.parametrize("network", NETWORK_FILES, ids=lambda p: p.name)
def test_example_network_files_verify(network):
    from repro.cli import main
    assert main(["verify", str(network)]) == 0

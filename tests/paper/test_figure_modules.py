"""Unit tests for the executable paper encodings themselves."""

import pytest

from repro.core.errors import ReproError
from repro.core.syntax import channels_of, events_of, policies_of
from repro.core.wellformed import check_well_formed
from repro.paper import figure2, figure3


class TestFigure2Terms:
    def test_policies_are_the_two_instantiations(self):
        phi1, phi2 = figure2.policy_c1(), figure2.policy_c2()
        assert phi1 != phi2
        assert phi1.name == phi2.name == "phi"
        assert phi1.environment() == {"bl": frozenset({1}), "p": 45,
                                      "t": 100}
        assert phi2.environment() == {"bl": frozenset({1, 3}), "p": 40,
                                      "t": 70}

    def test_clients_differ_only_in_policy_and_request(self):
        c1, c2 = figure2.client_1(), figure2.client_2()
        assert c1.request == "1" and c2.request == "2"
        assert c1.policy == figure2.policy_c1()
        assert c2.policy == figure2.policy_c2()
        assert c1.body == c2.body

    def test_client_channels(self):
        assert channels_of(figure2.client_1()) == {"Req", "CoBo", "Pay",
                                                   "NoAv"}

    def test_broker_channels(self):
        assert channels_of(figure2.broker()) == {
            "Req", "IdC", "Bok", "UnA", "CoBo", "Pay", "NoAv"}

    def test_hotel_events(self):
        names = {e.name for e in events_of(figure2.hotel_1())}
        assert names == {"sgn", "p", "ta"}
        params = {e.params for e in events_of(figure2.hotel_3())}
        assert (3,) in params and (90,) in params and (100,) in params

    def test_hotel_2_has_the_del_branch(self):
        assert "Del" in channels_of(figure2.hotel_2())
        assert "Del" not in channels_of(figure2.hotel_1())

    def test_repository_contents(self):
        repo = figure2.repository()
        assert set(repo.locations()) == {"lbr", "ls1", "ls2", "ls3",
                                         "ls4"}
        for _, term in repo.items():
            check_well_formed(term)

    def test_services_carry_no_policies(self):
        for factory in (figure2.broker, figure2.hotel_1, figure2.hotel_2,
                        figure2.hotel_3, figure2.hotel_4):
            assert policies_of(factory()) == frozenset()

    def test_plans(self):
        assert figure2.plan_pi1()["1"] == figure2.LOC_BROKER
        assert figure2.plan_pi1()["3"] == "ls3"
        assert figure2.plan_pi2_bad_compliance()["3"] == "ls2"
        assert figure2.plan_pi2_bad_security()["3"] == "ls3"
        assert figure2.plan_pi2_valid()["3"] == "ls4"

    def test_initial_configuration(self):
        config = figure2.initial_configuration()
        assert len(config) == 2
        assert config[0].tree.location == figure2.LOC_CLIENT_1
        assert config[1].tree.location == figure2.LOC_CLIENT_2
        assert not config[0].history and not config[1].history


class TestFigure3Script:
    def test_script_has_thirteen_steps(self):
        assert len(figure3.SCRIPT) == 13

    def test_descriptions_are_informative(self):
        for description, _ in figure3.SCRIPT:
            assert len(description) > 10

    def test_plan_vector_routes_both_clients_through_broker(self):
        vector = figure3.plan_vector()
        assert vector[0]["1"] == figure2.LOC_BROKER
        assert vector[1]["2"] == figure2.LOC_BROKER

    def test_replay_with_alternative_hotel_for_c2(self):
        # The fragment stops before C2's hotel session, so any binding
        # replays fine — including the ones the paper rejects.
        simulator, fired = figure3.replay(pi2_hotel="ls2")
        assert len(fired) == 13

    def test_replay_fails_loudly_with_unserved_plan(self):
        # Without a binding for request 1, step 1 cannot fire.
        from repro.core.plans import Plan, PlanVector
        from repro.network.simulator import Simulator
        simulator = Simulator(figure2.initial_configuration(),
                              PlanVector.of(Plan.empty(), Plan.empty()),
                              figure2.repository())
        predicate = figure3.SCRIPT[0][1]
        with pytest.raises(ReproError):
            simulator.fire_matching(predicate)

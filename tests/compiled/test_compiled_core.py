"""Unit tests for the compiled verification core.

Covers the interning/bitset primitives, the lowering of contracts into
integer transition tables (channel-bitmask ready sets in particular),
the memoisation behaviour, and the cache-clear cascade: after
``clear_contract_caches`` the tables must be *recompiled*, never served
stale.
"""

import pytest

from repro.compiled import (Bitset, CompiledContract, Interner,
                            clear_compiled_caches, compile_contract,
                            compiled_cache_stats)
from repro.compiled.intern import (DENSE_BITSET_LIMIT, SparseBits,
                                   make_visited)
from repro.compiled.tables import LABELS, _compile
from repro.core.actions import Receive, Send
from repro.core.errors import StateSpaceLimitError
from repro.core.syntax import external, internal, receive, send, seq
from repro.contracts.contract import (Contract, clear_contract_caches,
                                      contract_cache_stats)


class TestInterner:
    def test_dense_first_seen_ids(self):
        table = Interner()
        assert table.intern("a") == 0
        assert table.intern("b") == 1
        assert table.intern("a") == 0
        assert table.values == ["a", "b"]
        assert len(table) == 2
        assert "a" in table and "z" not in table

    def test_get_never_extends(self):
        table = Interner()
        assert table.get("ghost") is None
        assert len(table) == 0


class TestBitsets:
    def test_test_and_set_semantics(self):
        bits = Bitset(64)
        assert not bits.test_and_set(17)
        assert bits.test_and_set(17)
        assert 17 in bits
        assert 18 not in bits
        bits.add(18)
        assert 18 in bits

    def test_sparse_fallback_protocol_matches(self):
        sparse = SparseBits()
        assert not sparse.test_and_set(10 ** 12)
        assert sparse.test_and_set(10 ** 12)
        assert 10 ** 12 in sparse

    def test_make_visited_picks_by_size(self):
        assert isinstance(make_visited(1024), Bitset)
        assert isinstance(make_visited(DENSE_BITSET_LIMIT + 1), SparseBits)


class TestLabelTable:
    def test_co_ids_are_mutual(self):
        # Clearing the label table alone would orphan cached compiled
        # tables (they hold its ids) — always go through the cascade.
        clear_contract_caches()
        a_out = LABELS.intern(Send("a"))
        a_in = LABELS.labels.get(Receive("a"))
        assert a_in is not None  # interning !a interns ?a too
        assert LABELS.co_id[a_out] == a_in
        assert LABELS.co_id[a_in] == a_out
        assert LABELS.channel_mask[a_out] == LABELS.channel_mask[a_in] != 0
        assert LABELS.is_out[a_out] and not LABELS.is_out[a_in]

    def test_distinct_channels_get_distinct_bits(self):
        clear_contract_caches()
        mask_a = LABELS.channel_mask[LABELS.intern(Send("a"))]
        mask_b = LABELS.channel_mask[LABELS.intern(Send("b"))]
        assert mask_a & mask_b == 0


class TestCompileContract:
    def test_state_zero_is_initial(self):
        term = internal(("a", send("b")))
        compiled = compile_contract(term)
        assert isinstance(compiled, CompiledContract)
        assert compiled.terms[0] == Contract(term).term
        assert compiled.n_states == len(Contract(term).lts)

    def test_masks_encode_ready_sets(self):
        # !a ++ !b: two outputs enabled, no inputs.
        term = internal(("a", send("x")), ("b", send("x")))
        compiled = compile_contract(term)
        assert bin(compiled.out_mask[0]).count("1") == 2
        assert compiled.in_mask[0] == 0
        # ?a + ?b: mirror image.
        dual_term = external(("a", receive("x")), ("b", receive("x")))
        compiled_dual = compile_contract(dual_term)
        assert bin(compiled_dual.in_mask[0]).count("1") == 2
        assert compiled_dual.out_mask[0] == 0

    def test_terminated_flags_follow_epsilon(self):
        compiled = compile_contract(send("a"))
        assert compiled.terminated[-1]  # ε is reached last
        assert not compiled.terminated[0]

    def test_moves_and_by_label_agree(self):
        term = seq(send("a"), receive("b"))
        compiled = compile_contract(term)
        for state_moves, label_index in zip(compiled.moves,
                                            compiled.by_label):
            assert len(state_moves) == len(label_index)
            for co_label, targets in state_moves:
                own = LABELS.co_id[co_label]
                assert label_index[own] == targets

    def test_accepts_contracts_and_terms(self):
        term = send("a")
        assert compile_contract(term) is compile_contract(Contract(term))

    def test_table_bytes_positive(self):
        assert compile_contract(send("a")).table_bytes() > 0


class TestMemoisationAndClearCascade:
    def test_compilation_is_memoised(self):
        clear_contract_caches()
        term = internal(("a", send("b")))
        first = compile_contract(term)
        assert compile_contract(term) is first
        stats = compiled_cache_stats()["compiled.contract"]
        assert stats["hits"] >= 1 and stats["misses"] == 1

    def test_clear_contract_caches_forces_recompilation(self):
        term = internal(("a", send("b")))
        before = compile_contract(term)
        assert _compile.cache_info().currsize >= 1
        clear_contract_caches()
        assert _compile.cache_info().currsize == 0
        assert len(LABELS.labels) == 0
        after = compile_contract(term)
        assert after is not before  # recompiled, not served stale
        assert after.moves == before.moves  # …but structurally identical

    def test_clear_compiled_caches_alone_suffices(self):
        term = send("a")
        compile_contract(term)
        clear_compiled_caches()
        assert _compile.cache_info().currsize == 0
        stats = compiled_cache_stats()
        assert stats["compiled.contract"]["misses"] == 0

    def test_compiled_stats_surface_in_contract_cache_stats(self):
        stats = contract_cache_stats()
        for name in ("compiled.contract", "compiled.reprs",
                     "compiled.validity_terms"):
            assert name in stats, name

    def test_label_table_stats_reflect_compiled_state(self):
        from repro.compiled.tables import label_table_stats
        clear_contract_caches()
        assert label_table_stats() == {"labels": 0, "channels": 0,
                                       "compiled_contracts": 0}
        compile_contract(internal(("a", send("b"))))
        stats = label_table_stats()
        assert stats["compiled_contracts"] == 1
        assert stats["labels"] > 0 and stats["channels"] > 0

    def test_clear_rebaselines_flight_recorder_counters(self):
        """``clear_contract_caches`` must rebaseline the flight
        recorder: post-clear counters read zero (the ``cache.cleared``
        marker included), and fresh compilations count from scratch."""
        from repro.observability import runtime
        clear_contract_caches()
        term = internal(("a", send("b")))
        with runtime.telemetry_session() as tel:
            compile_contract(term)
            assert tel.events.counters()["compile.contract"] == 1
            clear_contract_caches()
            assert tel.events.counters() == {}
            # The events themselves survive — only the counters restart.
            assert tel.events.find("cache.cleared")
            compile_contract(term)
            counters = tel.events.counters()
            assert counters["compile.contract"] == 1
            assert "cache.cleared" not in counters


class TestCompiledSearchLimits:
    def test_limit_error_matches_interpreted(self):
        from repro.compiled.search import compiled_search
        from repro.contracts.product import search_product
        client = Contract(seq(send("a"), send("b"), send("c")))
        server = Contract(seq(receive("a"), receive("b"), receive("c")))
        with pytest.raises(StateSpaceLimitError):
            search_product(client, server, max_states=2)
        with pytest.raises(StateSpaceLimitError):
            compiled_search(compile_contract(client),
                            compile_contract(server), 2)

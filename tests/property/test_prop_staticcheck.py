"""Property-based checks of the static certification layer.

Soundness is machine-checked from both directions:

* every *rejection* must be concretely replayable — validity witnesses
  re-run through the :class:`ValidityMonitor`, stuck witnesses re-walk
  the contract transition systems;
* every *acceptance* must over-approximate the concrete semantics — a
  may-label analysis that misses a label some run produces, or a valid
  certificate for a term with an invalid run, is a soundness bug.
"""

import random

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.compliance import compliant_coinductive
from repro.core.errors import StateSpaceLimitError
from repro.core.semantics import step
from repro.core.validity import History, ValidityMonitor, is_valid
from repro.core.actions import is_history_label
from repro.staticcheck import (analyse_labels, certify_compliance,
                               certify_validity)

from tests.strategies import contracts, history_expressions


def random_run(term, seed, max_steps=40):
    """One random maximal (bounded) run of *term*: its emitted labels."""
    rng = random.Random(seed)
    labels = []
    current = term
    for _ in range(max_steps):
        moves = sorted(step(current), key=repr)
        if not moves:
            break
        label, current = rng.choice(moves)
        labels.append(label)
    return labels


@settings(max_examples=60, deadline=None)
@given(term=history_expressions(max_depth=3),
       seed=st.integers(0, 2**16))
def test_may_labels_over_approximate_every_run(term, seed):
    analysis = analyse_labels(term)
    for label in random_run(term, seed):
        assert label in analysis.may, (term, label)


@settings(max_examples=60, deadline=None)
@given(term=history_expressions(max_depth=3))
def test_must_is_below_may(term):
    analysis = analyse_labels(term)
    assert analysis.must <= analysis.may <= analysis.universe


@settings(max_examples=50, deadline=None)
@given(term=history_expressions(max_depth=3),
       seed=st.integers(0, 2**16))
def test_validity_certificates_are_sound_both_ways(term, seed):
    try:
        certificate = certify_validity(term, max_states=20_000)
    except StateSpaceLimitError:
        assume(False)
    if certificate.valid:
        # Acceptance: no concrete run may produce an invalid history.
        history = History(tuple(
            label for label in random_run(term, seed)
            if is_history_label(label)))
        assert is_valid(history), (term, history)
    else:
        # Rejection: the witness must replay sharply in the monitor.
        witness = certificate.witness
        assert witness.replays(), (term, witness)
        monitor = ValidityMonitor()
        for label in witness.labels[:-1]:
            assert monitor.extend(label)
        assert not monitor.extend(witness.labels[-1])


@settings(max_examples=50, deadline=None)
@given(client=contracts(max_depth=3), server=contracts(max_depth=3))
def test_compliance_certificates_agree_and_replay(client, server):
    try:
        certificate = certify_compliance(client, server,
                                         max_states=20_000)
    except StateSpaceLimitError:
        assume(False)
    assert certificate.compliant == compliant_coinductive(client, server)
    if not certificate.compliant:
        assert certificate.witness is not None
        assert certificate.witness.replays(), (client, server)

"""Property-based testing of the canonicalization layer.

Three families of seeded properties:

* **Quotient soundness** — running the product-emptiness search on
  bisimulation quotients yields exactly the verdict of all four
  compliance engines on the original contracts.
* **Fingerprint stability** — canonical fingerprints are invariant
  under label-interning order (a cache flush plus a different warm-up
  must reproduce them bit for bit) and agree with canonical equality on
  random samples.
* **Preorder soundness** — over ≥200 seeded contract pairs: when
  ``H1 ≼ H2`` holds, every sampled client compliant with ``H1`` stays
  compliant with ``H2`` on all four engines; when it is refused, the
  synthesised witness client replays concretely on all four engines
  (compliant with ``H1``, stuck against ``H2``); and the interpreted
  ``subcontract`` — a sound under-approximation — never accepts a pair
  the exact decider refuses.
"""

import random

import pytest

from repro.canon import (canonically_equal, fingerprint_of, minimize,
                         preorder_equivalent, subcontract_preorder)
from repro.compiled.search import compiled_search
from repro.contracts.contract import clear_contract_caches
from repro.contracts.subcontract import subcontract as interpreted_subcontract
from repro.core.compliance import check_compliance
from repro.core.duality import dual
from repro.core.syntax import (EPSILON, external, internal, mu, seq, send)

SEED = 0xCA404
PREORDER_ROUNDS = 210
ENGINES = ("onthefly", "eager", "gfp", "compiled")
SEARCH_LIMIT = 100_000


def random_contract(rng, depth):
    """The T1 grammar of the compiled property suite, extended with a
    guarded recursion production."""
    if depth == 0:
        return EPSILON
    kind = rng.choice(("int", "ext", "seq", "mu"))
    channels = rng.sample(["a", "b", "c"], k=rng.randint(1, 2))
    if kind == "seq":
        return seq(random_contract(rng, depth - 1),
                   random_contract(rng, depth - 1))
    if kind == "mu":
        return mu("h", internal((channels[0],
                                 random_contract(rng, depth - 1))))
    branches = tuple((channel, random_contract(rng, depth - 1))
                     for channel in channels)
    if kind == "int":
        return internal(*branches)
    return external(*branches)


def preorder_pairs(seed, rounds):
    """Seeded pairs mixing reflexive seeds (guaranteed positives),
    free random pairs (mostly refusals), and widened/narrowed variants
    that exercise both refinement directions."""
    rng = random.Random(seed)
    for _ in range(rounds):
        mode = rng.randrange(4)
        h1 = random_contract(rng, rng.randint(1, 4))
        if mode == 0:
            yield h1, h1
        elif mode == 1:
            # Widen at the root: extra external input / an independently
            # written contract.
            h2 = external(("a", h1)) if rng.random() < 0.5 else \
                random_contract(rng, rng.randint(1, 4))
            yield h1, h2
        else:
            yield h1, random_contract(rng, rng.randint(1, 4))


class TestQuotientSoundness:
    def test_quotient_verdicts_match_every_engine(self):
        rng = random.Random(SEED)
        disagreements = []
        for round_no in range(60):
            client = random_contract(rng, rng.randint(1, 4))
            server = (dual(client) if round_no % 3 == 0
                      else random_contract(rng, rng.randint(1, 4)))
            quotiented = compiled_search(minimize(client),
                                         minimize(server),
                                         SEARCH_LIMIT).empty
            for engine in ENGINES:
                direct = check_compliance(client, server,
                                          engine=engine).compliant
                if direct != quotiented:
                    disagreements.append((round_no, engine, direct,
                                          quotiented))
        assert not disagreements, disagreements[:5]

    def test_quotients_never_grow(self):
        rng = random.Random(SEED ^ 1)
        for _ in range(40):
            term = random_contract(rng, rng.randint(1, 4))
            quotient = minimize(term)
            assert quotient.n_blocks <= quotient.n_source_states


class TestFingerprintStability:
    def test_interning_order_cannot_move_fingerprints(self):
        rng = random.Random(SEED ^ 2)
        terms = [random_contract(rng, rng.randint(1, 4))
                 for _ in range(30)]
        clear_contract_caches()
        expected = [fingerprint_of(term) for term in terms]
        clear_contract_caches()
        # Re-intern everything in reverse, with extra channels salted in
        # first, so every label id differs from the first run.
        fingerprint_of(internal(("zz", EPSILON), ("yy", EPSILON)))
        recomputed = list(reversed(
            [fingerprint_of(term) for term in reversed(terms)]))
        assert recomputed == expected

    def test_fingerprint_equality_is_canonical_equality(self):
        rng = random.Random(SEED ^ 3)
        terms = [random_contract(rng, rng.randint(1, 3))
                 for _ in range(25)]
        for a in terms:
            for b in terms:
                assert (fingerprint_of(a) == fingerprint_of(b)) == \
                    canonically_equal(a, b), (a, b)

    def test_canonical_equality_implies_mutual_refinement(self):
        rng = random.Random(SEED ^ 4)
        pairs_checked = 0
        for _ in range(80):
            a = random_contract(rng, rng.randint(1, 3))
            b = random_contract(rng, rng.randint(1, 3))
            if canonically_equal(a, b):
                assert preorder_equivalent(a, b), (a, b)
                pairs_checked += 1
        assert pairs_checked  # the grammar does produce collisions


class TestPreorderSoundness:
    PAIRS = list(preorder_pairs(SEED ^ 5, PREORDER_ROUNDS))

    def test_at_least_two_hundred_pairs(self):
        assert len(self.PAIRS) >= 200

    def test_positive_verdicts_preserve_compliant_clients(self):
        rng = random.Random(SEED ^ 6)
        positives = 0
        for h1, h2 in self.PAIRS:
            result = subcontract_preorder(h1, h2)
            if not result.holds:
                continue
            positives += 1
            clients = [dual(h1)] + [random_contract(rng, rng.randint(1, 3))
                                    for _ in range(2)]
            for client in clients:
                if not check_compliance(client, h1,
                                        engine="compiled").compliant:
                    continue
                for engine in ENGINES:
                    assert check_compliance(client, h2,
                                            engine=engine).compliant, \
                        (h1, h2, client, engine)
        assert positives >= 40  # reflexive seeds guarantee plenty

    def test_every_refusal_witness_replays_on_every_engine(self):
        refusals = 0
        for h1, h2 in self.PAIRS:
            result = subcontract_preorder(h1, h2)
            if result.holds:
                continue
            refusals += 1
            witness = result.witness
            assert witness is not None, (h1, h2)
            for engine in ENGINES:
                assert check_compliance(witness.client, h1,
                                        engine=engine).compliant, \
                    (h1, h2, engine)
                assert not check_compliance(witness.client, h2,
                                            engine=engine).compliant, \
                    (h1, h2, engine)
        assert refusals >= 40

    def test_interpreted_subcontract_never_beats_the_exact_decider(self):
        # The interpreted checker is sound but conservative: wherever it
        # says yes, the exact decider must agree.
        violations = []
        for h1, h2 in self.PAIRS[:120]:
            try:
                conservative = interpreted_subcontract(h1, h2)
            except Exception:  # noqa: BLE001 - blowups aren't verdicts
                continue
            if conservative and not subcontract_preorder(h1, h2).holds:
                violations.append((h1, h2))
        assert not violations, violations[:3]

    def test_vacuous_left_holds_for_arbitrary_right(self):
        rng = random.Random(SEED ^ 7)
        for _ in range(20):
            right = random_contract(rng, rng.randint(1, 4))
            assert subcontract_preorder(EPSILON, right).holds

    def test_reflexivity_across_the_sample(self):
        for h1, _ in self.PAIRS[:60]:
            assert subcontract_preorder(h1, h1).holds, h1

    def test_transitivity_on_witnessed_chains(self):
        rng = random.Random(SEED ^ 8)
        checked = 0
        for _ in range(120):
            a = random_contract(rng, rng.randint(1, 3))
            b = random_contract(rng, rng.randint(1, 3))
            c = random_contract(rng, rng.randint(1, 3))
            if subcontract_preorder(a, b).holds and \
                    subcontract_preorder(b, c).holds:
                assert subcontract_preorder(a, c).holds, (a, b, c)
                checked += 1
        assert checked  # the sample does produce chains


def test_send_only_contract_quotient_roundtrip():
    # A degenerate single-path contract: quotient, fingerprint and
    # preorder all agree it is equivalent to itself written with seq.
    flat = internal(("a", internal(("b", EPSILON))))
    sequenced = seq(send("a"), send("b"))
    assert canonically_equal(flat, sequenced)
    assert preorder_equivalent(flat, sequenced)
    with pytest.raises(AssertionError):
        # Sanity: the helper really distinguishes non-equal contracts.
        assert canonically_equal(flat, send("a"))

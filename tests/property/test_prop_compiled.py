"""Differential testing of the compiled core against every interpreted
engine.

Over seeded random contract pairs (the same workload generators the
on-the-fly property suite draws from, plus the T1 random-contract
grammar) all four compliance engines must agree on the verdict; where an
engine pair shares exploration semantics the explored-state counts and
witness traces must be *identical*, and every witness must replay
against the concrete semantics.
"""

import pathlib
import random
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2]
                       / "benchmarks"))

from workloads import (almost_compliant_server, policy_heavy_client,  # noqa: E402
                       wide_client, wide_server)

from repro.core.compliance import check_compliance  # noqa: E402
from repro.core.duality import dual  # noqa: E402
from repro.core.syntax import (EPSILON, event, external, framing,  # noqa: E402
                               internal, seq)
from repro.policies.library import forbid  # noqa: E402
from repro.staticcheck.compliance import certify_compliance  # noqa: E402
from repro.staticcheck.validity import certify_validity  # noqa: E402

SEED = 0xC0DEC
ROUNDS = 40

ENGINES = ("onthefly", "eager", "gfp", "compiled")


def random_contract(rng, depth):
    """The T1 grammar: internal/external choices and sequencing over
    channels a/b/c."""
    if depth == 0:
        return EPSILON
    kind = rng.choice(("int", "ext", "seq"))
    channels = rng.sample(["a", "b", "c"], k=rng.randint(1, 2))
    if kind == "seq":
        return seq(random_contract(rng, depth - 1),
                   random_contract(rng, depth - 1))
    branches = tuple((channel, random_contract(rng, depth - 1))
                     for channel in channels)
    if kind == "int":
        return internal(*branches)
    return external(*branches)


def random_pairs(seed: int, rounds: int):
    """Seeded pairs mixing the workload generators (structured, deep)
    with the free random grammar (adversarial shapes) and compliant
    dual seeds."""
    rng = random.Random(seed)
    for round_no in range(rounds):
        mode = rng.randrange(4)
        if mode == 0:
            width, depth = rng.randint(1, 3), rng.randint(1, 3)
            yield wide_client(width, depth), wide_server(width, depth)
        elif mode == 1:
            width, depth = rng.randint(1, 3), rng.randint(1, 3)
            yield (wide_client(width, depth),
                   almost_compliant_server(
                       width, depth, surprise_level=rng.randrange(depth)))
        elif mode == 2:
            client = random_contract(rng, rng.randint(1, 4))
            yield client, dual(client)
        else:
            yield (random_contract(rng, rng.randint(1, 4)),
                   random_contract(rng, rng.randint(1, 4)))


PAIRS = list(random_pairs(SEED, ROUNDS))


@pytest.mark.parametrize("client,server", PAIRS,
                         ids=[f"case{i}" for i in range(len(PAIRS))])
def test_all_four_engines_agree(client, server):
    results = {engine: check_compliance(client, server, engine=engine)
               for engine in ENGINES}
    verdicts = {engine: result.compliant
                for engine, result in results.items()}
    assert len(set(verdicts.values())) == 1, verdicts

    # onthefly and compiled share BFS semantics exactly: identical
    # explored counts and identical (shortest) counterexample traces.
    assert (results["onthefly"].explored_states
            == results["compiled"].explored_states)
    assert results["onthefly"].trace == results["compiled"].trace

    # Each engine's witness, when present, is the last element of its
    # trace and genuinely stuck.
    for engine, result in results.items():
        if not result.compliant:
            assert result.trace, engine
            assert result.witness == result.trace[-1], engine


@pytest.mark.parametrize("client,server", PAIRS,
                         ids=[f"case{i}" for i in range(len(PAIRS))])
def test_gfp_certificates_identical_across_engines(client, server):
    interpreted = certify_compliance(client, server)
    compiled = certify_compliance(client, server, engine="compiled")
    assert interpreted.compliant == compiled.compliant
    assert interpreted.pairs == compiled.pairs
    assert interpreted.witness == compiled.witness
    if compiled.witness is not None:
        assert compiled.witness.replays()


VALID_TERMS = [policy_heavy_client(policies, events)
               for policies in (1, 2, 3) for events in (2, 4)]
VIOLATING_TERMS = [
    framing(forbid("rm"), seq(event("touch"), event("rm"))),
    framing(forbid("rm"),
            seq(event("a"),
                internal(("b", seq(event("touch"), event("rm"))),
                         ("c", event("ok"))))),
]


@pytest.mark.parametrize("term", VALID_TERMS + VIOLATING_TERMS,
                         ids=[f"term{i}" for i in
                              range(len(VALID_TERMS) + len(VIOLATING_TERMS))])
def test_validity_certificates_identical_across_engines(term):
    interpreted = certify_validity(term)
    compiled = certify_validity(term, engine="compiled")
    assert interpreted.valid == compiled.valid
    assert interpreted.explored == compiled.explored
    assert interpreted.witness == compiled.witness
    if compiled.witness is not None:
        assert compiled.witness.replays()


def test_unknown_engines_are_rejected():
    client, server = PAIRS[0]
    with pytest.raises(ValueError, match="unknown compliance engine"):
        check_compliance(client, server, engine="vectorised")
    with pytest.raises(ValueError, match="unknown certification engine"):
        certify_compliance(client, server, engine="vectorised")
    with pytest.raises(ValueError, match="unknown certification engine"):
        certify_validity(VALID_TERMS[0], engine="vectorised")

"""Property-based round-trip tests for policy serialisation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policies.serialize import (automaton_from_dict,
                                      automaton_to_dict, dumps,
                                      guard_from_dict, guard_to_dict,
                                      loads)

from tests.strategies import events, guards, usage_automata


@settings(max_examples=200, deadline=None)
@given(guard=guards())
def test_guard_round_trip(guard):
    assert guard_from_dict(guard_to_dict(guard)) == guard


@settings(max_examples=150, deadline=None)
@given(automaton=usage_automata())
def test_automaton_round_trip(automaton):
    assert automaton_from_dict(automaton_to_dict(automaton)) == automaton


@settings(max_examples=100, deadline=None)
@given(automaton=usage_automata(),
       trace=st.lists(events(), max_size=6))
def test_json_round_trip_preserves_verdicts(automaton, trace):
    policy = automaton.instantiate()
    revived = loads(dumps(policy))
    assert revived == policy
    assert revived.accepts(trace) == policy.accepts(trace)

"""Round-trip properties at the *module* level.

:mod:`tests.property.test_prop_lang` already round-trips bare terms
through ``parse ∘ pretty``; here the same law is checked for whole
modules: every checked-in example, and modules assembled around seeded
strategy terms, survive rendering and re-parsing structurally intact.
"""

from pathlib import Path

import pytest
from hypothesis import given, settings

from repro.core.syntax import policies_of
from repro.lang.module import parse_module
from repro.lang.parser import parse
from repro.lang.pretty import pretty
from repro.policies.library import (at_most, forbid, never_after,
                                    require_before)

from tests.strategies import contracts, history_expressions

EXAMPLES = sorted(
    (Path(__file__).parents[2] / "examples").glob("*.sus"))

#: Module-source spellings of the policies the strategies sample from
#: (see :func:`tests.strategies.policies`).  Policies without a spelling
#: fall back to a term-level round trip.
POLICY_SPELLINGS = {
    never_after("read", "write"): "never_after(read, write)",
    never_after("write", "read"): "never_after(write, read)",
    forbid("close"): "forbid(close)",
    at_most("open", 2): "at_most(open, 2)",
    require_before("open", "read"): "require_before(open, read)",
}


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_modules_round_trip(path):
    """Every term of every example module survives parse ∘ pretty."""
    module = parse_module(path.read_text(), path=str(path))
    names = {policy: name for name, policy in module.policies.items()}
    for name, term in {**module.clients, **module.services}.items():
        rendered = pretty(term, names)
        reparsed = parse(rendered, policies=dict(module.policies))
        assert reparsed == term, (path.name, name, rendered)


@settings(max_examples=150, deadline=None)
@given(term=contracts())
def test_contract_terms_round_trip_as_client_declarations(term):
    source = f"client c = {pretty(term)}\n"
    module = parse_module(source)
    assert module.clients["c"] == term


@settings(max_examples=150, deadline=None)
@given(term=history_expressions())
def test_strategy_terms_round_trip_as_declarations(term):
    used = sorted(policies_of(term), key=str)
    names = {policy: f"p{index}" for index, policy in enumerate(used)}
    if not all(policy in POLICY_SPELLINGS for policy in used):
        # No module spelling for this policy (e.g. the same_resource
        # variant): the term-level law still must hold.
        rendered = pretty(term, names)
        env = {name: policy for policy, name in names.items()}
        assert parse(rendered, policies=env) == term
        return
    lines = [f"policy {names[policy]} = {POLICY_SPELLINGS[policy]}"
             for policy in used]
    lines.append(f"client c = {pretty(term, names)}")
    module = parse_module("\n".join(lines) + "\n")
    assert module.clients["c"] == term
    assert module.policies == {names[policy]: policy for policy in used}

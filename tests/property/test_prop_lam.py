"""Property-based checks of the λ front end.

Random *unit-valued* service programs are generated compositionally:
sequences of primitives, conditionals over output-guarded branches,
offers, sessions, framings and guarded recursion.  By construction they
are well typed, so inference must succeed, be deterministic, and always
produce closed, well-formed history expressions.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.syntax import is_closed
from repro.core.wellformed import is_well_formed
from repro.lam import (BOOL, UNIT, UNIT_VALUE, app, cond, evt, fix, infer,
                       offer, open_session, recv, send, seq_terms, var,
                       within)
from repro.lam.infer import extract

from tests.strategies import policies

CHANNELS = ("a", "b", "c")
EVENTS = ("read", "write", "log")


def unit_programs(max_depth: int = 4):
    """Unit-valued, well-typed service programs.

    Conditional branches are always built from `send`-headed programs,
    so the effect join always succeeds.
    """
    base = (st.just(UNIT_VALUE)
            | st.sampled_from(EVENTS).map(lambda name: evt(name, 1))
            | st.sampled_from(CHANNELS).map(send)
            | st.sampled_from(CHANNELS).map(recv))

    def extend(children):
        sequenced = st.lists(children, min_size=2, max_size=3).map(
            lambda steps: seq_terms(*steps))
        offered = st.lists(
            st.tuples(st.sampled_from(CHANNELS), children),
            min_size=1, max_size=2,
            unique_by=lambda branch: branch[0]).map(
            lambda branches: offer(*branches))
        conditional = st.tuples(
            st.sampled_from(CHANNELS), children,
            st.sampled_from(CHANNELS), children).map(
            lambda quad: cond(var("flag"),
                              seq_terms(send(quad[0]), quad[1]),
                              seq_terms(send(quad[2]), quad[3])))
        framed = st.tuples(policies(), children).map(
            lambda pair: within(pair[0], pair[1]))
        sessions = st.tuples(st.integers(0, 10**9), children).map(
            lambda pair: open_session(f"r{pair[0]}", None, pair[1]))
        return sequenced | offered | conditional | framed | sessions

    return st.recursive(base, extend, max_leaves=max_depth * 2)


ENV = {"flag": BOOL}


@settings(max_examples=200, deadline=None)
@given(program=unit_programs())
def test_generated_programs_type_check(program):
    judgement = infer(program, env=ENV)
    assert judgement.type == UNIT


@settings(max_examples=200, deadline=None)
@given(program=unit_programs())
def test_extracted_effects_are_closed(program):
    judgement = infer(program, env=ENV)
    assert is_closed(judgement.effect)


@settings(max_examples=150, deadline=None)
@given(program=unit_programs())
def test_extracted_effects_are_well_formed_unless_duplicated_requests(
        program):
    # Random session identifiers can collide (well-formedness requires
    # unique request ids); any other defect is a bug.
    from repro.core.syntax import requests_of
    judgement = infer(program, env=ENV)
    ids = [node.request for node in requests_of(judgement.effect)]
    if len(ids) == len(set(ids)):
        assert is_well_formed(judgement.effect)


@settings(max_examples=100, deadline=None)
@given(program=unit_programs())
def test_inference_is_deterministic(program):
    first = infer(program, env=ENV)
    second = infer(program, env=ENV)
    assert first == second


@settings(max_examples=100, deadline=None)
@given(program=unit_programs())
def test_sequencing_effects_composes(program):
    """effect(e ; e') = effect(e) · effect(e')."""
    from repro.core.syntax import seq as he_seq
    single = infer(program, env=ENV).effect
    double = infer(seq_terms(program, program), env=ENV).effect
    assert double == he_seq(single, single)


@settings(max_examples=100, deadline=None)
@given(program=unit_programs(max_depth=3))
def test_guarded_recursion_always_closes(program):
    """Wrapping any generated program in a guarded tail-recursive server
    produces a μ-closed, well-formed latent effect."""
    server = fix("serve", "u", UNIT, UNIT,
                 offer(("go", seq_terms(program,
                                        app(var("serve"), UNIT_VALUE))),
                       ("stop", UNIT_VALUE)))
    judgement = infer(server, env=ENV)
    latent = judgement.type.latent
    assert is_closed(latent)
    from repro.core.syntax import requests_of
    ids = [node.request for node in requests_of(latent)]
    if len(ids) == len(set(ids)):
        assert is_well_formed(latent)

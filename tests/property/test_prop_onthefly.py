"""Randomized agreement of the three compliance deciders, and of the
memoized planner with the unmemoized one.

The contract pairs are drawn (seeded) from the benchmark workload
generators; for every pair the on-the-fly search, eager product
emptiness, and the coinductive decider of Definition 4 must return the
same verdict — a machine check of Theorems 1 and 2 across both engines.
"""

import pathlib
import random
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2]
                       / "benchmarks"))

from workloads import (almost_compliant_server, chain_client,  # noqa: E402
                       wide_client, wide_server, worker_pool)

from repro.core.compliance import (check_compliance,  # noqa: E402
                                   compliant_coinductive)
from repro.analysis.planner import find_valid_plans  # noqa: E402
from repro.contracts.contract import Contract  # noqa: E402
from repro.contracts.product import build_product  # noqa: E402
from repro.paper import figure2  # noqa: E402

SEED = 0x5EC0DE
ROUNDS = 30


def random_pairs(seed: int, rounds: int):
    """Seeded contract pairs over the workload generators: matching,
    defective, and deliberately mismatched client/server shapes."""
    rng = random.Random(seed)
    for _ in range(rounds):
        width = rng.randint(1, 3)
        depth = rng.randint(1, 3)
        client = wide_client(width, depth)
        shape = rng.randrange(4)
        if shape == 0:
            server = wide_server(width, depth)
        elif shape == 1:
            server = almost_compliant_server(
                width, depth, surprise_level=rng.randrange(depth))
        elif shape == 2:
            # Mismatched width: the server misses some answers.
            server = wide_server(rng.randint(1, 3), depth)
        else:
            # Mismatched depth: one side ends a round early.
            server = wide_server(width, rng.randint(1, 3))
        yield client, server


@pytest.mark.parametrize("client,server",
                         list(random_pairs(SEED, ROUNDS)),
                         ids=[f"case{i}" for i in range(ROUNDS)])
def test_deciders_agree_on_random_workloads(client, server):
    onthefly = check_compliance(client, server)
    eager_empty = build_product(Contract(client),
                                Contract(server)).language_is_empty()
    coinductive = compliant_coinductive(client, server)
    assert onthefly.compliant == eager_empty == coinductive
    if not onthefly.compliant:
        assert onthefly.trace is not None
        assert onthefly.witness == onthefly.trace[-1]


def partition(result):
    return (frozenset(a.plan for a in result.valid_plans),
            frozenset(a.plan for a in result.invalid_plans))


class TestMemoizedPlannerPartition:
    """Memoisation, pruning and the parallel path must not change which
    plans are valid — only how much work deciding that takes."""

    @pytest.mark.parametrize("client_fn,location", [
        (figure2.client_1, figure2.LOC_CLIENT_1),
        (figure2.client_2, figure2.LOC_CLIENT_2),
    ], ids=["c1", "c2"])
    def test_figure2_partition_is_preserved(self, client_fn, location):
        repo = figure2.repository()
        client = client_fn()
        baseline = find_valid_plans(client, repo, location=location,
                                    memoize=False, prune=False)
        for variant in (
                find_valid_plans(client, repo, location=location),
                find_valid_plans(client, repo, location=location,
                                 parallel=3)):
            assert partition(variant) == partition(baseline)

    def test_random_worker_pools_preserve_partition(self):
        rng = random.Random(SEED)
        for _ in range(5):
            client = chain_client(rng.randint(1, 3))
            repo = worker_pool(rng.randint(2, 5),
                               defective_every=rng.choice([0, 2, 3]))
            baseline = find_valid_plans(client, repo, memoize=False,
                                        prune=False)
            memoized = find_valid_plans(client, repo)
            assert partition(memoized) == partition(baseline)

    def test_pruned_invalid_plans_carry_the_failing_check(self):
        repo = figure2.repository()
        result = find_valid_plans(figure2.client_2(), repo,
                                  location=figure2.LOC_CLIENT_2)
        for analysis in result.invalid_plans:
            if analysis.security.skipped:
                assert any(not check.compliant
                           for check in analysis.compliance)

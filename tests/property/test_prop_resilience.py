"""Property-based checks of the resilience layer.

Four families, straight from the subsystem's contract:

* **recovery safety** — whatever seeded fault plan is thrown at a
  verified module, the supervised run never produces an invalid
  history, never reports a security violation (the plans are valid),
  and always ends diagnosed;
* **rollback prefix-validity** — with checkpoint rollback enabled,
  every recorded history (and every *prefix* of it: rewinds truncate
  traces, so the prefix property is precisely the rollback invariant)
  stays valid, across sampled fault plans;
* **engine agreement** — on random contract pairs the four ordinary
  compliance engines return one verdict, the two reversible deciders
  return one verdict, and ordinary compliance implies reversible
  compliance (Doom lfp soundness);
* **breaker monotonicity** — a circuit breaker only ever moves along
  the legal edges closed→open→half-open→{closed, open}, with
  non-decreasing ticks, no matter the operation sequence.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from benchmarks.workloads import (branchy_client, branchy_worker,
                                  chain_client, pumping_client,
                                  recursive_ticker, worker_pool)
from repro.analysis.verification import verify_network
from repro.core.compliance import check_compliance
from repro.core.reversible import check_reversible
from repro.core.validity import History, is_valid
from repro.network.repository import Repository
from repro.resilience.faults import module_requests, sample_fault_plan
from repro.resilience.supervisor import (BREAKER_EDGES, CircuitBreaker,
                                         Supervisor)
from tests.strategies import contracts


def supervised_run(clients, repository, seed,
                   kinds=("crash", "drop", "stall")):
    verdict = verify_network(clients, repository)
    assert verdict.verified
    fault_plan = sample_fault_plan(seed, repository,
                                   requests=module_requests(clients,
                                                            repository),
                                   kinds=kinds)
    supervisor = Supervisor(clients, verdict.plan_vector(), repository,
                            fault_plan=fault_plan, seed=seed,
                            max_steps=300)
    return supervisor.run()


def assert_invariant(result):
    assert result.status != "security-violation"
    assert result.diagnosed
    assert all(is_valid(history) for history in result.histories)
    for transitions in result.breakers.values():
        ticks = [tick for _s, _t, tick in transitions]
        assert ticks == sorted(ticks)
        for source, target, _tick in transitions:
            assert (source, target) in BREAKER_EDGES


class TestRecoveryNeverInvalidatesHistories:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2 ** 32 - 1),
           requests=st.integers(min_value=1, max_value=3),
           workers=st.integers(min_value=2, max_value=4))
    def test_worker_pool_under_random_faults(self, seed, requests,
                                             workers):
        clients = {"lc": chain_client(requests)}
        assert_invariant(supervised_run(clients, worker_pool(workers),
                                        seed))

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2 ** 32 - 1),
           rounds=st.integers(min_value=1, max_value=3))
    def test_policied_pumping_client_under_random_faults(self, seed,
                                                         rounds):
        clients = {"lc": pumping_client(rounds)}
        repository = Repository({"tick": recursive_ticker()})
        assert_invariant(supervised_run(clients, repository, seed))

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2 ** 32 - 1))
    def test_byzantine_faults_cannot_break_validity(self, seed):
        clients = {"lc": chain_client(2)}
        assert_invariant(supervised_run(
            clients, worker_pool(3), seed,
            kinds=("crash", "byzantine")))


class TestRollbackPrefixValidity:
    """The reversible-session invariant under chaos: rewinds only ever
    truncate traces, so recorded histories — and every prefix of them —
    stay valid with rollback enabled."""

    @staticmethod
    def assert_prefix_valid(result):
        assert_invariant(result)
        for history in result.histories:
            labels = tuple(history)
            for cut in range(len(labels) + 1):
                assert is_valid(History(labels[:cut]))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2 ** 32 - 1),
           workers=st.integers(min_value=1, max_value=3))
    def test_branchy_module_under_random_drops(self, seed, workers):
        clients = {"lc": branchy_client()}
        repository = Repository({f"w{i}": branchy_worker()
                                 for i in range(workers)})
        verdict = verify_network(clients, repository)
        assert verdict.verified
        fault_plan = sample_fault_plan(
            seed, repository,
            requests=module_requests(clients, repository),
            kinds=("drop",))
        result = Supervisor(clients, verdict.plan_vector(), repository,
                            fault_plan=fault_plan, rollback=True,
                            seed=seed, max_steps=300).run()
        self.assert_prefix_valid(result)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2 ** 32 - 1),
           requests=st.integers(min_value=1, max_value=3))
    def test_worker_pool_with_rollback_under_mixed_faults(self, seed,
                                                          requests):
        clients = {"lc": chain_client(requests)}
        repository = worker_pool(3)
        verdict = verify_network(clients, repository)
        assert verdict.verified
        fault_plan = sample_fault_plan(
            seed, repository,
            requests=module_requests(clients, repository))
        result = Supervisor(clients, verdict.plan_vector(), repository,
                            fault_plan=fault_plan, rollback=True,
                            seed=seed, max_steps=300).run()
        self.assert_prefix_valid(result)


class TestEngineAgreement:
    """One verdict across all compliance engines, and the lfp-soundness
    implication: ordinarily compliant pairs are reversibly compliant."""

    ENGINES = ("onthefly", "eager", "gfp", "compiled")

    @settings(max_examples=40, deadline=None)
    @given(client=contracts(max_depth=3), server=contracts(max_depth=3))
    def test_ordinary_engines_agree_and_imply_reversible(self, client,
                                                         server):
        verdicts = {engine: check_compliance(client, server,
                                             engine=engine).compliant
                    for engine in self.ENGINES}
        assert len(set(verdicts.values())) == 1, verdicts
        interpreted = check_reversible(client, server,
                                       engine="interpreted")
        compiled = check_reversible(client, server, engine="compiled")
        assert interpreted == compiled
        if verdicts["onthefly"]:
            assert interpreted.compliant
        if not interpreted.compliant:
            assert interpreted.witness.replays()


#: One breaker operation: (op, tick-advance).
breaker_ops = st.lists(
    st.tuples(st.sampled_from(("allows", "failure", "success")),
              st.integers(min_value=0, max_value=4)),
    min_size=1, max_size=30)


class TestBreakerMonotonicity:
    @settings(max_examples=100, deadline=None)
    @given(ops=breaker_ops,
           threshold=st.integers(min_value=1, max_value=3),
           cooldown=st.integers(min_value=1, max_value=5))
    def test_transitions_follow_legal_edges(self, ops, threshold,
                                            cooldown):
        breaker = CircuitBreaker(failure_threshold=threshold,
                                 cooldown=cooldown)
        now = 0
        for op, advance in ops:
            now += advance
            if op == "allows":
                breaker.allows(now)
            elif op == "failure":
                breaker.record_failure(now)
            else:
                breaker.record_success(now)
        ticks = [tick for _s, _t, tick in breaker.transitions]
        assert ticks == sorted(ticks)
        for source, target, _tick in breaker.transitions:
            assert (source, target) in BREAKER_EDGES
        # Consecutive transitions chain: each leaves the state the
        # previous one entered.
        for before, after in zip(breaker.transitions,
                                 breaker.transitions[1:]):
            assert before[1] == after[0]

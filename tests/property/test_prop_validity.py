"""Property-based checks of the validity machinery.

The incremental :class:`ValidityMonitor` must agree with the declarative
prefix-quantified definition on arbitrary histories, and the policy
runner must agree with eager witness enumeration.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.actions import Event, FrameOpen
from repro.core.validity import (History, ValidityMonitor,
                                 first_invalid_prefix, is_valid)
from repro.policies.usage_automata import PolicyRunner, assignments

from tests.strategies import events, histories, policies


@settings(max_examples=200, deadline=None)
@given(history=histories())
def test_monitor_agrees_with_declarative_definition(history):
    monitor = ValidityMonitor()
    prefix = History()
    for label in history:
        prefix = prefix.append(label)
        monitor.extend(label)
        assert monitor.valid == is_valid(prefix), str(prefix)


@settings(max_examples=200, deadline=None)
@given(history=histories())
def test_can_extend_predicts_extend(history):
    monitor = ValidityMonitor()
    for label in history:
        if not monitor.valid:
            break
        predicted = monitor.can_extend(label)
        actual = monitor.extend(label)
        assert predicted == actual


@settings(max_examples=100, deadline=None)
@given(history=histories())
def test_first_invalid_prefix_is_minimal_and_invalid(history):
    prefix = first_invalid_prefix(history)
    if prefix is None:
        assert is_valid(history)
        return
    assert not is_valid(prefix)
    assert is_valid(History(prefix[:-1]))


@settings(max_examples=100, deadline=None)
@given(history=histories())
def test_validity_is_prefix_closed(history):
    """A valid history has only valid prefixes (safety)."""
    if not is_valid(history):
        return
    for prefix in History(history).prefixes():
        assert is_valid(prefix)


@settings(max_examples=150, deadline=None)
@given(policy=policies(),
       trace=st.lists(events(), max_size=8))
def test_runner_agrees_with_eager_witness_enumeration(policy, trace):
    """The incremental witness-forking runner equals the textbook
    'exists an assignment σ whose concrete run accepts' semantics."""
    runner = PolicyRunner(policy)
    for item in trace:
        runner.step(item)
    incremental = runner.in_violation

    automaton = policy.automaton
    universe = {param for item in trace for param in item.params}
    eager = False
    for sigma in assignments(automaton.variables, universe):
        env = {**policy.environment(), **sigma}
        states = frozenset({automaton.initial})
        for item in trace:
            states = frozenset().union(
                *(automaton.step_concrete(s, item, env) for s in states))
        if states & automaton.offending:
            eager = True
            break
    assert incremental == eager


@settings(max_examples=150, deadline=None)
@given(policy=policies(), trace=st.lists(events(), max_size=8))
def test_violation_is_monotone(policy, trace):
    """Once violated, always violated (offending states are absorbing)."""
    runner = PolicyRunner(policy)
    violated = False
    for item in trace:
        runner.step(item)
        if violated:
            assert runner.in_violation
        violated = runner.in_violation


@settings(max_examples=100, deadline=None)
@given(policy=policies(), trace=st.lists(events(), max_size=6))
def test_monitor_copy_is_behaviourally_identical(policy, trace):
    monitor = ValidityMonitor([FrameOpen(policy)])
    for item in trace[:len(trace) // 2]:
        monitor.extend(item)
    clone = monitor.copy()
    for item in trace[len(trace) // 2:]:
        assert monitor.extend(item) == clone.extend(item)
    assert monitor.valid == clone.valid

"""Property-based checks of the network semantics and — the strongest
test in the suite — randomized agreement between the modular static
analysis and the exhaustive exploration oracle.

Random scenarios are built from a random client protocol: the service is
the protocol's dual, optionally mutated (dropping an input branch makes
it non-compliant; injecting policed events makes it a security risk),
and wrapped in a request carrying a random policy.  Whatever the
mutation cocktail produces, the two deciders must agree.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.planner import analyze_plan
from repro.core.duality import dual
from repro.core.plans import Plan
from repro.core.syntax import (EPSILON, EventNode, ExternalChoice,
                               HistoryExpression, InternalChoice, Mu,
                               Request, seq)
from repro.core.validity import is_valid
from repro.network.config import Component, Configuration
from repro.network.explorer import plan_is_valid_exhaustive
from repro.network.repository import Repository
from repro.network.semantics import network_transitions
from repro.network.simulator import Simulator

from tests.strategies import contracts, events, policies


def _inject_events(term: HistoryExpression, names,
                   draw_bool) -> HistoryExpression:
    """Sprinkle events into a contract (after each prefix, maybe)."""
    if isinstance(term, ExternalChoice):
        return ExternalChoice(tuple(
            (label, _maybe_prefix_event(
                _inject_events(cont, names, draw_bool), names, draw_bool))
            for label, cont in term.branches))
    if isinstance(term, InternalChoice):
        return InternalChoice(tuple(
            (label, _maybe_prefix_event(
                _inject_events(cont, names, draw_bool), names, draw_bool))
            for label, cont in term.branches))
    if isinstance(term, Mu):
        return Mu(term.var, _inject_events(term.body, names, draw_bool))
    return term


def _maybe_prefix_event(term, names, draw_bool):
    if draw_bool():
        return seq(EventNode(names()), term)
    return term


@st.composite
def scenarios(draw, recursion: bool = True):
    """(client, plan, repository) with controlled compliance/security
    defects.

    ``recursion=False`` keeps the oracle's state space finite even with
    injected events (histories grow without bound inside event-firing
    loops)."""
    protocol = draw(contracts(max_depth=3, recursion=recursion))
    policy = draw(policies() | st.none())
    client = Request("r", policy, protocol)

    server = dual(protocol)
    # Mutation 1: maybe drop one branch of some external choice of the
    # server (can break compliance).
    if draw(st.booleans()):
        server = _drop_first_droppable_branch(server)
    # Mutation 2: sprinkle events into the server (can break security).
    event_pool = draw(st.lists(events(), min_size=1, max_size=3))

    def pick_event():
        return draw(st.sampled_from(event_pool))

    def pick_bool():
        return draw(st.booleans())

    server = _inject_events(server, pick_event, pick_bool)
    repository = Repository({"srv": server}, validate=False)
    return client, Plan.single("r", "srv"), repository


def _drop_first_droppable_branch(term: HistoryExpression
                                 ) -> HistoryExpression:
    if isinstance(term, ExternalChoice) and len(term.branches) > 1:
        return ExternalChoice(term.branches[1:])
    if isinstance(term, (ExternalChoice, InternalChoice)):
        branches = tuple(
            (label, _drop_first_droppable_branch(cont))
            for label, cont in term.branches)
        return type(term)(branches)
    if isinstance(term, Mu):
        return Mu(term.var, _drop_first_droppable_branch(term.body))
    return term


@settings(max_examples=50, deadline=None)
@given(scenario=scenarios(recursion=False))
def test_static_analysis_agrees_with_oracle(scenario):
    client, plan, repository = scenario
    static = analyze_plan(client, plan, repository).valid
    config = Configuration.of(Component.client("c", client))
    oracle = plan_is_valid_exhaustive(config, plan, repository,
                                      max_configurations=20_000)
    assert static == oracle


@settings(max_examples=60, deadline=None)
@given(scenario=scenarios(), seed=st.integers(0, 2**16))
def test_monitored_runs_keep_histories_valid(scenario, seed):
    client, plan, repository = scenario
    config = Configuration.of(Component.client("c", client))
    simulator = Simulator(config, plan, repository, monitored=True,
                          seed=seed)
    for _ in range(60):
        if simulator.step_random() is None:
            break
        assert simulator.all_histories_valid()


@settings(max_examples=60, deadline=None)
@given(scenario=scenarios(), seed=st.integers(0, 2**16))
def test_histories_are_prefixes_of_balanced(scenario, seed):
    client, plan, repository = scenario
    config = Configuration.of(Component.client("c", client))
    simulator = Simulator(config, plan, repository, monitored=False,
                          seed=seed)
    for _ in range(60):
        if simulator.step_random() is None:
            break
        for history in simulator.histories():
            assert history.is_prefix_of_balanced()


@settings(max_examples=40, deadline=None)
@given(scenario=scenarios(), seed=st.integers(0, 2**16))
def test_successful_termination_balances_histories(scenario, seed):
    client, plan, repository = scenario
    config = Configuration.of(Component.client("c", client))
    simulator = Simulator(config, plan, repository, monitored=False,
                          seed=seed)
    simulator.run(max_steps=300)
    if simulator.is_terminated():
        for history in simulator.histories():
            assert history.is_balanced()


@settings(max_examples=40, deadline=None)
@given(scenario=scenarios())
def test_transitions_never_invalidate_silently_in_monitored_mode(scenario):
    client, plan, repository = scenario
    config = Configuration.of(Component.client("c", client))
    for transition in network_transitions(config, plan, repository,
                                          enforce_validity=True):
        moved = transition.successor.components[transition.component]
        assert is_valid(moved.history)

"""Property-based machine checks of Theorem 1 and Theorem 2.

Theorem 1: ``H1 ⊢ H2`` (Definition 4, coinductive) iff
``L(H1 ⊗ H2) = ∅`` (Definition 5 product emptiness).  The two deciders
are implemented independently; hypothesis hammers them with random
contracts.
"""

from hypothesis import given, settings

from repro.core.compliance import (check_compliance, compliant,
                                   compliant_coinductive)
from repro.contracts.contract import Contract
from repro.contracts.product import build_product
from repro.core.semantics import is_terminated

from tests.strategies import contracts


@settings(max_examples=200, deadline=None)
@given(client=contracts(), server=contracts())
def test_theorem1_deciders_agree(client, server):
    assert compliant(client, server) == \
        compliant_coinductive(client, server)


@settings(max_examples=100, deadline=None)
@given(client=contracts(), server=contracts())
def test_theorem2_compliance_is_an_invariant(client, server):
    """Reachable-state-wise checking of the invariant Φ equals language
    emptiness — no temporal context needed (Theorem 2)."""
    product = build_product(Contract(client), Contract(server))
    reachable = product.lts.reachable_from(product.initial)
    invariant = not any(product.violates_invariant(state)
                        for state in reachable)
    assert invariant == product.language_is_empty()


@settings(max_examples=100, deadline=None)
@given(client=contracts(), server=contracts())
def test_compliance_preserved_by_synchronisation(client, server):
    """Property (2) of Definition 4: a compliant pair stays compliant
    after any synchronisation step of the product."""
    if not compliant(client, server):
        return
    product = build_product(Contract(client), Contract(server))
    for state in product.lts.reachable_from(product.initial):
        h1, h2 = state
        assert compliant_coinductive(Contract(h1, already_projected=True),
                                     Contract(h2, already_projected=True))


@settings(max_examples=100, deadline=None)
@given(server=contracts())
def test_epsilon_is_universally_compliant_client(server):
    """ε ⊢ H for every H: a client with nothing left to do never gets
    stuck."""
    from repro.core.syntax import EPSILON
    assert compliant(EPSILON, server)


@settings(max_examples=100, deadline=None)
@given(client=contracts(), server=contracts())
def test_counterexample_is_a_real_stuck_state(client, server):
    """When compliance fails, the reported witness is final and reachable
    by synchronisations from the initial pair."""
    result = check_compliance(client, server)
    if result.compliant:
        return
    assert result.witness is not None and result.trace is not None
    assert result.trace[-1] == result.witness
    h1, _ = result.witness
    assert not is_terminated(h1)  # Def. 5 excludes ⟨ε, H2⟩ from F


@settings(max_examples=200, deadline=None)
@given(contract=contracts())
def test_every_contract_complies_with_its_dual(contract):
    """H ⊢ H^⊥ — dualisation always yields a compliant partner."""
    from repro.core.duality import dual
    assert compliant(contract, dual(contract))


@settings(max_examples=100, deadline=None)
@given(smaller=contracts(max_depth=3), larger=contracts(max_depth=3),
       client=contracts(max_depth=3))
def test_subcontract_soundness(smaller, larger, client):
    """H1 ⊑ H2 implies every compliant client of H1 complies with H2."""
    from repro.contracts.subcontract import subcontract
    if subcontract(smaller, larger) and compliant(client, smaller):
        assert compliant(client, larger)


@settings(max_examples=100, deadline=None)
@given(contract=contracts(max_depth=3))
def test_subcontract_is_reflexive(contract):
    from repro.contracts.subcontract import subcontract
    assert subcontract(contract, contract)


@settings(max_examples=60, deadline=None)
@given(a=contracts(max_depth=2), b=contracts(max_depth=2),
       c=contracts(max_depth=2))
def test_subcontract_is_transitive(a, b, c):
    from repro.contracts.subcontract import subcontract
    if subcontract(a, b) and subcontract(b, c):
        assert subcontract(a, c)

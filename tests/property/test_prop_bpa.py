"""Property-based checks of the BPA pipeline.

* the HE → BPA translation is strongly bisimilar to the source;
* the framing regularisation bounds same-policy nesting at 1 and
  preserves the validity verdict;
* the BPA model checker agrees with trace enumeration.
"""

from hypothesis import given, settings

from repro.core.actions import is_history_label
from repro.core.semantics import step, traces
from repro.core.validity import History, is_valid
from repro.contracts.lts import bisimilar, build_lts
from repro.bpa.modelcheck import check_validity_bpa
from repro.bpa.regularize import max_framing_depth, regularize
from repro.bpa.translate import to_bpa

from tests.strategies import history_expressions


def declarative_valid(term, cap=12):
    for trace in traces(term, max_length=cap):
        history = History([l for l in trace if is_history_label(l)])
        if not is_valid(history):
            return False
    return True


@settings(max_examples=150, deadline=None)
@given(term=history_expressions())
def test_translation_is_bisimilar(term):
    assert bisimilar(build_lts(term, step), to_bpa(term).lts())


@settings(max_examples=200, deadline=None)
@given(term=history_expressions())
def test_regularize_bounds_nesting(term):
    assert max_framing_depth(regularize(term)) <= 1


@settings(max_examples=200, deadline=None)
@given(term=history_expressions())
def test_regularize_is_idempotent(term):
    once = regularize(term)
    assert regularize(once) == once


def _is_dag(lts):
    return not any(state in lts.reachable_from(target)
                   for state in lts.states
                   for _, target in lts.transitions[state])


@settings(max_examples=100, deadline=None)
@given(term=history_expressions(max_depth=3))
def test_modelchecker_agrees_with_trace_enumeration(term):
    # Restrict to terms whose LTS is a DAG so a finite trace cap covers
    # every history exactly (recursive terms would be approximated).
    lts = build_lts(term, step)
    if not _is_dag(lts):
        return
    assert check_validity_bpa(term).valid == \
        declarative_valid(term, cap=len(lts) + 1)


@settings(max_examples=100, deadline=None)
@given(term=history_expressions(max_depth=3))
def test_regularize_preserves_validity_verdict(term):
    """Ground-truth check that the rewrite does not change validity
    (the BPA checker regularises internally, so compare via the
    *declarative* checker on enumerated traces)."""
    lts = build_lts(term, step)
    if not _is_dag(lts):
        return
    cap = len(lts) + len(build_lts(regularize(term), step)) + 1
    assert (declarative_valid(term, cap=cap)
            == declarative_valid(regularize(term), cap=cap))

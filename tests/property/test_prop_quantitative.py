"""Property-based checks of the quantitative extension."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.actions import Event
from repro.core.semantics import step, traces
from repro.contracts.lts import build_lts
from repro.quantitative.costs import (CostModel, UNBOUNDED, trace_cost,
                                      worst_case_cost)
from repro.quantitative.policies import budget_policy

from tests.strategies import EVENT_NAMES, history_expressions

MODEL = CostModel.of({"read": 2, "write": 5, "open": 1})


def _is_dag(lts):
    return not any(state in lts.reachable_from(target)
                   for state in lts.states
                   for _, target in lts.transitions[state])


@settings(max_examples=120, deadline=None)
@given(term=history_expressions(max_depth=3))
def test_worst_case_cost_matches_trace_enumeration_on_dags(term):
    lts = build_lts(term, step)
    if not _is_dag(lts):
        return
    computed = worst_case_cost(MODEL, lts)
    assert computed != UNBOUNDED
    best = 0.0
    for trace in traces(term, max_length=len(lts) + 1):
        events = [label for label in trace if isinstance(label, Event)]
        best = max(best, trace_cost(MODEL, events))
    assert computed == best


@settings(max_examples=120, deadline=None)
@given(term=history_expressions(max_depth=3))
def test_worst_case_cost_is_monotone_in_the_model(term):
    """Raising every weight never lowers the worst case."""
    lts = build_lts(term, step)
    cheap = worst_case_cost(CostModel.of({"read": 1}), lts)
    dear = worst_case_cost(CostModel.of({"read": 2, "write": 1}), lts)
    assert dear >= cheap


@settings(max_examples=150, deadline=None)
@given(counts=st.lists(st.sampled_from(EVENT_NAMES), max_size=10),
       budget=st.integers(0, 8))
def test_budget_policy_agrees_with_arithmetic(counts, budget):
    """The compiled counting automaton accepts exactly the traces whose
    arithmetic cost exceeds the budget."""
    weights = {"read": 1, "write": 2}
    policy = budget_policy("cap", weights, budget)
    trace = [Event(name) for name in counts]
    spent = sum(weights.get(name, 0) for name in counts)
    assert policy.accepts(trace) == (spent > budget)


@settings(max_examples=100, deadline=None)
@given(counts=st.lists(st.sampled_from(("read", "write")), max_size=8),
       budget=st.integers(0, 6))
def test_budget_violation_is_prefix_monotone(counts, budget):
    policy = budget_policy("cap", {"read": 1, "write": 2}, budget)
    runner = policy.runner()
    violated = False
    for name in counts:
        runner.step(Event(name))
        if violated:
            assert runner.in_violation
        violated = runner.in_violation

"""Property-based round-trip tests for the surface language."""

from hypothesis import given, settings

from repro.core.syntax import policies_of
from repro.lang.parser import parse
from repro.lang.pretty import pretty

from tests.strategies import contracts, history_expressions


def roundtrip(term):
    names = {policy: f"p{i}"
             for i, policy in enumerate(sorted(policies_of(term), key=str))}
    env = {name: policy for policy, name in names.items()}
    rendered = pretty(term, names)
    return parse(rendered, policies=env)


@settings(max_examples=250, deadline=None)
@given(term=contracts())
def test_contracts_round_trip(term):
    assert roundtrip(term) == term


@settings(max_examples=250, deadline=None)
@given(term=history_expressions())
def test_full_expressions_round_trip(term):
    assert roundtrip(term) == term


@settings(max_examples=100, deadline=None)
@given(term=history_expressions())
def test_pretty_is_deterministic(term):
    assert pretty(term) == pretty(term)

"""Property-based checks of the AST machinery: the structural congruence,
substitution, projection idempotence, and well-formedness generation."""

from hypothesis import given, settings

from repro.core.projection import project
from repro.core.semantics import step
from repro.core.syntax import (EPSILON, free_variables, is_closed, seq)
from repro.core.wellformed import is_well_formed
from repro.contracts.lts import bisimilar, build_lts

from tests.strategies import contracts, history_expressions


@settings(max_examples=200, deadline=None)
@given(a=history_expressions(), b=history_expressions(),
       c=history_expressions())
def test_seq_is_associative_up_to_representation(a, b, c):
    assert seq(seq(a, b), c) == seq(a, seq(b, c))


@settings(max_examples=200, deadline=None)
@given(term=history_expressions())
def test_epsilon_is_a_unit(term):
    assert seq(EPSILON, term) == term
    assert seq(term, EPSILON) == term


@settings(max_examples=200, deadline=None)
@given(term=history_expressions())
def test_generated_terms_are_well_formed_and_closed(term):
    assert is_closed(term)
    assert is_well_formed(term)


@settings(max_examples=200, deadline=None)
@given(term=contracts())
def test_generated_contracts_are_well_formed(term):
    assert is_well_formed(term)


@settings(max_examples=200, deadline=None)
@given(term=history_expressions())
def test_projection_is_idempotent(term):
    once = project(term)
    assert project(once) == once


@settings(max_examples=200, deadline=None)
@given(term=history_expressions())
def test_projection_preserves_closedness(term):
    assert not free_variables(project(term))


@settings(max_examples=100, deadline=None)
@given(term=contracts())
def test_projection_is_identity_on_contracts_up_to_behaviour(term):
    """Contracts contain nothing to erase: projecting them changes at most
    degenerate recursion, never behaviour."""
    assert bisimilar(build_lts(term, step), build_lts(project(term), step))


@settings(max_examples=150, deadline=None)
@given(term=history_expressions())
def test_transition_systems_are_finite(term):
    lts = build_lts(term, step, max_states=50_000)
    assert len(lts) >= 1


@settings(max_examples=150, deadline=None)
@given(term=history_expressions())
def test_steps_preserve_closedness(term):
    for _, successor in step(term):
        assert is_closed(successor)

"""Unit tests for the signature-indexed contract registry."""

import random
from pathlib import Path

import pytest

from repro.cli import load_module
from repro.core.actions import Receive, Send
from repro.core.errors import ReproError
from repro.core.syntax import (EPSILON, ExternalChoice, InternalChoice, Mu,
                               Seq, Var, external, internal, mu, receive,
                               send)
from repro.registry import (ContractRegistry, load_registry,
                            registry_from_json, registry_to_json,
                            save_registry)

EXAMPLES = Path(__file__).parents[2] / "examples"

CHANNELS = "abcdef"


def random_contract(rng, depth):
    if depth == 0:
        return EPSILON
    kind = rng.randrange(4)
    chans = rng.sample(CHANNELS, rng.randint(1, 3))
    if kind == 0:
        return internal(*((c, random_contract(rng, depth - 1))
                          for c in chans))
    if kind == 1:
        return external(*((c, random_contract(rng, depth - 1))
                          for c in chans))
    if kind == 2:
        return mu("h", internal((chans[0],
                                 random_contract(rng, depth - 1))))
    return Seq(random_contract(rng, depth - 1),
               random_contract(rng, depth - 1))


def dual(term):
    if isinstance(term, (type(EPSILON), Var)):
        return term
    if isinstance(term, Seq):
        return Seq(dual(term.first), dual(term.second))
    if isinstance(term, Mu):
        return Mu(term.var, dual(term.body))
    flipped = tuple(
        (Receive(label.channel) if isinstance(label, Send)
         else Send(label.channel), dual(cont))
        for label, cont in term.branches)
    if isinstance(term, ExternalChoice):
        return InternalChoice(flipped)
    return ExternalChoice(flipped)


@pytest.fixture()
def hotel_registry():
    module = load_module(str(EXAMPLES / "hotel_booking.sus"))
    registry = ContractRegistry()
    for name, term in module.services.items():
        registry.add(name, term)
    return registry


class TestPopulation:
    def test_add_and_lookup(self, hotel_registry):
        assert len(hotel_registry) == 5
        assert "ls1" in hotel_registry
        entry = hotel_registry.entry("ls1")
        assert entry.fingerprint == hotel_registry.entry("ls3").fingerprint
        with pytest.raises(ReproError):
            hotel_registry.entry("nope")

    def test_duplicate_groups(self, hotel_registry):
        assert hotel_registry.duplicate_groups() == (("ls1", "ls3", "ls4"),)

    def test_stats_shape(self, hotel_registry):
        stats = hotel_registry.stats()
        assert stats["entries"] == 5
        assert stats["canonical_classes"] == 3
        assert stats["duplicate_groups"] == 1
        assert 0 < stats["dedup_ratio"] < 1

    def test_update_moves_buckets_and_remove_drops(self, hotel_registry):
        before = hotel_registry.bucket_count
        hotel_registry.update("ls2", hotel_registry.entry("ls1").term)
        assert hotel_registry.entry("ls2").fingerprint == \
            hotel_registry.entry("ls1").fingerprint
        assert hotel_registry.bucket_count <= before
        hotel_registry.remove("ls2")
        assert "ls2" not in hotel_registry
        with pytest.raises(ReproError):
            hotel_registry.remove("ls2")


class TestQueries:
    def test_find_compliant_on_hotel(self, hotel_registry):
        client = internal(("IdC", external(("Bok", EPSILON),
                                           ("UnA", EPSILON))))
        result = hotel_registry.find_compliant(client)
        # ls2 may emit !Del, which this client never accepts.
        assert result.matches == ("ls1", "ls3", "ls4")
        # ls1/ls3/ls4 share one fingerprint: at most two real checks.
        assert result.product_checks <= 2
        assert result.dedup_hits >= 2

    def test_find_substitutable_on_hotel(self, hotel_registry):
        ls1 = hotel_registry.entry("ls1").term
        result = hotel_registry.find_substitutable(ls1)
        assert set(result.matches) >= {"ls1", "ls3", "ls4"}
        assert result.pruned >= 1  # lbr's bucket can't match ?IdC

    def test_verdict_memo_suppresses_repeat_checks(self, hotel_registry):
        client = internal(("IdC", external(("Bok", EPSILON),
                                           ("UnA", EPSILON))))
        first = hotel_registry.find_compliant(client)
        second = hotel_registry.find_compliant(client)
        assert second.matches == first.matches
        assert second.product_checks == 0

    def test_update_changes_answers(self, hotel_registry):
        client = internal(("IdC", external(("Bok", EPSILON),
                                           ("UnA", EPSILON))))
        # ls2's !Del branch makes it non-compliant with this client;
        # re-registering it under ls1's contract flips the answer.
        assert "ls2" not in hotel_registry.find_compliant(client).matches
        hotel_registry.update("ls2", hotel_registry.entry("ls1").term)
        result = hotel_registry.find_compliant(client)
        assert result.matches == ("ls1", "ls2", "ls3", "ls4")
        # The updated entry joins ls1's fingerprint group: no fresh
        # product check was needed to recertify it.
        assert result.product_checks == 0

    def test_queries_match_exhaustive_baseline(self):
        rng = random.Random(0x5E77)
        registry = ContractRegistry()
        members = []
        for index in range(120):
            term = random_contract(rng, rng.randint(1, 4))
            registry.add(f"svc{index:03d}", term)
            members.append(term)
        for round_no in range(12):
            query = (dual(members[rng.randrange(len(members))])
                     if round_no % 2 == 0
                     else random_contract(rng, rng.randint(1, 3)))
            fast = registry.find_compliant(query)
            assert fast.matches == registry.exhaustive_compliant(query)
            advert = (members[rng.randrange(len(members))]
                      if round_no % 2 == 0
                      else random_contract(rng, rng.randint(1, 3)))
            sub = registry.find_substitutable(advert)
            assert sub.matches == registry.exhaustive_substitutable(advert)

    def test_pruning_actually_prunes(self):
        rng = random.Random(0xBEEF)
        registry = ContractRegistry()
        for index in range(150):
            registry.add(f"svc{index:03d}",
                         random_contract(rng, rng.randint(1, 4)))
        query = dual(registry.entry("svc000").term)
        result = registry.find_compliant(query)
        assert result.total == 150
        assert result.product_checks < result.total
        assert result.pruning_ratio > 0.5
        assert result.to_json()["pruning_ratio"] == result.pruning_ratio


class TestPersistence:
    def test_round_trip(self, hotel_registry, tmp_path):
        path = tmp_path / "registry.json"
        save_registry(hotel_registry, path)
        loaded = load_registry(path)
        assert loaded.names() == hotel_registry.names()
        for name in loaded.names():
            assert loaded.entry(name).fingerprint == \
                hotel_registry.entry(name).fingerprint
        client = internal(("IdC", external(("Bok", EPSILON),
                                           ("UnA", EPSILON))))
        assert loaded.find_compliant(client).matches == \
            hotel_registry.find_compliant(client).matches

    def test_round_trip_survives_cache_flush(self, hotel_registry,
                                             tmp_path):
        from repro.contracts.contract import clear_contract_caches
        path = tmp_path / "registry.json"
        save_registry(hotel_registry, path)
        clear_contract_caches()
        loaded = load_registry(path)  # fingerprints recomputed + checked
        assert loaded.duplicate_groups() == (("ls1", "ls3", "ls4"),)

    def test_bad_schema_rejected(self):
        with pytest.raises(ReproError, match="schema"):
            registry_from_json({"schema": "nope.v9", "entries": []})

    def test_fingerprint_mismatch_rejected(self, hotel_registry):
        document = registry_to_json(hotel_registry)
        document["entries"][0]["fingerprint"] = "0" * 64
        with pytest.raises(ReproError, match="fingerprint mismatch"):
            registry_from_json(document)

    def test_missing_file_is_a_repro_error(self, tmp_path):
        with pytest.raises(ReproError, match="not found"):
            load_registry(tmp_path / "ghost.json")

"""Tests for configurations, session trees and the Φ function."""

from repro.core.actions import FrameClose
from repro.core.syntax import (EPSILON, FrameClosePending, event, seq, send)
from repro.core.validity import History
from repro.network.config import (Component, Configuration, Leaf,
                                  SessionNode, is_successfully_terminated,
                                  leaves, locations, pending_frame_closes,
                                  session_depth)
from repro.policies.library import forbid

PHI = forbid("a")
PSI = forbid("b")


class TestTrees:
    def test_leaf_basics(self):
        leaf = Leaf("loc", EPSILON)
        assert list(leaves(leaf)) == [leaf]
        assert locations(leaf) == ("loc",)
        assert session_depth(leaf) == 0

    def test_nested_session_shape(self):
        tree = SessionNode(Leaf("c", EPSILON),
                           SessionNode(Leaf("br", EPSILON),
                                       Leaf("s3", EPSILON)))
        assert locations(tree) == ("c", "br", "s3")
        assert session_depth(tree) == 2

    def test_termination_requires_bare_epsilon_leaf(self):
        assert is_successfully_terminated(Leaf("x", EPSILON))
        assert not is_successfully_terminated(Leaf("x", send("a")))
        assert not is_successfully_terminated(
            SessionNode(Leaf("x", EPSILON), Leaf("y", EPSILON)))


class TestPhi:
    """Φ collects the pending Mφ of a discarded service (rule Close)."""

    def test_phi_of_plain_terms_is_empty(self):
        assert pending_frame_closes(EPSILON) == ()
        assert pending_frame_closes(send("a")) == ()
        assert pending_frame_closes(event("e")) == ()

    def test_phi_of_single_pending_close(self):
        assert pending_frame_closes(FrameClosePending(PHI)) == \
            (FrameClose(PHI),)

    def test_phi_walks_sequences_in_order(self):
        term = seq(event("e"), FrameClosePending(PHI),
                   send("a"), FrameClosePending(PSI))
        assert pending_frame_closes(term) == (FrameClose(PHI),
                                              FrameClose(PSI))

    def test_phi_ignores_unentered_framings(self):
        from repro.core.syntax import Framing
        # φ[H] has not been entered yet: nothing is pending.
        assert pending_frame_closes(Framing(PHI, event("e"))) == ()


class TestComponentsAndConfigurations:
    def test_client_constructor(self):
        component = Component.client("loc", send("a"))
        assert component.history == History()
        assert component.tree == Leaf("loc", send("a"))
        assert not component.is_terminated()

    def test_configuration_replace_is_functional(self):
        config = Configuration.of(Component.client("a", send("x")),
                                  Component.client("b", send("y")))
        done = Component.client("a", EPSILON)
        updated = config.replace(0, done)
        assert updated[0].is_terminated()
        assert not config[0].is_terminated()
        assert updated[1] == config[1]

    def test_configuration_termination(self):
        config = Configuration.of(Component.client("a", EPSILON),
                                  Component.client("b", EPSILON))
        assert config.is_terminated()

    def test_configurations_are_hashable_states(self):
        config = Configuration.of(Component.client("a", send("x")))
        again = Configuration.of(Component.client("a", send("x")))
        assert len({config, again}) == 1

    def test_str_rendering(self):
        config = Configuration.of(Component.client("a", EPSILON))
        assert "a:" in str(config)
        assert "ε" in str(config)

"""Tests for the exhaustive explorer — the ground-truth plan oracle."""

from repro.core.plans import Plan
from repro.core.syntax import (event, external, internal, receive, request,
                               send, seq)
from repro.network.config import Component, Configuration
from repro.network.explorer import (explore, plan_is_valid_exhaustive)
from repro.network.repository import Repository
from repro.paper import figure2
from repro.policies.library import forbid


def single_client(client, location="me"):
    return Configuration.of(Component.client(location, client))


class TestHappyPath:
    def test_trivial_network(self):
        result = explore(single_client(event("e")), Plan.empty(),
                         Repository())
        assert result.valid
        assert result.terminal_success == 1
        assert result.explored == 2  # before and after the event

    def test_simple_session(self):
        client = request("r", None, seq(send("a"), receive("b")))
        repo = Repository({"srv": seq(receive("a"), send("b"))})
        result = explore(single_client(client), Plan.single("r", "srv"),
                         repo)
        assert result.valid
        assert result.terminal_success == 1


class TestSecurityFlaws:
    def test_reachable_violation_detected(self):
        phi = forbid("boom")
        client = request("r", phi, seq(send("go"), receive("done")))
        repo = Repository({"srv": receive("go", seq(event("boom"),
                                                    send("done")))})
        result = explore(single_client(client), Plan.single("r", "srv"),
                         repo)
        assert not result.secure
        assert not result.valid
        # The offending transition appends the boom event.
        _, transition = result.violations[0]
        assert any(getattr(label, "name", None) == "boom"
                   for label in transition.appends)

    def test_stop_at_first_flaw_short_circuits(self):
        phi = forbid("boom")
        client = request("r", phi, seq(send("go"), receive("done")))
        repo = Repository({"srv": receive("go", seq(event("boom"),
                                                    send("done")))})
        full = explore(single_client(client), Plan.single("r", "srv"), repo)
        quick = explore(single_client(client), Plan.single("r", "srv"),
                        repo, stop_at_first_flaw=True)
        assert quick.explored <= full.explored


class TestComplianceFlaws:
    def test_unhandled_internal_choice_detected(self):
        client = request("r", None,
                         seq(send("q"), external(("ok", seq()))))
        repo = Repository({"srv": receive("q", internal(("ok", seq()),
                                                        ("err", seq())))})
        result = explore(single_client(client), Plan.single("r", "srv"),
                         repo)
        assert result.secure
        assert not result.unfailing
        kinds = {kind for _, _, kind in result.stuck}
        assert kinds == {"communication"}

    def test_angelic_exploration_misses_it(self):
        client = request("r", None,
                         seq(send("q"), external(("ok", seq()))))
        repo = Repository({"srv": receive("q", internal(("ok", seq()),
                                                        ("err", seq())))})
        result = explore(single_client(client), Plan.single("r", "srv"),
                         repo, commit_outputs=False)
        assert result.valid  # exactly why commit_outputs defaults to True

    def test_unserved_request_detected(self):
        client = request("r", None, send("a"))
        result = explore(single_client(client), Plan.empty(), Repository())
        assert not result.unfailing


class TestBounds:
    def test_truncation_reported(self):
        # A two-client network with enough interleavings to overflow a
        # tiny bound.
        config = Configuration.of(
            Component.client("a", seq(event("e1"), event("e2"),
                                      event("e3"))),
            Component.client("b", seq(event("f1"), event("f2"),
                                      event("f3"))))
        result = explore(config, [Plan.empty(), Plan.empty()],
                         Repository(), max_configurations=4)
        assert not result.complete
        assert not result.valid

    def test_summary_mentions_status(self):
        result = explore(single_client(event("e")), Plan.empty(),
                         Repository())
        assert "VALID" in result.summary()


class TestPaperOracle:
    def test_pi1_is_valid(self, repo):
        config = single_client(figure2.client_1(), figure2.LOC_CLIENT_1)
        assert plan_is_valid_exhaustive(config, figure2.plan_pi1(), repo)

    def test_pi2_variants(self, repo):
        config = single_client(figure2.client_2(), figure2.LOC_CLIENT_2)
        assert not plan_is_valid_exhaustive(
            config, figure2.plan_pi2_bad_compliance(), repo)
        assert not plan_is_valid_exhaustive(
            config, figure2.plan_pi2_bad_security(), repo)
        assert plan_is_valid_exhaustive(
            config, figure2.plan_pi2_valid(), repo)

    def test_two_client_network_under_valid_vector(self, repo):
        from repro.core.plans import PlanVector
        config = figure2.initial_configuration()
        plans = PlanVector.of(figure2.plan_pi1(), figure2.plan_pi2_valid())
        result = explore(config, plans, repo)
        assert result.valid
        assert result.terminal_success >= 1

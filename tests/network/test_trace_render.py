"""Tests for the Figure-3-style trace renderer."""

from repro.network.trace_render import (describe_transition, render_run,
                                        render_state, render_trace)
from repro.paper import figure3


class TestRendering:
    def test_figure3_trace_lines(self):
        simulator, fired = figure3.replay()
        text = render_trace(simulator.log)
        lines = text.splitlines()
        assert len(lines) == 13
        assert lines[0].startswith("step   1:")
        assert "open<1," in lines[0]
        assert "τ(Req)" in lines[1]
        assert "@sgn(3)" in lines[4]
        assert "close<3,0>" in lines[9]

    def test_component_annotations_optional(self):
        simulator, _ = figure3.replay()
        with_components = render_trace(simulator.log)
        without = render_trace(simulator.log, show_components=False)
        assert "[component" in with_components
        assert "[component" not in without

    def test_describe_tau_includes_channel(self):
        simulator, fired = figure3.replay()
        tau_steps = [t for t in fired if t.rule == "synch"]
        assert describe_transition(tau_steps[0]) == "τ(Req)"

    def test_render_state_shows_histories(self):
        simulator, _ = figure3.replay()
        state = render_state(simulator)
        assert "[0]" in state and "[1]" in state
        assert "@sgn(3)" in state

    def test_render_run_combines_both(self):
        simulator, _ = figure3.replay()
        text = render_run(simulator)
        assert "final configuration:" in text
        assert "step   1:" in text

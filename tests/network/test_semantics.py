"""Tests for the network operational rules (Open, Close, Session, Net,
Access, Synch) and the demonic commit mode."""

from repro.core.actions import (Event, FrameClose, FrameOpen, TAU)
from repro.core.plans import Plan
from repro.core.syntax import (EPSILON, Framing, event, external, internal,
                               receive, request, send, seq)
from repro.core.validity import History
from repro.network.config import (Component, Configuration, Leaf,
                                  SessionNode)
from repro.network.repository import Repository
from repro.network.semantics import (apply_move, classify_stuckness,
                                     component_moves, network_transitions,
                                     stuck_components, tree_moves)
from repro.policies.library import forbid, never_after

PHI = forbid("boom")


def moves_of(component, plan, repo, **kwargs):
    return list(component_moves(component, plan, repo, **kwargs))


class TestAccessRule:
    def test_event_appends_to_history(self):
        component = Component.client("loc", event("e", 1))
        (move,) = moves_of(component, Plan.empty(), Repository())
        assert move.kind == "access"
        assert move.appends == (Event("e", (1,)),)
        assert apply_move(component, move).history == \
            History([Event("e", (1,))])

    def test_violating_event_is_filtered_angelically(self):
        phi = forbid("boom")
        term = Framing(phi, event("boom"))
        component = Component.client("loc", term)
        # Enter the framing first.
        (enter,) = moves_of(component, Plan.empty(), Repository())
        component = apply_move(component, enter)
        assert moves_of(component, Plan.empty(), Repository()) == []

    def test_violating_event_fires_when_unmonitored(self):
        phi = forbid("boom")
        component = Component.client("loc", Framing(phi, event("boom")))
        (enter,) = moves_of(component, Plan.empty(), Repository())
        component = apply_move(component, enter)
        unfiltered = moves_of(component, Plan.empty(), Repository(),
                              enforce_validity=False)
        assert len(unfiltered) == 1

    def test_frame_open_blocked_by_history_dependence(self):
        phi = never_after("a", "b")
        term = seq(event("a"), event("b"), Framing(phi, event("c")))
        component = Component.client("loc", term)
        repo = Repository()
        for _ in range(2):  # fire a then b (no policy active yet)
            (move,) = moves_of(component, Plan.empty(), repo)
            component = apply_move(component, move)
        # Opening φ now exposes the past violation: angelically blocked.
        assert moves_of(component, Plan.empty(), repo) == []
        assert classify_stuckness(component, Plan.empty(), repo) == \
            "security"


class TestOpenRule:
    def test_open_builds_session_and_logs_framing(self):
        client = request("r", PHI, send("a"))
        repo = Repository({"srv": receive("a")})
        component = Component.client("me", client)
        (move,) = moves_of(component, Plan.single("r", "srv"), repo)
        assert move.kind == "open"
        assert move.appends == (FrameOpen(PHI),)
        assert isinstance(move.tree, SessionNode)
        assert move.tree.right == Leaf("srv", receive("a"))

    def test_open_without_policy_logs_nothing(self):
        client = request("r", None, send("a"))
        repo = Repository({"srv": receive("a")})
        component = Component.client("me", client)
        (move,) = moves_of(component, Plan.single("r", "srv"), repo)
        assert move.appends == ()

    def test_unbound_request_cannot_open(self):
        client = request("r", None, send("a"))
        repo = Repository({"srv": receive("a")})
        component = Component.client("me", client)
        assert moves_of(component, Plan.empty(), repo) == []
        assert classify_stuckness(component, Plan.empty(), repo) == \
            "communication"

    def test_plan_pointing_outside_repository_cannot_open(self):
        client = request("r", None, send("a"))
        component = Component.client("me", client)
        assert moves_of(component, Plan.single("r", "ghost"),
                        Repository()) == []


class TestSynchRule:
    def test_synchronisation_produces_tau(self):
        tree = SessionNode(Leaf("c", send("msg")), Leaf("s", receive("msg")))
        component = Component(History(), tree)
        (move,) = moves_of(component, Plan.empty(), Repository())
        assert move.kind == "synch"
        assert move.label == TAU
        assert move.channel == "msg"
        assert move.appends == ()

    def test_no_synch_across_session_boundary(self):
        # c wants to talk to br, but br is engaged in a nested session.
        inner = SessionNode(Leaf("br", send("x")), Leaf("s", receive("y")))
        tree = SessionNode(Leaf("c", receive("x")), inner)
        component = Component(History(), tree)
        moves = moves_of(component, Plan.empty(), Repository())
        assert all(move.kind != "synch" for move in moves)

    def test_mismatched_channels_do_not_synch(self):
        tree = SessionNode(Leaf("c", send("a")), Leaf("s", receive("b")))
        component = Component(History(), tree)
        assert moves_of(component, Plan.empty(), Repository()) == []

    def test_output_output_does_not_synch(self):
        tree = SessionNode(Leaf("c", send("a")), Leaf("s", send("a")))
        component = Component(History(), tree)
        assert moves_of(component, Plan.empty(), Repository()) == []


class TestCloseRule:
    def test_close_discards_server_and_appends_frames(self):
        phi = forbid("x")
        client = request("r", phi, send("a"))
        server = receive("a", Framing(PHI, seq(event("e"), receive("never"))))
        repo = Repository({"srv": server})
        component = Component.client("me", client)
        plan = Plan.single("r", "srv")

        # open, synch(a), then the server enters its framing and fires e.
        for expected in ("open", "synch", "access", "access"):
            candidates = [m for m in moves_of(component, plan, repo)
                          if m.kind == expected]
            component = apply_move(component, candidates[0])

        # Now the client can close; the server still has Mφ pending.
        (close,) = [m for m in moves_of(component, plan, repo)
                    if m.kind == "close"]
        assert close.appends == (FrameClose(PHI), FrameClose(phi))
        done = apply_move(component, close)
        assert done.tree == Leaf("me", EPSILON)
        assert done.history.is_balanced()

    def test_close_blocked_while_nested_session_open(self):
        inner_request = request("r2", None, send("x"))
        client = request("r1", None, send("go"))
        server = receive("go", inner_request)
        repo = Repository({"srv": server, "inner": receive("x")})
        plan = Plan.of({"r1": "srv", "r2": "inner"})
        component = Component.client("me", client)

        for expected in ("open", "synch", "open"):
            candidates = [m for m in moves_of(component, plan, repo)
                          if m.kind == expected]
            component = apply_move(component, candidates[0])

        # Tree is [me, [srv, inner]]: the outer close must wait.
        kinds = {m.kind for m in moves_of(component, plan, repo)}
        assert "close" not in kinds


class TestSessionAndNetRules:
    def test_inner_moves_lift_through_sessions(self):
        inner = SessionNode(Leaf("br", event("e")), Leaf("s", EPSILON))
        tree = SessionNode(Leaf("c", receive("later")), inner)
        component = Component(History(), tree)
        (move,) = moves_of(component, Plan.empty(), Repository())
        assert move.kind == "access"
        assert move.appends == (Event("e"),)

    def test_network_interleaves_components(self):
        config = Configuration.of(Component.client("a", event("x")),
                                  Component.client("b", event("y")))
        plans = [Plan.empty(), Plan.empty()]
        transitions = list(network_transitions(config, plans, Repository()))
        assert {t.component for t in transitions} == {0, 1}

    def test_stuck_components_reported(self):
        config = Configuration.of(
            Component.client("done", EPSILON),
            Component.client("stuck", send("nobody")))
        plans = [Plan.empty(), Plan.empty()]
        assert stuck_components(config, plans, Repository()) == (1,)


class TestCommitMode:
    def test_commit_moves_appear_only_with_flag(self):
        term = internal(("a", EPSILON), ("b", EPSILON))
        tree = SessionNode(Leaf("c", term), Leaf("s", receive("a")))
        component = Component(History(), tree)
        plain = moves_of(component, Plan.empty(), Repository())
        assert all(m.kind != "commit" for m in plain)
        with_commits = moves_of(component, Plan.empty(), Repository(),
                                commit_outputs=True)
        commits = [m for m in with_commits if m.kind == "commit"]
        assert {m.channel for m in commits} == {"a", "b"}

    def test_committed_unmatched_output_is_stuck(self):
        term = internal(("a", EPSILON), ("b", EPSILON))
        tree = SessionNode(Leaf("c", term), Leaf("s", receive("a")))
        component = Component(History(), tree)
        commit_b = [m for m in moves_of(component, Plan.empty(),
                                        Repository(), commit_outputs=True)
                    if m.kind == "commit" and m.channel == "b"][0]
        committed = apply_move(component, commit_b)
        assert classify_stuckness(committed, Plan.empty(), Repository(),
                                  commit_outputs=True) == "communication"

    def test_single_output_needs_no_commit(self):
        tree = SessionNode(Leaf("c", send("a")), Leaf("s", receive("a")))
        component = Component(History(), tree)
        moves = moves_of(component, Plan.empty(), Repository(),
                         commit_outputs=True)
        assert all(m.kind != "commit" for m in moves)

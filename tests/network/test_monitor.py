"""Tests for the run-time reference monitor."""

import pytest

from repro.core.actions import Event, FrameClose, FrameOpen
from repro.core.errors import SecurityViolationError
from repro.network.monitor import ReferenceMonitor
from repro.policies.library import forbid, never_after


class TestReferenceMonitor:
    def test_valid_stream_passes(self):
        phi = never_after("read", "write")
        monitor = ReferenceMonitor()
        monitor.observe_all([FrameOpen(phi), Event("read"),
                             FrameClose(phi), Event("write")])
        assert len(monitor.history) == 4

    def test_abort_on_violation(self):
        phi = forbid("boom")
        monitor = ReferenceMonitor()
        monitor.observe(FrameOpen(phi))
        with pytest.raises(SecurityViolationError) as excinfo:
            monitor.observe(Event("boom"))
        assert excinfo.value.event == Event("boom")

    def test_history_not_extended_on_abort(self):
        phi = forbid("boom")
        monitor = ReferenceMonitor()
        monitor.observe(FrameOpen(phi))
        with pytest.raises(SecurityViolationError):
            monitor.observe(Event("boom"))
        assert tuple(monitor.history) == (FrameOpen(phi),)

    def test_abort_on_history_dependent_framing(self):
        phi = never_after("read", "write")
        monitor = ReferenceMonitor()
        monitor.observe_all([Event("read"), Event("write")])
        with pytest.raises(SecurityViolationError):
            monitor.observe(FrameOpen(phi))

    def test_statistics_counters(self):
        phi = forbid("boom")
        monitor = ReferenceMonitor()
        monitor.observe_all([FrameOpen(phi), Event("ok"),
                             FrameClose(phi)])
        stats = monitor.statistics
        assert stats.labels_observed == 3
        assert stats.events_checked == 1
        assert stats.framings_opened == 1
        assert stats.aborts == 0

    def test_abort_counted(self):
        phi = forbid("boom")
        monitor = ReferenceMonitor()
        monitor.observe(FrameOpen(phi))
        with pytest.raises(SecurityViolationError):
            monitor.observe(Event("boom"))
        assert monitor.statistics.aborts == 1

    def test_observe_all_stops_at_first_violation(self):
        phi = forbid("boom")
        monitor = ReferenceMonitor()
        with pytest.raises(SecurityViolationError):
            monitor.observe_all([FrameOpen(phi), Event("boom"),
                                 Event("after")])
        assert monitor.statistics.labels_observed == 2

    def test_abort_cause_is_machine_readable(self):
        phi = forbid("boom")
        monitor = ReferenceMonitor()
        monitor.observe(FrameOpen(phi))
        with pytest.raises(SecurityViolationError) as excinfo:
            monitor.observe(Event("boom"))
        assert excinfo.value.policy_name == "forbid_boom"
        assert excinfo.value.offending_label == "@boom"
        assert monitor.statistics.abort_causes == \
            [("forbid_boom", "@boom")]

    def test_abort_cause_for_history_dependent_framing(self):
        phi = never_after("read", "write")
        monitor = ReferenceMonitor()
        monitor.observe_all([Event("read"), Event("write")])
        with pytest.raises(SecurityViolationError) as excinfo:
            monitor.observe(FrameOpen(phi))
        assert excinfo.value.policy_name == phi.name
        assert monitor.statistics.abort_causes[0][0] == phi.name

"""Tests for the service repository."""

import pytest

from repro.core.errors import WellFormednessError
from repro.core.syntax import Mu, Var, receive, send
from repro.network.repository import Repository


class TestRepository:
    def test_lookup(self):
        repo = Repository({"a": send("x")})
        assert repo["a"] == send("x")
        assert repo.get("a") == send("x")
        assert repo.get("missing") is None
        assert "a" in repo and "missing" not in repo

    def test_publish_is_functional(self):
        base = Repository()
        extended = base.publish("a", send("x"))
        assert len(base) == 0 and len(extended) == 1

    def test_publish_replaces(self):
        repo = Repository({"a": send("x")}).publish("a", receive("y"))
        assert repo["a"] == receive("y")

    def test_locations_preserve_insertion_order(self):
        repo = Repository({"b": send("x")}).publish("a", send("y"))
        assert repo.locations() == ("b", "a")

    def test_items(self):
        repo = Repository({"a": send("x")})
        assert dict(repo.items()) == {"a": send("x")}

    def test_validates_services_on_construction(self):
        with pytest.raises(WellFormednessError):
            Repository({"bad": Var("h")})

    def test_validates_services_on_publish(self):
        with pytest.raises(WellFormednessError):
            Repository().publish("bad", Mu("h", Var("h")))

    def test_str_lists_locations(self):
        assert "a" in str(Repository({"a": send("x")}))

"""Tests for the simulator, including the Figure 3 replay."""

import pytest

from repro.core.actions import Event, FrameClose, FrameOpen
from repro.core.errors import ReproError, SecurityViolationError
from repro.core.plans import Plan
from repro.core.syntax import Framing, event, receive, request, send, seq
from repro.network.config import Component, Configuration
from repro.network.repository import Repository
from repro.network.simulator import (RunOutcome, Simulator,
                                     StepBudgetExceeded)
from repro.paper import figure2, figure3
from repro.policies.library import forbid


class TestFigure3Replay:
    def test_all_thirteen_steps_fire(self):
        simulator, fired = figure3.replay()
        assert len(fired) == 13

    def test_rule_sequence_matches_paper(self):
        _, fired = figure3.replay()
        assert [t.rule for t in fired] == [
            "open", "synch", "open", "open", "access", "access", "access",
            "synch", "synch", "close", "synch", "close", "synch"]

    def test_component1_history_matches_paper(self):
        simulator, _ = figure3.replay()
        phi1 = figure2.policy_c1()
        assert tuple(simulator.histories()[0]) == (
            FrameOpen(phi1), Event("sgn", (3,)), Event("p", (90,)),
            Event("ta", (100,)), FrameClose(phi1))

    def test_component2_history_after_step13(self):
        simulator, _ = figure3.replay()
        phi2 = figure2.policy_c2()
        assert tuple(simulator.histories()[1]) == (FrameOpen(phi2),)

    def test_histories_stay_valid_throughout(self):
        simulator, _ = figure3.replay()
        assert simulator.all_histories_valid()
        assert simulator.violations() == []

    def test_replay_also_works_unmonitored(self):
        simulator, fired = figure3.replay(monitored=False)
        assert len(fired) == 13
        assert simulator.all_histories_valid()

    def test_network_can_run_to_completion_after_fragment(self):
        simulator, _ = figure3.replay()
        simulator.run(max_steps=200)
        assert simulator.is_terminated()
        for history in simulator.histories():
            assert history.is_balanced()


class TestScheduling:
    def make(self, monitored=True, seed=0):
        client = request("r", None, seq(send("a"), receive("b")))
        repo = Repository({"srv": seq(receive("a"), send("b"))})
        config = Configuration.of(Component.client("me", client))
        return Simulator(config, Plan.single("r", "srv"), repo,
                         monitored=monitored, seed=seed)

    def test_run_to_termination(self):
        simulator = self.make()
        log = simulator.run()
        assert simulator.is_terminated()
        assert log.rules() == ("open", "synch", "synch", "close")

    def test_step_random_returns_none_when_done(self):
        simulator = self.make()
        simulator.run()
        assert simulator.step_random() is None

    def test_fire_matching_raises_when_unavailable(self):
        simulator = self.make()
        with pytest.raises(ReproError, match="no available transition"):
            simulator.fire_matching(lambda t: t.rule == "close")

    def test_custom_scheduler(self):
        simulator = self.make()
        chosen = []

        def scheduler(options):
            chosen.append(len(options))
            return options[0]

        simulator.run(scheduler=scheduler)
        assert chosen  # the scheduler was consulted

    def test_seed_reproducibility(self):
        first = self.make(seed=42)
        second = self.make(seed=42)
        assert first.run().rules() == second.run().rules()


class TestMonitoredAbort:
    def make_violating(self, monitored):
        # The server *must* fire the forbidden event before answering, so
        # every schedule hits the violation (or the monitor's block).
        phi = forbid("boom")
        client = request("r", phi, seq(send("go"), receive("done")))
        repo = Repository({"srv": receive("go", seq(event("boom"),
                                                    send("done")))})
        config = Configuration.of(Component.client("me", client))
        return Simulator(config, Plan.single("r", "srv"), repo,
                         monitored=monitored, seed=1)

    def test_monitored_run_aborts(self):
        simulator = self.make_violating(monitored=True)
        with pytest.raises(SecurityViolationError):
            simulator.run()

    def test_unmonitored_run_records_violation(self):
        simulator = self.make_violating(monitored=False)
        simulator.run()
        assert not simulator.all_histories_valid()
        violations = simulator.violations()
        assert len(violations) == 1
        component, prefix = violations[0]
        assert component == 0
        assert prefix[-1] == Event("boom")


class TestRunOutcome:
    def make(self):
        client = request("r", None, seq(send("a"), receive("b")))
        repo = Repository({"srv": seq(receive("a"), send("b"))})
        config = Configuration.of(Component.client("me", client))
        return Simulator(config, Plan.single("r", "srv"), repo)

    def test_outcome_is_none_before_any_run(self):
        assert self.make().log.outcome is None

    def test_terminated(self):
        simulator = self.make()
        log = simulator.run()
        assert log.outcome is RunOutcome.TERMINATED

    def test_step_budget_exceeded(self):
        simulator = self.make()
        log = simulator.run(max_steps=2)
        assert log.outcome is StepBudgetExceeded
        assert log.outcome is RunOutcome.STEP_BUDGET_EXCEEDED
        assert not simulator.is_terminated()

    def test_budget_equal_to_run_length_is_not_truncation(self):
        # The run needs exactly 4 steps; a budget of 4 completes it.
        simulator = self.make()
        log = simulator.run(max_steps=4)
        assert log.outcome is RunOutcome.TERMINATED

    def test_stuck(self):
        client = request("r", None, seq(send("a"), receive("b")))
        # The service never answers on "b": the session deadlocks.
        repo = Repository({"srv": receive("a", receive("never"))})
        config = Configuration.of(Component.client("me", client))
        simulator = Simulator(config, Plan.single("r", "srv"), repo,
                              monitored=False)
        log = simulator.run()
        assert log.outcome is RunOutcome.STUCK


class TestAbortCause:
    def test_security_error_carries_policy_and_label(self):
        phi = forbid("boom")
        client = request("r", phi, seq(send("go"), receive("done")))
        repo = Repository({"srv": receive("go", seq(event("boom"),
                                                    send("done")))})
        config = Configuration.of(Component.client("me", client))
        simulator = Simulator(config, Plan.single("r", "srv"), repo,
                              monitored=True, seed=1)
        with pytest.raises(SecurityViolationError) as excinfo:
            simulator.run()
        assert excinfo.value.policy_name == "forbid_boom"
        assert excinfo.value.offending_label == "@boom"

"""Tests for the surface-syntax parser."""

import pytest

from repro.core.actions import Receive, Send
from repro.core.errors import ParseError
from repro.core.syntax import (EPSILON, ExternalChoice, Framing,
                               InternalChoice, Mu, Request, Var, event,
                               external, internal, mu, receive, request,
                               send, seq)
from repro.lang.parser import parse
from repro.policies.library import forbid

PHI = forbid("x")
ENV = {"phi": PHI}


class TestAtoms:
    def test_eps(self):
        assert parse("eps") == EPSILON

    def test_variable(self):
        assert parse("h") == Var("h")

    def test_event_without_params(self):
        assert parse("@ping") == event("ping")

    def test_event_with_params(self):
        assert parse('@sgn(1, 4.5, "two words", bare)') == \
            event("sgn", 1, 4.5, "two words", "bare")

    def test_prefixes(self):
        assert parse("!a") == send("a")
        assert parse("?a") == receive("a")
        assert parse("!a . @e") == send("a", event("e"))


class TestCompositions:
    def test_sequence(self):
        assert parse("@a ; @b ; @c") == seq(event("a"), event("b"),
                                            event("c"))

    def test_braces_group(self):
        term = parse("?a . { @e ; @f }")
        assert term == receive("a", seq(event("e"), event("f")))

    def test_external_choice(self):
        assert parse("(?a . @x + ?b)") == external(
            ("a", event("x")), ("b", EPSILON))

    def test_internal_choice(self):
        assert parse("(!a ++ !b . @y)") == internal(
            ("a", EPSILON), ("b", event("y")))

    def test_single_branch_choice_in_parens(self):
        assert parse("(!a)") == send("a")
        assert parse("(?a)") == receive("a")

    def test_mu(self):
        assert parse("mu h { ?ping . h }") == mu(
            "h", receive("ping", Var("h")))

    def test_open_with_policy(self, ):
        term = parse("open r with phi { !a }", policies=ENV)
        assert term == request("r", PHI, send("a"))

    def test_open_without_policy(self):
        term = parse("open r { !a }")
        assert term == request("r", None, send("a"))

    def test_frame(self):
        term = parse("frame phi { @e }", policies=ENV)
        assert term == Framing(PHI, event("e"))

    def test_deep_nesting(self):
        source = """
        open outer with phi {
            !go . mu h { (?more . h + ?done) }
        }
        """
        term = parse(source, policies=ENV)
        assert isinstance(term, Request)
        assert term.request == "outer"


class TestErrors:
    def test_mixed_choice_operators(self):
        with pytest.raises(ParseError, match="cannot mix"):
            parse("(?a + !b ++ ?c)")

    def test_external_with_output_prefix(self):
        with pytest.raises(ParseError, match="external"):
            parse("(!a + !b)")

    def test_internal_with_input_prefix(self):
        with pytest.raises(ParseError, match="internal"):
            parse("(?a ++ ?b)")

    def test_choice_must_start_with_prefix(self):
        with pytest.raises(ParseError, match="'!' or '?'"):
            parse("(@e + ?a)")

    def test_unknown_policy(self):
        with pytest.raises(ParseError, match="unknown policy"):
            parse("frame ghost { eps }")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError, match="expected EOF"):
            parse("eps eps")

    def test_missing_brace(self):
        with pytest.raises(ParseError):
            parse("mu h { ?a . h")

    def test_error_positions(self):
        try:
            parse("@a ;\n  $")
        except ParseError as error:
            assert error.line == 2
        else:  # pragma: no cover
            pytest.fail("expected ParseError")

    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse("")


class TestWholePaperTerms:
    def test_client(self):
        from repro.paper import figure2
        source = "open 1 with phi1 { !Req . (?CoBo . !Pay + ?NoAv) }"
        term = parse(source, policies={"phi1": figure2.policy_c1()})
        # Same behaviour as the programmatic definition (the programmatic
        # one uses seq where the parsed one uses prefixing).
        from repro.core.projection import project
        from repro.contracts.contract import Contract
        from repro.contracts.lts import bisimilar
        assert bisimilar(Contract(term.body).lts,
                         Contract(figure2.client_1().body).lts)

    def test_hotel(self):
        source = "@sgn(2) ; @p(70) ; @ta(100) ; ?IdC . (!Bok ++ !UnA ++ !Del)"
        term = parse(source)
        from repro.paper import figure2
        assert term == figure2.hotel_2()

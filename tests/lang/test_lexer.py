"""Tests for the surface-syntax lexer."""

import pytest

from repro.core.errors import ParseError
from repro.lang.lexer import Token, tokenize


def kinds(source):
    return [token.kind for token in tokenize(source)]


class TestTokens:
    def test_empty_source(self):
        assert kinds("") == ["EOF"]

    def test_keywords_vs_identifiers(self):
        assert kinds("mu open with frame eps foo") == [
            "MU", "OPEN", "WITH", "FRAME", "EPS", "IDENT", "EOF"]

    def test_symbols(self):
        assert kinds("@ ! ? . ; , ( ) { } +") == [
            "@", "!", "?", ".", ";", ",", "(", ")", "{", "}", "+", "EOF"]

    def test_plus_plus_is_one_token(self):
        assert kinds("++") == ["++", "EOF"]
        assert kinds("+ +") == ["+", "+", "EOF"]

    def test_numbers(self):
        tokens = tokenize("42 4.5 -3")
        assert [(t.kind, t.text) for t in tokens[:-1]] == [
            ("INT", "42"), ("FLOAT", "4.5"), ("INT", "-3")]

    def test_malformed_number_rejected(self):
        with pytest.raises(ParseError, match="malformed"):
            tokenize("1.2.3")

    def test_strings(self):
        (token, _) = tokenize('"hello world"')
        assert token == Token("STRING", "hello world", 1, 1)

    def test_unterminated_string_rejected(self):
        with pytest.raises(ParseError, match="unterminated"):
            tokenize('"oops')
        with pytest.raises(ParseError, match="unterminated"):
            tokenize('"oops\nnext"')

    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            tokenize("€")


class TestCommentsAndLayout:
    def test_comments_ignored(self):
        assert kinds("foo # a comment\nbar") == ["IDENT", "IDENT", "EOF"]

    def test_positions_track_lines_and_columns(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_position_after_string(self):
        tokens = tokenize('"ab" x')
        assert tokens[1].column == 6

    def test_error_position_is_reported(self):
        try:
            tokenize("ok\n   $")
        except ParseError as error:
            assert (error.line, error.column) == (2, 4)
        else:  # pragma: no cover
            pytest.fail("expected ParseError")

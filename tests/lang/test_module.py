"""Tests for the module (whole-network) surface syntax."""

import pytest

from repro.core.errors import ParseError, ReproError, WellFormednessError
from repro.core.syntax import receive, request, send, seq
from repro.lang.module import Module, default_schemas, parse_module


class TestDeclarations:
    def test_empty_module(self):
        module = parse_module("")
        assert not module.policies and not module.clients
        assert not module.services

    def test_client_and_service(self):
        module = parse_module("""
            client c = open r { !go . ?done }
            service w = ?go . !done
        """)
        assert module.clients["c"] == request(
            "r", None, send("go", receive("done")))
        assert module.services["w"] == receive("go", send("done"))

    def test_multiline_bodies_run_to_next_declaration(self):
        module = parse_module("""
            service a =
                ?one ;
                !two ;
                @fired(1)
            service b = ?three
        """)
        assert set(module.services) == {"a", "b"}

    def test_comments_allowed(self):
        module = parse_module("""
            # leading comment
            service a = ?go   # trailing comment
        """)
        assert module.services["a"] == receive("go")

    def test_keyword_like_channels_do_not_cut_declarations(self):
        # 'service' as a channel name must not start a new declaration
        # (the header shape 'service NAME =' disambiguates).
        module = parse_module("service a = ?service . !client")
        assert set(module.services) == {"a"}

    def test_repository_property(self):
        module = parse_module("service w = ?go")
        assert module.repository["w"] == receive("go")

    def test_term_lookup(self):
        module = parse_module("""
            client c = open r { !a }
            service w = ?a
        """)
        assert module.term("c") == module.clients["c"]
        assert module.term("w") == module.services["w"]
        with pytest.raises(ReproError):
            module.term("ghost")


class TestPolicyDeclarations:
    def test_named_arguments(self):
        module = parse_module(
            "policy phi = hotel(bl = {1, 3}, p = 40, t = 70)")
        policy = module.policies["phi"]
        assert policy.environment() == {"bl": frozenset({1, 3}),
                                        "p": 40, "t": 70}

    def test_positional_schema_arguments(self):
        module = parse_module(
            "policy nw = never_after(archive, modify)")
        from repro.core.actions import Event
        assert module.policies["nw"].accepts(
            [Event("archive"), Event("modify")])

    def test_budget_schema(self):
        module = parse_module('policy cap = budget("cap", {}, 0)')
        assert module.policies["cap"].respects([])

    def test_policy_usable_in_later_declarations(self):
        module = parse_module("""
            policy phi = forbid(boom)
            client c = open r with phi { !go }
        """)
        assert module.clients["c"].policy == module.policies["phi"]

    def test_unknown_schema(self):
        with pytest.raises(ParseError, match="unknown policy schema"):
            parse_module("policy phi = made_up()")

    def test_custom_registry(self):
        from repro.policies.library import forbid_automaton
        module = parse_module("policy x = nope(boom)",
                              schemas={"nope": forbid_automaton})
        from repro.core.actions import Event
        assert module.policies["x"].accepts([Event("boom")])


class TestErrors:
    def test_missing_equals(self):
        with pytest.raises(ParseError, match="expected a declaration"):
            parse_module("client c !go")

    def test_garbage_at_top_level(self):
        with pytest.raises(ParseError, match="expected a declaration"):
            parse_module("!go . ?done")

    def test_ill_formed_terms_rejected(self):
        with pytest.raises(WellFormednessError):
            parse_module("service s = mu h { h }")

    def test_trailing_garbage_in_policy(self):
        with pytest.raises(ParseError):
            parse_module("policy phi = forbid(boom) extra tokens")


class TestEndToEnd:
    def test_paper_module_verifies(self):
        import pathlib
        path = (pathlib.Path(__file__).resolve().parents[2]
                / "examples" / "hotel_booking.sus")
        module = parse_module(path.read_text())
        from repro.analysis.verification import verify_network
        verdict = verify_network(module.clients, module.repository)
        assert verdict.verified

    def test_budget_arguments_with_dict_weights(self):
        from repro.core.actions import Event
        module = parse_module(
            'policy cap = budget("cap", {io = 1, crypto = 5}, 6)')
        cap = module.policies["cap"]
        assert cap.respects([Event("io")] * 6)
        assert cap.accepts([Event("crypto"), Event("io"), Event("io")])


class TestProgramDeclarations:
    SOURCE = """
policy nw = never_after(archive, modify)

program client me =
    open r with nw {
        !job ;
        offer { done -> () | failed -> () }
    }

program service worker =
    fun serve(u: unit): unit =
        offer { job -> @modify(1) ; @archive(1) ; !done ; serve ()
              | quit -> () }
    in serve ()
"""

    def test_lambda_declarations_extract_effects(self):
        from repro.core.syntax import Mu, Request
        module = parse_module(self.SOURCE)
        assert isinstance(module.clients["me"], Request)
        assert isinstance(module.services["worker"], Mu)

    def test_extracted_network_verifies(self):
        from repro.analysis.verification import verify_network
        module = parse_module(self.SOURCE)
        verdict = verify_network(module.clients, module.repository)
        assert verdict.verified

    def test_program_and_plain_declarations_mix(self):
        module = parse_module(self.SOURCE + """
service plain = ?job . !done
""")
        assert set(module.services) == {"worker", "plain"}

    def test_type_errors_surface(self):
        from repro.lam.infer import TypeEffectError
        with pytest.raises(TypeEffectError):
            parse_module("program service bad = f ()")

    def test_program_needs_client_or_service(self):
        with pytest.raises(ParseError, match="expected a declaration"):
            parse_module("program policy x = ()")

"""Source spans on tokens, declarations and modules."""

import pytest

from repro.lang.lexer import Span, tokenize
from repro.lang.module import parse_module

SOURCE = """\
# a comment that shifts everything down one line
policy phi = blacklist(sgn, bl = {1})
client c = open 1 with phi { !Req . ?Ok }

service s =
    ?Req ; !Ok
"""


class TestSpan:
    def test_of_token(self):
        tokens = tokenize("open r1")
        span = tokens[1].span
        assert (span.line, span.column) == (1, 6)
        assert (span.end_line, span.end_column) == (1, 8)

    def test_merge_orders_endpoints(self):
        first = Span(1, 6, 1, 8)
        second = Span(3, 2, 3, 4)
        merged = first.merge(second)
        assert merged == Span(1, 6, 3, 4)
        assert second.merge(first) == merged

    def test_str_is_line_colon_column(self):
        assert str(Span(12, 3, 12, 9)) == "12:3"


class TestDeclarationSpans:
    @pytest.fixture()
    def module(self):
        return parse_module(SOURCE, path="net.sus")

    def test_module_remembers_its_path(self, module):
        assert module.path == "net.sus"

    def test_every_declaration_has_a_span(self, module):
        assert [decl.kind for decl in module.declarations] == [
            "policy", "client", "service"]
        for decl in module.declarations:
            assert decl.span is not None

    def test_spans_point_at_the_declared_name(self, module):
        phi, c, s = module.declarations
        assert (phi.span.line, phi.span.column) == (2, 8)
        assert (c.span.line, c.span.column) == (3, 8)
        assert (s.span.line, s.span.column) == (5, 9)

    def test_body_tokens_are_recorded(self, module):
        _, c, s = module.declarations
        texts = [token.text for token in c.tokens]
        assert texts[:2] == ["open", "1"]
        # Multi-line bodies keep all their tokens, EOF excluded.
        assert [token.text for token in s.tokens] == [
            "?", "Req", ";", "!", "Ok"]

    def test_declaration_values_match_the_dicts(self, module):
        assert module.declaration("c").value is module.clients["c"]
        assert module.declaration("phi").value is module.policies["phi"]

    def test_duplicates_are_preserved_in_order(self):
        module = parse_module("client c = !A\nclient c = !B\n")
        assert len(module.declarations) == 2
        assert [d.span.line for d in module.declarations] == [1, 2]
        # The dict keeps the later value; declaration() agrees.
        assert module.declaration("c") is module.declarations[1]

    def test_kind_filter(self, module):
        assert module.declaration("c", kind="service") is None
        assert module.declaration("c", kind="client").name == "c"

    def test_programmatic_modules_have_no_declarations(self):
        from repro.lang.module import Module
        assert Module().declarations == []

"""Tests for the pretty printer, including parse∘pretty round trips."""

import pytest

from repro.core.syntax import (EPSILON, ClosePending, FrameClosePending,
                               Framing, Var, event, external, internal, mu,
                               receive, request, send, seq)
from repro.lang.parser import parse
from repro.lang.pretty import pretty
from repro.paper import figure2
from repro.policies.library import forbid

PHI = forbid("x")
NAMES = {PHI: "phi"}


class TestRendering:
    def test_atoms(self):
        assert pretty(EPSILON) == "eps"
        assert pretty(Var("h")) == "h"
        assert pretty(event("e")) == "@e"
        assert pretty(event("sgn", 1, "two words")) == '@sgn(1, "two words")'

    def test_prefixes(self):
        assert pretty(send("a")) == "!a"
        assert pretty(receive("a", event("e"))) == "?a . @e"

    def test_sequences_flatten(self):
        assert pretty(seq(event("a"), event("b"), event("c"))) == \
            "@a ; @b ; @c"

    def test_choices(self):
        assert pretty(external(("a", EPSILON), ("b", event("x")))) == \
            "(?a + ?b . @x)"
        assert pretty(internal(("a", EPSILON), ("b", EPSILON))) == \
            "(!a ++ !b)"

    def test_seq_continuation_is_braced(self):
        term = receive("a", seq(event("x"), event("y")))
        assert pretty(term) == "?a . { @x ; @y }"

    def test_mu(self):
        term = mu("h", receive("ping", Var("h")))
        assert pretty(term) == "mu h { ?ping . h }"

    def test_request_and_frame_with_names(self):
        term = request("r", PHI, Framing(PHI, event("e")))
        assert pretty(term, NAMES) == \
            "open r with phi { frame phi { @e } }"

    def test_request_without_policy(self):
        assert pretty(request("r", None, send("a"))) == "open r { !a }"

    def test_policy_without_name_falls_back_to_str(self):
        assert "forbid_x" in pretty(Framing(PHI, EPSILON))

    def test_runtime_residuals_render_distinctively(self):
        assert "close" in pretty(ClosePending("r", None))
        assert "]" in pretty(FrameClosePending(PHI))


class TestRoundTrip:
    SOURCES = [
        "eps",
        "@e",
        "@sgn(1, 4.5, word)",
        "!a",
        "?a . @e",
        "(?a + ?b . @x)",
        "(!a ++ !b)",
        "@a ; @b ; @c",
        "mu h { ?ping . !pong . h }",
        "open r with phi { !Req . (?ok + ?no) }",
        "frame phi { @e ; !out }",
        "?a . { @x ; @y }",
    ]

    @pytest.mark.parametrize("source", SOURCES)
    def test_parse_pretty_parse_is_identity(self, source):
        env = {"phi": PHI}
        term = parse(source, policies=env)
        rendered = pretty(term, NAMES)
        assert parse(rendered, policies=env) == term

    def test_paper_terms_round_trip(self):
        env = {"phi1": figure2.policy_c1()}
        names = {figure2.policy_c1(): "phi1"}
        for factory in (figure2.broker, figure2.hotel_1, figure2.hotel_2):
            term = factory()
            assert parse(pretty(term, names), policies=env) == term

    def test_client_round_trips_with_policy_name(self):
        env = {"phi1": figure2.policy_c1()}
        names = {figure2.policy_c1(): "phi1"}
        term = figure2.client_1()
        assert parse(pretty(term, names), policies=env) == term

"""Tests for the λ-calculus concrete syntax."""

import pytest

from repro.core.errors import ParseError
from repro.lam import (BOOL, INT, UNIT, UNIT_VALUE, App, Fix, If, Lam,
                       Let, Lit, Offer, OpenSession, RecvT, SendT, Var,
                       Within, extract, infer, parse_program, seq_terms)
from repro.lam.types import TFun
from repro.core.syntax import EPSILON
from repro.policies.library import forbid

PHI = forbid("boom")
ENV = {"phi": PHI}


class TestAtoms:
    def test_unit(self):
        assert parse_program("()") == UNIT_VALUE

    def test_literals(self):
        assert parse_program("42") == Lit(42)
        assert parse_program('"text"') == Lit("text")
        assert parse_program("true") == Lit(True)
        assert parse_program("false") == Lit(False)

    def test_variable(self):
        assert parse_program("x") == Var("x")

    def test_event(self):
        term = parse_program("@sgn(3)")
        assert term.name == "sgn" and term.payload == (3,)

    def test_send_with_and_without_payload(self):
        assert parse_program("!a") == SendT("a", UNIT_VALUE)
        assert parse_program("!a 42") == SendT("a", Lit(42))

    def test_recv_with_type(self):
        assert parse_program("?a") == RecvT("a", UNIT)
        assert parse_program("?a : int") == RecvT("a", INT)


class TestCompositions:
    def test_sequencing(self):
        term = parse_program("@a ; @b ; @c")
        assert term == seq_terms(parse_program("@a"),
                                 parse_program("@b"),
                                 parse_program("@c"))

    def test_application_left_assoc(self):
        term = parse_program("f x y")
        assert term == App(App(Var("f"), Var("x")), Var("y"))

    def test_application_binds_tighter_than_seq(self):
        term = parse_program("f x ; g y")
        assert isinstance(term, Let)  # seq sugar

    def test_let(self):
        term = parse_program("let x = 1 in x")
        assert term == Let("x", Lit(1), Var("x"))

    def test_if(self):
        term = parse_program("if true then !a else !b")
        assert isinstance(term, If)

    def test_fn(self):
        term = parse_program("fn (x: int) -> x")
        assert term == Lam("x", INT, Var("x"))

    def test_fn_with_arrow_type(self):
        term = parse_program("fn (f: int -> bool) -> f 1")
        assert term.annotation == TFun(INT, EPSILON, BOOL)

    def test_fun_is_fix_plus_let(self):
        term = parse_program(
            "fun loop(u: unit): unit = "
            "  offer { go -> loop () | stop -> () } "
            "in loop ()")
        assert isinstance(term, Let)
        assert isinstance(term.bound, Fix)
        assert term.bound.fun == "loop"

    def test_offer(self):
        term = parse_program("offer { a -> !x | b -> () }")
        assert isinstance(term, Offer)
        assert [channel for channel, _ in term.branches] == ["a", "b"]

    def test_open_and_frame(self):
        term = parse_program("open r with phi { !a }", policies=ENV)
        assert isinstance(term, OpenSession)
        assert term.policy == PHI
        framed = parse_program("frame phi { @e }", policies=ENV)
        assert isinstance(framed, Within)

    def test_keywords_usable_as_channels(self):
        term = parse_program("!let ; ?then")
        assert isinstance(term, Let)  # the seq sugar


class TestErrors:
    def test_unknown_policy(self):
        with pytest.raises(ParseError, match="unknown policy"):
            parse_program("open r with ghost { () }")

    def test_missing_in(self):
        with pytest.raises(ParseError, match="'in'"):
            parse_program("let x = 1 x")

    def test_bad_type(self):
        with pytest.raises(ParseError, match="expected a type"):
            parse_program("fn (x: banana) -> x")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError, match="EOF"):
            parse_program("() }")

    def test_empty_program(self):
        with pytest.raises(ParseError):
            parse_program("")


class TestEndToEnd:
    def test_parsed_program_infers(self):
        program = parse_program("""
            let ping = fn (u: unit) -> (@tick ; !ack) in
            ping () ; ping ()
        """)
        judgement = infer(program)
        assert judgement.type == UNIT

    def test_paper_client_from_source(self):
        from repro.contracts.lts import bisimilar, build_lts
        from repro.core.semantics import step
        from repro.paper import figure2
        program = parse_program("""
            open 1 with phi1 {
                !Req ;
                offer { CoBo -> !Pay | NoAv -> () }
            }
        """, policies={"phi1": figure2.policy_c1()})
        effect = extract(program)
        assert bisimilar(build_lts(effect, step),
                         build_lts(figure2.client_1(), step))

    def test_recursive_server_from_source(self):
        from repro.core.syntax import Mu
        program = parse_program("""
            fun serve(u: unit): unit =
                offer { go -> @tick ; !ack ; serve ()
                      | stop -> () }
            in serve ()
        """)
        judgement = infer(program)
        assert isinstance(judgement.effect, Mu)

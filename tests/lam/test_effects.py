"""Tests for the effect algebra (distribution and joining)."""

import pytest

from repro.core.syntax import (EPSILON, event, external, internal, mu,
                               receive, send, seq, Var)
from repro.lam.effects import EffectJoinError, distribute, join


class TestDistribute:
    def test_atoms_unchanged(self):
        for term in (EPSILON, event("e"), send("a")):
            assert distribute(term) in (term, term)

    def test_pushes_tail_into_external_choice(self):
        term = seq(external(("a", EPSILON), ("b", event("x"))),
                   event("z"))
        result = distribute(term)
        assert result == external(("a", event("z")),
                                  ("b", seq(event("x"), event("z"))))

    def test_pushes_tail_into_internal_choice(self):
        term = seq(internal(("a", EPSILON)), send("next"))
        result = distribute(term)
        assert result == internal(("a", send("next")))

    def test_distribution_preserves_behaviour(self):
        from repro.contracts.lts import bisimilar, build_lts
        from repro.core.semantics import step
        term = seq(external(("a", event("x")), ("b", EPSILON)),
                   internal(("c", EPSILON)))
        assert bisimilar(build_lts(term, step),
                         build_lts(distribute(term), step))

    def test_event_head_stays_sequential(self):
        term = seq(event("e"), send("a"))
        assert distribute(term) == term


class TestJoin:
    def test_identical_effects(self):
        term = seq(event("e"), send("a"))
        assert join(term, term) == term

    def test_two_outputs_become_internal_choice(self):
        result = join(send("yes"), send("no"))
        assert result == internal(("yes", EPSILON), ("no", EPSILON))

    def test_two_inputs_become_external_choice(self):
        result = join(receive("a"), receive("b"))
        assert result == external(("a", EPSILON), ("b", EPSILON))

    def test_sequenced_branches_distribute_first(self):
        left = seq(send("yes"), event("log"))
        right = send("no")
        result = join(left, right)
        assert result == internal(("yes", event("log")),
                                  ("no", EPSILON))

    def test_duplicate_channels_allowed(self):
        # Both branches output on the same channel with different
        # continuations: a genuinely nondeterministic internal choice.
        result = join(send("a", event("x")), send("a", event("y")))
        branches = result.branches
        assert len(branches) == 2
        assert {cont for _, cont in branches} == {event("x"), event("y")}

    @pytest.mark.parametrize("left,right,fragment", [
        (EPSILON, send("a"), "pure"),
        (event("e"), send("a"), "event-guarded"),
        (send("a"), receive("b"), "input-guarded"),
        (mu("h", receive("x", Var("h"))), send("a"), "recursive"),
    ])
    def test_unjoinable_branches_explained(self, left, right, fragment):
        with pytest.raises(EffectJoinError, match=fragment):
            join(left, right)

    def test_join_is_commutative_up_to_branch_order(self):
        a, b = send("x", event("1")), send("y", event("2"))
        forward = join(a, b)
        backward = join(b, a)
        assert set(forward.branches) == set(backward.branches)

"""Tests for the type-and-effect system."""

import pytest

from repro.core.syntax import (EPSILON, EventNode, ExternalChoice, Framing,
                               InternalChoice, Mu, Request)
from repro.core.syntax import receive as he_receive
from repro.core.syntax import send as he_send
from repro.core.syntax import seq as he_seq, event as he_event
from repro.lam import (BOOL, INT, STR, TFun, TypeEffectError, UNIT,
                       UNIT_VALUE, app, cond, evt, extract, fix, infer,
                       lam, let, lit, offer, open_session, recv, send,
                       seq_terms, var, within)
from repro.policies.library import forbid

PHI = forbid("boom")


class TestPureFragment:
    def test_literals(self):
        assert infer(lit(3)).type == INT
        assert infer(lit("s")).type == STR
        assert infer(lit(True)).type == BOOL
        assert infer(UNIT_VALUE).type == UNIT
        assert infer(lit(3)).effect == EPSILON

    def test_unbound_variable(self):
        with pytest.raises(TypeEffectError, match="unbound"):
            infer(var("ghost"))

    def test_environment_lookup(self):
        judgement = infer(var("x"), env={"x": INT})
        assert judgement.type == INT

    def test_lambda_is_pure_and_carries_latent(self):
        function = lam("x", UNIT, evt("fire"))
        judgement = infer(function)
        assert judgement.effect == EPSILON
        assert judgement.type == TFun(UNIT, EventNode(he_event("fire").event),
                                      UNIT)

    def test_application_unleashes_latent(self):
        function = lam("x", UNIT, evt("fire"))
        judgement = infer(app(function, UNIT_VALUE))
        assert judgement.effect == he_event("fire")

    def test_application_type_mismatch(self):
        function = lam("x", INT, var("x"))
        with pytest.raises(TypeEffectError, match="argument type"):
            infer(app(function, lit("not an int")))

    def test_applying_non_function(self):
        with pytest.raises(TypeEffectError, match="non-function"):
            infer(app(lit(3), lit(4)))

    def test_let_sequences_effects(self):
        term = let("x", evt("first"), seq_terms(evt("second"), var("x")))
        judgement = infer(term)
        assert judgement.effect == he_seq(he_event("first"),
                                          he_event("second"))
        assert judgement.type == UNIT


class TestPrimitives:
    def test_event_payloads(self):
        judgement = infer(evt("sgn", 3))
        assert judgement.effect == he_event("sgn", 3)

    def test_send_evaluates_value_first(self):
        term = send("chan", evt("compute"))
        judgement = infer(term)
        assert judgement.effect == he_seq(he_event("compute"),
                                          he_send("chan"))
        assert judgement.type == UNIT

    def test_recv_types_the_value(self):
        judgement = infer(recv("chan", INT))
        assert judgement.type == INT
        assert judgement.effect == he_receive("chan")

    def test_offer_builds_external_choice(self):
        term = offer(("a", evt("x")), ("b", UNIT_VALUE))
        judgement = infer(term)
        assert isinstance(judgement.effect, ExternalChoice)
        assert judgement.type == UNIT

    def test_offer_branch_type_mismatch(self):
        with pytest.raises(TypeEffectError, match="disagree"):
            infer(offer(("a", lit(1)), ("b", lit("s"))))

    def test_empty_offer_rejected(self):
        from repro.lam.syntax import Offer
        with pytest.raises(TypeEffectError, match="at least one"):
            infer(Offer(()))

    def test_session_wraps_effect(self):
        term = open_session("r", PHI, send("a"))
        judgement = infer(term)
        assert judgement.effect == Request("r", PHI, he_send("a"))

    def test_framing_wraps_effect(self):
        term = within(PHI, evt("e"))
        assert infer(term).effect == Framing(PHI, he_event("e"))


class TestConditionals:
    def test_condition_must_be_bool(self):
        with pytest.raises(TypeEffectError, match="bool"):
            infer(cond(lit(1), UNIT_VALUE, UNIT_VALUE))

    def test_branch_types_must_agree(self):
        with pytest.raises(TypeEffectError, match="disagree"):
            infer(cond(lit(True), lit(1), lit("s")))

    def test_identical_branches_join_trivially(self):
        term = cond(lit(True), evt("e"), evt("e"))
        assert infer(term).effect == he_event("e")

    def test_output_branches_join_to_internal_choice(self):
        term = cond(var("b"), send("yes"), send("no"))
        judgement = infer(term, env={"b": BOOL})
        assert isinstance(judgement.effect, InternalChoice)

    def test_condition_effect_prefixes_the_join(self):
        term = cond(recv("flip", BOOL), send("yes"), send("no"))
        effect = infer(term).effect
        assert effect == he_seq(
            he_receive("flip"),
            InternalChoice(((he_send("yes").branches[0][0], EPSILON),
                            (he_send("no").branches[0][0], EPSILON))))

    def test_unjoinable_branches_are_type_errors(self):
        from repro.lam.effects import EffectJoinError
        with pytest.raises(EffectJoinError):
            infer(cond(lit(True), evt("e"), send("a")))


class TestRecursion:
    def test_latent_effect_is_mu_closed(self):
        ticker = fix("serve", "u", UNIT, UNIT,
                     offer(("go", seq_terms(send("ack"),
                                            app(var("serve"),
                                                UNIT_VALUE))),
                           ("stop", UNIT_VALUE)))
        judgement = infer(ticker)
        assert isinstance(judgement.type, TFun)
        assert isinstance(judgement.type.latent, Mu)

    def test_non_recursive_fix_has_plain_latent(self):
        function = fix("f", "x", UNIT, UNIT, evt("once"))
        latent = infer(function).type.latent
        assert latent == he_event("once")

    def test_recursive_call_type_checked(self):
        bad = fix("f", "x", INT, UNIT,
                  offer(("go", app(var("f"), lit("wrong")))))
        with pytest.raises(TypeEffectError, match="recursive call"):
            infer(bad)

    def test_body_type_must_match_annotation(self):
        bad = fix("f", "x", UNIT, INT, UNIT_VALUE)
        with pytest.raises(TypeEffectError, match="annotation"):
            infer(bad)

    def test_bare_recursive_reference_rejected(self):
        bad = fix("f", "x", UNIT, UNIT,
                  let("alias", var("f"), UNIT_VALUE))
        with pytest.raises(TypeEffectError, match="fully applied"):
            infer(bad)

    def test_unguarded_recursion_rejected(self):
        bad = fix("f", "x", UNIT, UNIT, app(var("f"), UNIT_VALUE))
        with pytest.raises(TypeEffectError, match="guarded-tail"):
            infer(bad)

    def test_non_tail_recursion_rejected(self):
        bad = fix("f", "x", UNIT, UNIT,
                  offer(("go", seq_terms(app(var("f"), UNIT_VALUE),
                                         evt("after")))))
        with pytest.raises(TypeEffectError, match="guarded-tail"):
            infer(bad)


class TestExtract:
    def test_extract_checks_well_formedness(self):
        term = seq_terms(evt("a"), send("out"))
        effect = extract(term)
        assert effect == he_seq(he_event("a"), he_send("out"))

    def test_extracted_client_feeds_the_planner(self):
        from repro.analysis.verification import verify_client
        from repro.network.repository import Repository
        client = extract(open_session("r", None,
                                      seq_terms(send("job"),
                                                offer(("done",
                                                       UNIT_VALUE)))))
        worker = extract(offer(("job", send("done"))))
        verdict = verify_client(client, Repository({"w": worker}))
        assert verdict.verified

"""Tests for the λ-calculus type language."""

import pytest

from repro.core.syntax import EPSILON, send
from repro.lam.types import (BOOL, INT, STR, TFun, TUnit, UNIT,
                             type_of_literal)


class TestBaseTypes:
    def test_singletons_compare_equal(self):
        assert TUnit() == UNIT
        assert BOOL != INT != STR

    def test_literal_typing(self):
        assert type_of_literal(None) == UNIT
        assert type_of_literal(True) == BOOL
        assert type_of_literal(3) == INT
        assert type_of_literal("x") == STR

    def test_bool_is_not_int(self):
        # bool ⊂ int in Python; the type system keeps them apart.
        assert type_of_literal(True) == BOOL
        assert type_of_literal(1) == INT

    def test_unknown_literal_rejected(self):
        with pytest.raises(TypeError):
            type_of_literal(object())


class TestArrows:
    def test_structural_equality_includes_latent_effect(self):
        pure = TFun(UNIT, EPSILON, UNIT)
        effectful = TFun(UNIT, send("a"), UNIT)
        assert pure != effectful
        assert pure == TFun(UNIT, EPSILON, UNIT)

    def test_str_shows_latent_effect(self):
        assert "!a" in str(TFun(UNIT, send("a"), BOOL))

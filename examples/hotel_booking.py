#!/usr/bin/env python3
"""The paper's motivating example (Section 2): hotel booking via a broker.

Reproduces, in order,

1. Figure 1 — the policy automaton ``φ(bl, p, t)`` judging hotel traces;
2. Figure 2 — the network of two clients, the broker and four hotels,
   with the compliance matrix and per-client policy verdicts the section
   states;
3. plan synthesis — ``π1 = {1↦ℓbr, 3↦ℓs3}`` is the only valid plan for
   C1; the two plans the paper rejects for C2 are rejected for the
   paper's reasons; ``{2↦ℓbr, 3↦ℓs4}`` is valid for C2;
4. Figure 3 — the 13-step computation fragment, replayed on the network
   semantics, with the same histories the paper displays.

Run with::

    python examples/hotel_booking.py
"""

from repro.analysis.planner import analyze_plan, find_valid_plans
from repro.analysis.requests import extract_requests
from repro.core.actions import Event
from repro.core.compliance import check_compliance
from repro.paper import figure2, figure3
from repro.policies.library import hotel_policy

# --- Figure 1: the policy automaton --------------------------------------

print("== Figure 1: the usage automaton φ(bl, p, t) ==")
phi1 = figure2.policy_c1()            # φ({s1}, 45, 100)
trace_s3 = (Event("sgn", (3,)), Event("p", (90,)), Event("ta", (100,)))
trace_s4 = (Event("sgn", (4,)), Event("p", (50,)), Event("ta", (90,)))
trace_s1 = (Event("sgn", (1,)), Event("p", (45,)), Event("ta", (80,)))
print(f"S3's trace respects φ1: {phi1.respects(trace_s3)}   (price high, "
      "but rating at the threshold)")
print(f"S4's trace respects φ1: {phi1.respects(trace_s4)}  (violates both "
      "thresholds)")
print(f"S1's trace respects φ1: {phi1.respects(trace_s1)}  (black-listed)")

# --- Figure 2: the network and the section's claims ----------------------

print("\n== Figure 2: compliance with the broker ==")
repository = figure2.repository()
broker_request = extract_requests(figure2.broker())[0]
for location in figure2.LOC_HOTELS:
    verdict = check_compliance(broker_request.body, repository[location])
    note = "" if verdict.compliant else "  <- may send Del, broker stuck"
    print(f"  Br ⊢ {location}: {verdict.compliant}{note}")

print("\n== Figure 2: which hotels satisfy which client's policy ==")
for policy, owner in ((figure2.policy_c1(), "C1"),
                      (figure2.policy_c2(), "C2")):
    verdicts = []
    for identifier, trace in ((1, trace_s1), (3, trace_s3), (4, trace_s4)):
        verdicts.append(f"S{identifier}:{policy.respects(trace)}")
    print(f"  {owner} with {policy}: {'  '.join(verdicts)}")

# --- Plan synthesis -------------------------------------------------------

print("\n== Plan synthesis (Section 5) ==")
result_c1 = find_valid_plans(figure2.client_1(), repository,
                             location=figure2.LOC_CLIENT_1)
print(f"C1: {len(result_c1.valid_plans)} valid plan(s): "
      + ", ".join(str(a.plan) for a in result_c1.valid_plans))
assert [str(a.plan) for a in result_c1.valid_plans] == ["1[lbr] ∪ 3[ls3]"]

for plan, why in ((figure2.plan_pi2_bad_compliance(), "S2 not compliant"),
                  (figure2.plan_pi2_bad_security(), "S3 black-listed"),
                  (figure2.plan_pi2_valid(), "")):
    analysis = analyze_plan(figure2.client_2(), plan, repository,
                            location=figure2.LOC_CLIENT_2)
    print(f"C2 under {plan}: {analysis.explain()}"
          + (f"  [paper: {why}]" if why else ""))

# --- Figure 3: the computation fragment -----------------------------------

print("\n== Figure 3: replaying the computation fragment ==")
simulator, fired = figure3.replay()
for step, (description, _) in enumerate(figure3.SCRIPT, start=1):
    transition = fired[step - 1]
    print(f"  step {step:2d}: {description}")
history_c1, history_c2 = simulator.histories()
print(f"\ncomponent 1 history: {history_c1}")
print(f"component 2 history: {history_c2}")
expected = "[{p}·@sgn(3)·@p(90)·@ta(100)·]{p}".format(p=phi1)
assert str(history_c1) == expected
print("matches the paper's  Lφ1·αsgn(3)·αp(90)·αta(100)·Mφ1  ✓")

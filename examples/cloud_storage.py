#!/usr/bin/env python3
"""Cloud storage with a Chinese-wall policy and recursive services.

Exercises two features beyond the paper's running example:

* **recursive services** (``μh.…``): the storage nodes serve ``get``
  requests in a loop until the client quits;
* **quantified-variable policies**: the Chinese wall — "once dataset *x*
  has been accessed, no *different* dataset *y* may be" — needs two
  universally quantified resource variables, i.e. the full usage-automata
  semantics of ref. [3] rather than a plain parametric FSA.

Two storage nodes are published: an *honest* one that touches only the
dataset named by the request, and a *replicating* one that touches both
datasets on every request (for redundancy) — which the wall forbids.

Two clients: a *focused* analyst querying one dataset repeatedly (should
get a valid plan using the honest node), and a *roaming* analyst querying
both datasets (no valid plan can exist: the violation is the client's own
access pattern, not the node's).

Run with::

    python examples/cloud_storage.py
"""

from repro import parse
from repro.analysis.verification import verify_client, verify_network
from repro.network.repository import Repository
from repro.policies import chinese_wall

wall = chinese_wall("access")

honest_node = parse(
    """
    mu serve {
        ( ?getA . { @access(A) ; !data . serve }
        + ?getB . { @access(B) ; !data . serve }
        + ?quit )
    }
    """)

replicating_node = parse(
    """
    mu serve {
        ( ?getA . { @access(A) ; @access(B) ; !data . serve }
        + ?getB . { @access(B) ; @access(A) ; !data . serve }
        + ?quit )
    }
    """)

repository = Repository({
    "honest": honest_node,
    "replicating": replicating_node,
})

focused_analyst = parse(
    "open storage with wall { !getA . ?data . !getA . ?data . !quit }",
    policies={"wall": wall})

roaming_analyst = parse(
    "open storage with wall { !getA . ?data . !getB . ?data . !quit }",
    policies={"wall": wall})

print("== focused analyst (A, A) ==")
verdict = verify_client(focused_analyst, repository, location="focused")
for analysis in verdict.result.valid_plans + verdict.result.invalid_plans:
    print(" ", analysis.explain())
assert verdict.verified
assert verdict.plan is not None
assert verdict.plan.plan.lookup("storage") == "honest"

print("\n== roaming analyst (A, B) ==")
verdict = verify_client(roaming_analyst, repository, location="roaming")
for analysis in verdict.result.valid_plans + verdict.result.invalid_plans:
    print(" ", analysis.explain())
assert not verdict.verified, "the wall forbids touching both datasets"

print("\n== whole-network verdict (Section 5) ==")
report = verify_network({"focused": focused_analyst,
                         "roaming": roaming_analyst}, repository)
print(report.report())
assert not report.verified  # the roaming analyst spoils it

#!/usr/bin/env python3
"""An e-commerce checkout with nested sessions and an authorization policy.

Scenario: a shopper opens a session with a *store*; to capture the
payment the store itself opens a nested session with one of two *payment
gateways* (mirroring the broker/hotel nesting of the paper).  The shopper
imposes the policy "a charge may only happen after an authorization"
(``require_before(auth, charge)``) on the whole session — including,
thanks to history dependence, everything the nested gateway does.

The repository publishes:

* ``fastpay``   — authorizes, then charges (policy-abiding);
* ``sketchpay`` — charges straight away (violates the policy);
* ``retrypay``  — compliant with the store only partially: it may also
  answer ``retry``, which the store cannot handle (the ``Del``
  phenomenon of the paper's hotel S2).

Plan synthesis must route the nested request to ``fastpay`` only.

Run with::

    python examples/payment_gateway.py
"""

from repro import (Component, Configuration, Simulator, parse,
                   plan_is_valid_exhaustive)
from repro.analysis.verification import verify_client
from repro.policies import require_before

# Charging requires a prior authorization, anywhere in the history.
phi = require_before("auth", "charge")

shopper = parse(
    """
    open checkout with phi {
        !order . (?receipt . !ack + ?declined)
    }
    """,
    policies={"phi": phi})

store = parse(
    """
    ?order .
    open capture {
        !amount . (?ok + ?fail)
    } ;
    (!receipt . ?ack ++ !declined)
    """)

fastpay = parse("?amount . { @auth(99) ; @charge(99) ; (!ok ++ !fail) }")
sketchpay = parse("?amount . { @charge(99) ; (!ok ++ !fail) }")
retrypay = parse(
    "?amount . { @auth(99) ; @charge(99) ; (!ok ++ !fail ++ !retry) }")

from repro.network.repository import Repository  # noqa: E402

repository = Repository({
    "store": store,
    "fastpay": fastpay,
    "sketchpay": sketchpay,
    "retrypay": retrypay,
})

print("== plan synthesis for the shopper ==")
verdict = verify_client(shopper, repository, location="shopper")
for analysis in verdict.result.invalid_plans + verdict.result.valid_plans:
    print(" ", analysis.explain())

assert verdict.verified
best = verdict.plan
assert best is not None and best.plan.lookup("capture") == "fastpay"
print(f"\nchosen plan: {best.plan}")

# Cross-check the static verdicts against exhaustive exploration.
print("\n== cross-validation against the exhaustive oracle ==")
network = Configuration.of(Component.client("shopper", shopper))
for analysis in verdict.result.valid_plans + verdict.result.invalid_plans:
    oracle = plan_is_valid_exhaustive(network, analysis.plan, repository)
    agree = "agree" if oracle == analysis.valid else "DISAGREE"
    print(f"  {analysis.plan}: static={analysis.valid} oracle={oracle} "
          f"[{agree}]")
    assert oracle == analysis.valid

# Run the verified plan unmonitored; the nested session's events land in
# the shopper's history, wrapped in the policy framing.
simulator = Simulator(network, best.plan, repository, monitored=False,
                      seed=3)
simulator.run()
assert simulator.is_terminated() and simulator.all_histories_valid()
print(f"\nunmonitored run history: {simulator.histories()[0]}")

#!/usr/bin/env python3
"""Failover in action: a crashed hotel service, recovered by re-planning.

A variation of the paper's hotel-booking module (Section 2) where the
client's policy admits *two* interchangeable hotels.  We verify the
module, crash the hotel the chosen valid plan routes to, and watch the
:class:`~repro.resilience.supervisor.Supervisor` recover: bounded retry
first (the crash does not heal), then compensation — the open sessions
close cleanly, keeping the history valid — and failover to the other
hotel through the memoized planner.  The run completes with a valid
history, without a single security violation: the paper's valid-plan
guarantee, preserved across partial failure.

Run with::

    python examples/flaky_booking.py
"""

from repro.analysis.verification import verify_network
from repro.core.validity import is_valid
from repro.network.repository import Repository
from repro.paper import figure2
from repro.policies.library import hotel_policy
from repro.resilience import Fault, FaultPlan, Supervisor, run_chaos

# --- The module: one client, a broker, two acceptable hotels --------------

# φ(∅, 60, 80): nobody black-listed; violated only by a price above 60
# followed by a rating below 80.
policy = hotel_policy(set(), 60, 80)
client = figure2.client("1", policy)

repository = Repository({
    figure2.LOC_BROKER: figure2.broker(),
    "ls_alpha": figure2.hotel(7, 55, 70),   # price fine -> acceptable
    "ls_beta": figure2.hotel(8, 50, 90),    # price fine -> acceptable
})
clients = {"lc": client}

print("== Verification: two interchangeable valid plans ==")
verdict = verify_network(clients, repository)
assert verdict.verified
result = verdict.clients[0].result
for analysis in result.valid_plans:
    print(f"  valid plan: {analysis.plan}")
plans = verdict.plan_vector()
primary = plans[0].lookup("3")
print(f"chosen plan routes the booking to {primary}")

# --- Crash the chosen hotel and let the supervisor recover ----------------

print(f"\n== Crashing {primary} at tick 0; supervised run ==")
fault_plan = FaultPlan((Fault("crash", location=primary),))
supervisor = Supervisor(clients, plans, repository,
                        fault_plan=fault_plan, seed=11)
outcome = supervisor.run()

for episode in outcome.episodes:
    print(f"  {episode.describe()}")
print(f"status: {outcome.status} after {outcome.steps} step(s), "
      f"{outcome.retries} retr(ies), {outcome.replans} failover(s)")
history = outcome.histories[0]
print(f"client history: {history}")
print(f"history valid: {is_valid(history)}")

assert outcome.status == "completed"
assert outcome.replans == 1
assert is_valid(history)
failover = supervisor._plans[0].lookup("3")
assert failover != primary
print(f"failed over {primary} -> {failover}  ✓")

# --- The same resilience, statistically: a seeded chaos run ---------------

print("\n== 25 seeded chaos trials (crash + drop + stall) ==")
report = run_chaos(clients, repository, trials=25, seed=11,
                   module="flaky_booking")
print(f"outcomes: {report.outcomes}")
print(f"invariant holds: {report.invariant_holds} "
      f"({report.security_violations} security violations, "
      f"{report.undiagnosed} undiagnosed, "
      f"{report.invalid_histories} invalid histories)")
assert report.invariant_holds

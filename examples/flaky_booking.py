#!/usr/bin/env python3
"""Failover in action: a crashed hotel service, recovered by re-planning.

A variation of the paper's hotel-booking module (Section 2) where the
client's policy admits *two* interchangeable hotels.  We verify the
module, crash the hotel the chosen valid plan routes to, and watch the
:class:`~repro.resilience.supervisor.Supervisor` recover: bounded retry
first (the crash does not heal), then compensation — the open sessions
close cleanly, keeping the history valid — and failover to the other
hotel through the memoized planner.  The run completes with a valid
history, without a single security violation: the paper's valid-plan
guarantee, preserved across partial failure.

The second half shows the ladder's *first* rung — reversible sessions.
A client that chose a branch whose reply a fault withholds does not
have to throw its session away: the supervisor rewinds to the
checkpointed choice and takes the untried branch, and when a second
fault lands *during* that rollback, the episode falls down the full
ladder (rollback → retry → failover) with each rung counted distinctly.

Run with::

    python examples/flaky_booking.py
"""

from repro.analysis.verification import verify_network
from repro.core.syntax import external, internal, receive, request, send
from repro.core.validity import is_valid
from repro.network.repository import Repository
from repro.paper import figure2
from repro.policies.library import hotel_policy
from repro.resilience import Fault, FaultPlan, Supervisor, run_chaos

# --- The module: one client, a broker, two acceptable hotels --------------

# φ(∅, 60, 80): nobody black-listed; violated only by a price above 60
# followed by a rating below 80.
policy = hotel_policy(set(), 60, 80)
client = figure2.client("1", policy)

repository = Repository({
    figure2.LOC_BROKER: figure2.broker(),
    "ls_alpha": figure2.hotel(7, 55, 70),   # price fine -> acceptable
    "ls_beta": figure2.hotel(8, 50, 90),    # price fine -> acceptable
})
clients = {"lc": client}

print("== Verification: two interchangeable valid plans ==")
verdict = verify_network(clients, repository)
assert verdict.verified
result = verdict.clients[0].result
for analysis in result.valid_plans:
    print(f"  valid plan: {analysis.plan}")
plans = verdict.plan_vector()
primary = plans[0].lookup("3")
print(f"chosen plan routes the booking to {primary}")

# --- Crash the chosen hotel and let the supervisor recover ----------------

print(f"\n== Crashing {primary} at tick 0; supervised run ==")
fault_plan = FaultPlan((Fault("crash", location=primary),))
supervisor = Supervisor(clients, plans, repository,
                        fault_plan=fault_plan, seed=11)
outcome = supervisor.run()

for episode in outcome.episodes:
    print(f"  {episode.describe()}")
print(f"status: {outcome.status} after {outcome.steps} step(s), "
      f"{outcome.retries} retr(ies), {outcome.replans} failover(s)")
history = outcome.histories[0]
print(f"client history: {history}")
print(f"history valid: {is_valid(history)}")

assert outcome.status == "completed"
assert outcome.replans == 1
assert is_valid(history)
failover = supervisor._plans[0].lookup("3")
assert failover != primary
print(f"failed over {primary} -> {failover}  ✓")

# --- The same resilience, statistically: a seeded chaos run ---------------

print("\n== 25 seeded chaos trials (crash + drop + stall) ==")
report = run_chaos(clients, repository, trials=25, seed=11,
                   module="flaky_booking")
print(f"outcomes: {report.outcomes}")
print(f"invariant holds: {report.invariant_holds} "
      f"({report.security_violations} security violations, "
      f"{report.undiagnosed} undiagnosed, "
      f"{report.invalid_histories} invalid histories)")
assert report.invariant_holds

# --- Reversible sessions: rewind the choice instead of replanning ---------

# A branchy service: after a short handshake the client internally
# chooses one of two branches; the worker offers both.  When a fault
# strands the chosen branch, the *session itself* holds the way out —
# the supervisor rewinds to the checkpoint pushed at the choice and
# takes the untried branch, instead of compensating the whole session.


def branchy_booking():
    body = internal(("go_a", receive("ok_a")), ("go_b", receive("ok_b")))
    for index in (1, 0):
        body = send(f"prep{index}", receive(f"ready{index}", body))
    return request("r", None, body)


def branchy_service():
    body = external(("go_a", send("ok_a")), ("go_b", send("ok_b")))
    for index in (1, 0):
        body = receive(f"prep{index}", send(f"ready{index}", body))
    return body


rb_clients = {"lc": branchy_booking()}
rb_repository = Repository({"wa": branchy_service()})
rb_verdict = verify_network(rb_clients, rb_repository)
assert rb_verdict.verified
rb_plans = rb_verdict.plan_vector()

# Permanently drop the reply of branch a; seed 3 makes the scheduler
# pick exactly that branch first.
drop_ok_a = FaultPlan((Fault("drop", location="wa", channel="ok_a"),))

print("\n== Rollback: the dropped branch is rewound, not replanned ==")
rb_supervisor = Supervisor(rb_clients, rb_plans, rb_repository,
                           fault_plan=drop_ok_a, seed=3)
rb_outcome = rb_supervisor.run()
for episode in rb_outcome.episodes:
    print(f"  {episode.describe()}")
print(f"status: {rb_outcome.status} after {rb_outcome.steps} step(s); "
      f"{rb_supervisor.checkpoints_pushed} checkpoint(s) pushed, "
      f"{rb_outcome.rollbacks} rollback(s), "
      f"{rb_outcome.replans} failover(s)")
print(f"history valid: {is_valid(rb_outcome.histories[0])}")

assert rb_outcome.status == "completed"
assert rb_outcome.rollbacks == 1 and rb_outcome.replans == 0
assert rb_supervisor.checkpoints_pushed >= 1
assert is_valid(rb_outcome.histories[0])

# The same run with the checkpoint rung disabled: one worker, a
# permanent drop — retry cannot heal it and there is nowhere to fail
# over to, so the supervisor gives up (diagnosed, history still valid).
no_rb = Supervisor(rb_clients, rb_plans, rb_repository,
                   fault_plan=drop_ok_a, rollback=False, seed=3).run()
print(f"without rollback: {no_rb.status} — {no_rb.diagnosis}")
assert no_rb.status == "aborted" and no_rb.diagnosed
assert is_valid(no_rb.histories[0])

# --- A fault that lands DURING the rollback: down the whole ladder --------

# Two workers this time, so failover has somewhere to go.  The second
# drop arms while the first rollback is waiting out its backoff delay,
# blocking the rewound alternative too: the episode walks every rung —
# rollback, then retries, then failover — each counted distinctly.

print("\n== Fault during rollback: rollback -> retry -> failover ==")
pair_repository = Repository({"wa": branchy_service(),
                              "wb": branchy_service()})
assert verify_network(rb_clients, pair_repository).verified
from repro.core.plans import Plan, PlanVector
pair_plans = PlanVector.of(Plan.of({"r": "wa"}))
drop_both = FaultPlan((
    Fault("drop", location="wa", channel="ok_a"),
    Fault("drop", location="wa", channel="go_b", at_step=7)))
ladder = Supervisor(rb_clients, pair_plans, pair_repository,
                    fault_plan=drop_both, seed=3).run()
episode, = ladder.episodes
print(f"  {episode.describe()}")
print(f"status: {ladder.status}; counters: "
      f"{ladder.rollbacks} rollback(s), {ladder.retries} retr(ies), "
      f"{ladder.replans} failover(s)")

assert ladder.status == "completed"
assert (ladder.rollbacks, ladder.retries, ladder.replans) == (1, 3, 1)
assert episode.outcome == "failed-over"
assert all(is_valid(history) for history in ladder.histories)
print("ladder walked in order, history valid  ✓")

#!/usr/bin/env python3
"""The programming model: services as λ-programs (paper, Section 3).

"Services are represented by λ-expressions, and a type and effect system
extracts their abstract behaviour, in the form of history expressions."
This example writes the paper's hotel-booking participants as programs
in the service λ-calculus, lets the type-and-effect system extract their
history expressions, proves the extractions behaviourally equal to the
hand-written Figure 2 terms, and runs the usual verification pipeline on
the extracted repository.

Run with::

    python examples/lambda_services.py
"""

from repro.contracts.lts import bisimilar, build_lts
from repro.core.semantics import step
from repro.lam import (BOOL, UNIT, UNIT_VALUE, app, cond, evt, extract,
                       fix, infer, offer, open_session, recv, send,
                       seq_terms, var)
from repro.lang.pretty import pretty
from repro.network.repository import Repository
from repro.paper import figure2

# --- the client, as a program ---------------------------------------------

phi1 = figure2.policy_c1()
client_program = open_session("1", phi1, seq_terms(
    send("Req"),
    offer(("CoBo", send("Pay")),
          ("NoAv", UNIT_VALUE))))

client_effect = extract(client_program)
print("client effect:", pretty(client_effect))
assert bisimilar(build_lts(client_effect, step),
                 build_lts(figure2.client_1(), step))
print("  ≈ Figure 2's C1 (strongly bisimilar)\n")

# --- the broker: the answer is an internal decision ------------------------
# The broker decides which answer to relay; the conditional's branches
# join into the internal choice ⊕ of Figure 2 (`rooms_available` is a
# free boolean of the program, supplied through the typing environment).

broker_program = seq_terms(
    offer(("Req", UNIT_VALUE)),
    open_session("3", None, seq_terms(
        send("IdC"),
        offer(("Bok", UNIT_VALUE), ("UnA", UNIT_VALUE)))),
    cond(var("rooms_available"),
         seq_terms(send("CoBo"), offer(("Pay", UNIT_VALUE))),
         send("NoAv")))

broker_effect = extract(broker_program, env={"rooms_available": BOOL})
print("broker effect:", pretty(broker_effect))
assert bisimilar(build_lts(broker_effect, step),
                 build_lts(figure2.broker(), step))
print("  ≈ Figure 2's Br (strongly bisimilar)\n")

# --- a hotel, with its internal decision -----------------------------------

def hotel_program(identifier, price, rating):
    return seq_terms(
        evt("sgn", identifier), evt("p", price), evt("ta", rating),
        offer(("IdC", cond(var("rooms_available"),
                           send("Bok"), send("UnA")))))

hotel_effect = extract(hotel_program(3, 90, 100),
                       env={"rooms_available": BOOL})
print("hotel S3 effect:", pretty(hotel_effect))
assert bisimilar(build_lts(hotel_effect, step),
                 build_lts(figure2.hotel_3(), step))
print("  ≈ Figure 2's S3 (strongly bisimilar)\n")

# --- a recursive service and its μ-closed latent effect --------------------

ticker = fix("serve", "u", UNIT, UNIT,
             offer(("go", seq_terms(evt("tick"), send("ack"),
                                    app(var("serve"), UNIT_VALUE))),
                   ("stop", UNIT_VALUE)))
judgement = infer(ticker)
print("recursive worker type:", judgement.type)

# --- verify the extracted repository end to end -----------------------------

environment = {"rooms_available": BOOL}
repository = Repository({
    "lbr": broker_effect,
    "ls3": hotel_effect,
})
from repro.analysis.verification import verify_client  # noqa: E402

verdict = verify_client(client_effect, repository,
                        location=figure2.LOC_CLIENT_1)
assert verdict.verified
print("\nplan for the extracted network:", verdict.plan.plan)
print("the λ-pipeline reproduces the paper's verification end to end.")

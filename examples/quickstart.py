#!/usr/bin/env python3
"""Quickstart: verify a tiny client/worker network end to end.

Covers the whole pipeline in ~60 lines: write behaviours in the surface
syntax, attach a usage policy, check compliance, synthesise a valid plan,
and run the network with the monitor switched off.

Run with::

    python examples/quickstart.py
"""

from repro import (Component, Configuration, Plan, Repository, Simulator,
                   check_compliance, parse, pretty, project)
from repro.analysis.verification import verify_client
from repro.policies import never_after

# A policy: once the worker has archived the job, it must not modify it.
phi = never_after("archive", "modify")

# The client opens one session (request "r"), ships a job and waits for
# either a success or a failure notification.
client = parse(
    "open r with phi { !job . (?done + ?failed) }",
    policies={"phi": phi})

# Two candidate workers are published in the repository.  The sloppy one
# modifies the job after archiving it — a policy violation; the good one
# archives last.
good_worker = parse("?job . { @modify(1) ; @archive(1) ; !done }")
sloppy_worker = parse("?job . { @archive(1) ; @modify(1) ; !failed }")
repository = Repository({"good": good_worker, "sloppy": sloppy_worker})

# --- contracts and compliance -------------------------------------------

request_body = client.body  # the behaviour inside open … close
print("client contract:", pretty(project(request_body)))
print("good contract:  ", pretty(project(good_worker)))

for name in ("good", "sloppy"):
    verdict = check_compliance(request_body, repository[name])
    print(f"client ⊢ {name}: {verdict.compliant}")

# --- plan synthesis (the paper's Section 5) ------------------------------

verdict = verify_client(client, repository, location="me")
assert verdict.verified, "expected a valid plan"
plan = verdict.plan.plan
print("valid plan:", plan)                       # r[good]
assert plan == Plan.of({"r": "good"})

for analysis in verdict.result.invalid_plans:
    print("rejected:", analysis.explain())

# --- run without a monitor ----------------------------------------------

network = Configuration.of(Component.client("me", client))
simulator = Simulator(network, plan, repository, monitored=False, seed=7)
simulator.run()
assert simulator.is_terminated()
assert simulator.all_histories_valid()
print("unmonitored run:", simulator.histories()[0])
print("network terminated successfully — no monitor was needed.")

#!/usr/bin/env python3
"""Extensions in action: budgets, cost-aware planning, bounded capacity.

The paper's Section 5 names two lines of future work — quantitative
security policies (ref. [14]) and bounded service availability.  This
example exercises both on a document-signing brokerage:

* a client imposes a **budget policy** (each crypto operation costs 3,
  each disk write 1, at most 7 in total per session) — compiled to an
  ordinary usage automaton, so the unmodified planner enforces it;
* among the *valid* plans, the **cost-aware planner** picks the cheapest
  by worst-case session cost;
* finally, with two clients running concurrently, **capacity checking**
  verifies the chosen plan vector against declared per-service limits.

Run with::

    python examples/priced_brokerage.py
"""

from repro import parse
from repro.analysis.capacity import check_capacities
from repro.analysis.verification import verify_client
from repro.network.repository import Repository
from repro.quantitative import (CostModel, budget_policy,
                                cheapest_valid_plan, priced_valid_plans)

# Each crypto op costs 3, each write costs 1; sessions may spend ≤ 7.
budget = budget_policy("budget7", {"crypto": 3, "write": 1}, 7)
model = CostModel.of({"crypto": 3, "write": 1})

client = parse(
    "open sign with budget7 { !doc . (?signed + ?rejected) }",
    policies={"budget7": budget})

repository = Repository({
    # one signature, one write: cost 4 — cheap and within budget
    "lean": parse(
        "?doc . { @crypto(1) ; @write(1) ; (!signed ++ !rejected) }"),
    # double-signs and journals twice: cost 8 — busts the budget
    "paranoid": parse(
        "?doc . { @crypto(1) ; @crypto(2) ; @write(1) ; @write(2) ;"
        "  (!signed ++ !rejected) }"),
    # signs once but writes three times: cost 6 — valid but pricier
    "chatty": parse(
        "?doc . { @crypto(1) ; @write(1) ; @write(2) ; @write(3) ;"
        "  (!signed ++ !rejected) }"),
})

print("== plan synthesis under the budget policy ==")
verdict = verify_client(client, repository, location="alice")
for analysis in verdict.result.valid_plans + verdict.result.invalid_plans:
    print(" ", analysis.explain())
valid_locations = {a.plan.lookup("sign") for a in verdict.result.valid_plans}
assert valid_locations == {"lean", "chatty"}
assert "paranoid" not in valid_locations  # rejected by the budget

print("\n== cost-aware ranking of the valid plans ==")
for priced in priced_valid_plans(client, repository, model,
                                 location="alice"):
    print(f"  {priced}")
best = cheapest_valid_plan(client, repository, model, location="alice")
assert best is not None
assert best.plan.lookup("sign") == "lean" and best.cost == 4
print(f"chosen: {best}")

print("\n== capacity check for two concurrent clients ==")
client_b = parse(
    "open sign2 with budget7 { !doc . (?signed + ?rejected) }",
    policies={"budget7": budget})
vector = [(client, best.plan),
          (client_b, best.plan.__class__.single("sign2", "lean"))]
report = check_capacities(vector, repository, {"lean": 1})
print(report)
assert not report.feasible                       # both route to 'lean'
assert report.oversubscribed() == ("lean",)

# Spread the load: the second client uses the pricier-but-valid service.
from repro.core.plans import Plan  # noqa: E402

vector = [(client, best.plan), (client_b, Plan.single("sign2", "chatty"))]
report = check_capacities(vector, repository,
                          {"lean": 1, "chatty": 1})
print()
print(report)
assert report.feasible
print("\nload spread across services: plan vector feasible.")

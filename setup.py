"""Setuptools shim (the package metadata lives in pyproject.toml)."""
from setuptools import setup

setup()

"""Experiment E3 — extension: the subcontract preorder and discovery.

The contract theory the paper builds on [12] uses a refinement preorder
for service discovery; this bench measures the meet-state refinement
check against its quantified definition and the discovery sweep over a
repository.

Expected shape: the direct check is polynomial in the contract state
spaces; deciding the same relation by quantifying over all 127 depth-2
clients costs two-plus orders of magnitude more; discovery scales
linearly in repository size.
"""

import random

from repro.core.compliance import compliant
from repro.core.syntax import EPSILON, external, internal
from repro.contracts.subcontract import subcontract, substitutable_services
from repro.network.repository import Repository

from workloads import wide_client, wide_server


def generate(depth):
    if depth == 0:
        return [EPSILON]
    subs = generate(depth - 1)
    out = [EPSILON]
    for kind in (internal, external):
        for channel in ("a", "b"):
            for sub in subs:
                out.append(kind((channel, sub)))
        for sub1 in subs:
            for sub2 in subs:
                out.append(kind(("a", sub1), ("b", sub2)))
    return out


UNIVERSE = generate(2)
RNG = random.Random(5)
PAIRS = [(RNG.choice(UNIVERSE), RNG.choice(UNIVERSE)) for _ in range(40)]


def test_e3_direct_refinement_check(benchmark):
    verdicts = benchmark(lambda: [subcontract(h1, h2)
                                  for h1, h2 in PAIRS])
    positive = sum(verdicts)
    print(f"\nE3 — {positive}/{len(PAIRS)} refinements hold")
    assert 0 < positive < len(PAIRS)


def test_e3_quantified_definition_baseline(benchmark):
    """The literal '∀ client' definition on the same pairs — the cost the
    meet-state characterisation avoids."""
    clients = UNIVERSE

    def run():
        return [all(not compliant(c, h1) or compliant(c, h2)
                    for c in clients)
                for h1, h2 in PAIRS[:8]]  # 8 pairs already dwarf E3-direct

    quantified = benchmark(run)
    direct = [subcontract(h1, h2) for h1, h2 in PAIRS[:8]]
    assert quantified == direct


def test_e3_structured_refinement(benchmark):
    """Width/depth-structured contracts: a server refined by pruning
    outputs at every round."""
    smaller = wide_server(3, 3)
    larger = wide_server(2, 3)  # fewer outputs offered per round

    def run():
        return subcontract(smaller, larger), subcontract(larger, smaller)

    forward, backward = benchmark(run)
    assert not forward and not backward  # different answer alphabets


def test_e3_discovery_sweep(benchmark):
    advertised = internal(("ok", EPSILON), ("err", EPSILON))
    pool = {f"svc{i}": UNIVERSE[i * 3 % len(UNIVERSE)]
            for i in range(40)}
    pool["refined"] = internal(("ok", EPSILON))
    repo = Repository(pool)
    matches = benchmark(substitutable_services, advertised, repo)
    assert "refined" in matches
    print(f"E3 — discovery: {len(matches)}/{len(repo)} services "
          "substitutable")

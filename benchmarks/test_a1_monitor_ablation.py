"""Experiment A1 — ablation of the headline claim: under a valid plan,
"there is no need for any execution monitor at run-time".

Runs the same networks monitored (the angelic semantics re-checks
validity at every step) and unmonitored (what a statically verified
deployment does), asserting

* identical outcomes — same termination, same final histories under a
  deterministic scheduler, all histories valid either way;
* the unmonitored run is strictly cheaper — the measurable dividend the
  static analysis pays.
"""

import time

from repro.core.plans import Plan, PlanVector
from repro.network.config import Component, Configuration
from repro.network.repository import Repository
from repro.network.simulator import Simulator
from repro.paper import figure2

from workloads import pumping_client, recursive_ticker


def paper_setup():
    plans = PlanVector.of(figure2.plan_pi1(), figure2.plan_pi2_valid())
    return figure2.initial_configuration(), plans, figure2.repository()


def long_run_setup(rounds=40):
    client = pumping_client(rounds)
    repo = Repository({"srv": recursive_ticker()})
    config = Configuration.of(Component.client("me", client))
    return config, Plan.single("r", "srv"), repo


def run(config, plans, repo, monitored, seed=11):
    simulator = Simulator(config, plans, repo, monitored=monitored,
                          seed=seed)
    simulator.run(max_steps=5_000)
    return simulator


def test_a1_paper_network_monitored(benchmark):
    config, plans, repo = paper_setup()
    simulator = benchmark(run, config, plans, repo, True)
    assert simulator.is_terminated()
    assert simulator.all_histories_valid()


def test_a1_paper_network_unmonitored(benchmark):
    config, plans, repo = paper_setup()
    simulator = benchmark(run, config, plans, repo, False)
    assert simulator.is_terminated()
    assert simulator.all_histories_valid()  # valid plan: no monitor needed


def test_a1_long_run_monitored(benchmark):
    config, plans, repo = long_run_setup()
    simulator = benchmark(run, config, plans, repo, True)
    assert simulator.is_terminated()


def test_a1_long_run_unmonitored(benchmark):
    config, plans, repo = long_run_setup()
    simulator = benchmark(run, config, plans, repo, False)
    assert simulator.is_terminated()
    assert simulator.all_histories_valid()


def test_a1_outcomes_identical_and_overhead_positive(benchmark):
    """The experiment's headline row: same outcomes, monitored costs
    more.  (The benchmark measures the pair; the ratio is printed.)"""
    config, plans, repo = long_run_setup(rounds=30)

    def both():
        start = time.perf_counter()
        monitored = run(config, plans, repo, True)
        monitored_time = time.perf_counter() - start
        start = time.perf_counter()
        unmonitored = run(config, plans, repo, False)
        unmonitored_time = time.perf_counter() - start
        return monitored, unmonitored, monitored_time, unmonitored_time

    monitored, unmonitored, mon_t, unmon_t = benchmark(both)
    assert monitored.is_terminated() and unmonitored.is_terminated()
    assert monitored.histories() == unmonitored.histories()
    print(f"\nA1 — monitored {mon_t * 1e3:.1f} ms vs unmonitored "
          f"{unmon_t * 1e3:.1f} ms (overhead {mon_t / unmon_t:.1f}x); "
          "outcomes identical")
    assert mon_t > unmon_t

"""Experiment F2 — Figure 2: the hotel network and Section 2's claims.

Regenerates (and times) the two matrices Section 2 states in prose:

* the compliance matrix hotel ⊢-with-broker (S2 is the only failure);
* the per-client policy-satisfaction matrix (S1/S4 violate φ1; S1/S3
  violate φ2).
"""

from repro.analysis.requests import extract_requests
from repro.core.compliance import check_compliance, compliant_coinductive
from repro.paper import figure2

EXPECTED_COMPLIANCE = {"ls1": True, "ls2": False, "ls3": True, "ls4": True}

EXPECTED_SECURITY = {
    # (policy name, hotel) -> respects?
    "phi1": {"ls1": False, "ls2": True, "ls3": True, "ls4": False},
    "phi2": {"ls1": False, "ls2": True, "ls3": False, "ls4": True},
}


def compliance_matrix(repo, broker_body):
    return {location: check_compliance(broker_body,
                                       repo[location]).compliant
            for location in figure2.LOC_HOTELS}


def test_f2_compliance_matrix(benchmark, repo):
    (broker_request,) = extract_requests(figure2.broker())
    matrix = benchmark(compliance_matrix, repo, broker_request.body)
    print("\nF2 — Br ⊢ hotel:")
    for location, verdict in matrix.items():
        marker = "" if verdict else "   <- the Del message (paper: S2)"
        print(f"  {location}: {verdict}{marker}")
    assert matrix == EXPECTED_COMPLIANCE


def test_f2_compliance_matrix_coinductive(benchmark, repo):
    """Same matrix through the Definition-4 decider (Theorem 1 says the
    timings may differ but the verdicts may not)."""
    (broker_request,) = extract_requests(figure2.broker())

    def run():
        return {location: compliant_coinductive(broker_request.body,
                                                repo[location])
                for location in figure2.LOC_HOTELS}

    assert benchmark(run) == EXPECTED_COMPLIANCE


def security_matrix():
    from repro.core.actions import Event
    traces = {
        "ls1": (Event("sgn", (1,)), Event("p", (45,)), Event("ta", (80,))),
        "ls2": (Event("sgn", (2,)), Event("p", (70,)), Event("ta", (100,))),
        "ls3": (Event("sgn", (3,)), Event("p", (90,)), Event("ta", (100,))),
        "ls4": (Event("sgn", (4,)), Event("p", (50,)), Event("ta", (90,))),
    }
    policies = {"phi1": figure2.policy_c1(), "phi2": figure2.policy_c2()}
    return {name: {location: policy.respects(trace)
                   for location, trace in traces.items()}
            for name, policy in policies.items()}


def test_f2_security_matrix(benchmark):
    matrix = benchmark(security_matrix)
    print("\nF2 — hotel trace respects client policy:")
    for name, row in matrix.items():
        print(f"  {name}: " + "  ".join(f"{loc}:{val}"
                                        for loc, val in row.items()))
    assert matrix == EXPECTED_SECURITY


def test_f2_client_broker_compliance(benchmark, repo, c1):
    """Both clients are compliant with the broker."""
    (info,) = extract_requests(c1)

    def run():
        return check_compliance(info.body,
                                repo[figure2.LOC_BROKER]).compliant

    assert benchmark(run) is True

"""Experiment P1 — Section 5: valid-plan synthesis on the paper network.

Runs the full static analysis (enumerate → compliance per request →
security model checking) for both clients and checks it derives exactly
the plans Section 2 discusses:

* C1: π1 = {1↦ℓbr, 3↦ℓs3} is the unique valid plan;
* C2: {2↦ℓbr, 3↦ℓs2} rejected (compliance), {2↦ℓbr, 3↦ℓs3} rejected
  (security), {2↦ℓbr, 3↦ℓs4} valid.
"""

from repro.analysis.planner import analyze_plan, find_valid_plans
from repro.analysis.verification import verify_network
from repro.paper import figure2


def test_p1_client1_synthesis(benchmark, repo, c1):
    result = benchmark(find_valid_plans, c1, repo,
                       location=figure2.LOC_CLIENT_1)
    print("\nP1 — plans for C1:")
    for analysis in result.valid_plans + result.invalid_plans:
        print(f"  {analysis.explain()}")
    assert [a.plan for a in result.valid_plans] == [figure2.plan_pi1()]
    assert len(result.invalid_plans) == 8


def test_p1_client2_synthesis(benchmark, repo, c2):
    result = benchmark(find_valid_plans, c2, repo,
                       location=figure2.LOC_CLIENT_2)
    assert [a.plan for a in result.valid_plans] == \
        [figure2.plan_pi2_valid()]
    rejected = {str(a.plan): a for a in result.invalid_plans}
    bad_compliance = rejected[str(figure2.plan_pi2_bad_compliance())]
    assert not bad_compliance.compliant and bad_compliance.secure
    bad_security = rejected[str(figure2.plan_pi2_bad_security())]
    assert bad_security.compliant and not bad_security.secure


def test_p1_single_plan_analysis(benchmark, repo, c1):
    """Cost of analysing one candidate plan (the repeated inner step of
    synthesis)."""
    analysis = benchmark(analyze_plan, c1, figure2.plan_pi1(), repo,
                         figure2.LOC_CLIENT_1)
    assert analysis.valid


def test_p1_whole_network_verification(benchmark, repo, c1, c2):
    """The Section-5 end-to-end procedure over the client vector."""
    clients = {figure2.LOC_CLIENT_1: c1, figure2.LOC_CLIENT_2: c2}
    verdict = benchmark(verify_network, clients, repo)
    assert verdict.verified
    vector = verdict.plan_vector()
    assert vector[0] == figure2.plan_pi1()
    assert vector[1] == figure2.plan_pi2_valid()

#!/usr/bin/env python
"""The perf-regression sentinel: compare two ``BENCH_<n>.json`` files.

Benchmark trajectory files record wall-clock timings, which vary across
machines — but the *ratio* indicators inside them (eager/on-the-fly
speedups, compiled-core speedups, memoisation gains, monitor overheads,
amortisation factors) are timing ratios of two measurements taken on the
same machine in the same run, so they transfer.  The sentinel compares
every indicator both files share and fails when the candidate degraded
past the tolerance — a cheap tripwire against performance regressions
sneaking into a PR whose benchmarks "still ran fine" on faster hardware.

Usage::

    python benchmarks/check_regression.py                 # newest vs previous
    python benchmarks/check_regression.py --dir results/
    python benchmarks/check_regression.py --baseline BENCH_1.json \
        --candidate BENCH_2.json --tolerance 0.4 --format json

With no explicit files the two highest-numbered ``BENCH_<n>.json`` in
``--dir`` (default: the repository root) are compared, the highest as
the candidate.  ``--tolerance F`` is the allowed fractional degradation
(default 0.4: a higher-is-better indicator may drop to 60% of the
baseline; a 2x slowdown trips).  Only indicators present in *both*
files are compared, so a v1 baseline checks fewer dimensions than a v3
one — never spuriously fails on missing data.

Exit status: 0 — no regression; 1 — at least one indicator regressed;
2 — usage error (unreadable files, fewer than two benchmark files).
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from statistics import median

#: Identifier of the JSON verdict layout below.
VERDICT_SCHEMA = "repro-regression.v1"

#: Allowed fractional degradation before an indicator trips.
DEFAULT_TOLERANCE = 0.4


def _suite_key(suite: dict, key: str) -> float | None:
    value = suite.get(key)
    return float(value) if isinstance(value, (int, float)) else None


def _case_ratio_median(suite: dict, numerator: str,
                       denominator: str) -> float | None:
    ratios = []
    for case in suite.get("cases", ()):
        num = case.get(numerator)
        den = case.get(denominator)
        if isinstance(num, (int, float)) and isinstance(den, (int, float)) \
                and den > 0:
            ratios.append(num / den)
    return median(ratios) if ratios else None


def _case_key_median(suite: dict, key: str) -> float | None:
    values = [case[key] for case in suite.get("cases", ())
              if isinstance(case.get(key), (int, float))]
    return median(values) if values else None


#: (suite, indicator name, direction, extractor).  ``higher`` means a
#: larger value is better (a speedup); ``lower`` the opposite (an
#: overhead).  Extractors return ``None`` when the file lacks the data.
INDICATORS = (
    ("s1", "noncompliant_mean_speedup", "higher",
     lambda s: _suite_key(s, "noncompliant_mean_speedup")),
    ("s1", "compiled_median_speedup", "higher",
     lambda s: _suite_key(s, "compiled_median_speedup")),
    ("s2", "memoized_mean_speedup", "higher",
     lambda s: _suite_key(s, "memoized_mean_speedup")),
    ("s3", "monitor_median_speedup", "higher",
     lambda s: _case_ratio_median(s, "declarative_seconds",
                                  "monitor_seconds")),
    ("s3", "certifier_median_compiled_speedup", "higher",
     lambda s: _suite_key(s, "certifier_median_compiled_speedup")),
    ("s4", "median_pruning_ratio", "higher",
     lambda s: _suite_key(s, "median_pruning_ratio")),
    ("s4", "median_lookup_speedup", "higher",
     lambda s: _suite_key(s, "median_lookup_speedup")),
    ("r1", "fault_free_overhead", "lower",
     lambda s: _suite_key(s, "fault_free_overhead")),
    ("r2", "rollback_recovered_ratio", "higher",
     lambda s: _suite_key(s, "rollback_recovered_ratio")),
    ("r2", "median_steps_saving", "higher",
     lambda s: _suite_key(s, "median_steps_saving")),
    ("r2", "median_ticks_saving", "higher",
     lambda s: _suite_key(s, "median_ticks_saving")),
    ("b1", "median_amortisation", "higher",
     lambda s: _case_key_median(s, "amortisation")),
)


def load_bench(path: Path) -> dict:
    """The ``suites`` table of one benchmark file (raises on junk)."""
    report = json.loads(path.read_text())
    schema = str(report.get("schema", ""))
    if not schema.startswith("repro-bench."):
        raise ValueError(f"{path}: not a benchmark file "
                         f"(schema {schema!r})")
    return report.get("suites", {})


def compare(baseline: dict, candidate: dict,
            tolerance: float) -> list[dict]:
    """Per-indicator comparison records for every shared indicator."""
    records = []
    for suite_name, indicator, direction, extract in INDICATORS:
        base_suite = baseline.get(suite_name)
        cand_suite = candidate.get(suite_name)
        if not isinstance(base_suite, dict) \
                or not isinstance(cand_suite, dict):
            continue
        base_value = extract(base_suite)
        cand_value = extract(cand_suite)
        if base_value is None or cand_value is None or base_value <= 0:
            continue
        ratio = cand_value / base_value
        floor = 1.0 - tolerance
        if direction == "higher":
            ok = ratio >= floor
        else:
            ok = ratio <= 1.0 / floor
        records.append({"suite": suite_name, "indicator": indicator,
                        "direction": direction,
                        "baseline": base_value, "candidate": cand_value,
                        "ratio": ratio, "ok": ok})
    return records


def discover(directory: Path) -> tuple[Path, Path]:
    """(baseline, candidate): the two highest-numbered BENCH files."""
    numbered = []
    for path in directory.glob("BENCH_*.json"):
        match = re.fullmatch(r"BENCH_(\d+)\.json", path.name)
        if match:
            numbered.append((int(match.group(1)), path))
    numbered.sort()
    if len(numbered) < 2:
        raise ValueError(
            f"{directory}: need at least two BENCH_<n>.json files to "
            f"compare (found {len(numbered)})")
    return numbered[-2][1], numbered[-1][1]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="compare ratio indicators of two benchmark files")
    parser.add_argument("--dir", default=None,
                        help="directory holding BENCH_<n>.json files "
                             "(default: the repository root)")
    parser.add_argument("--baseline", default=None,
                        help="explicit baseline file (overrides --dir "
                             "discovery)")
    parser.add_argument("--candidate", default=None,
                        help="explicit candidate file")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="allowed fractional degradation "
                             "(default %(default)s)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    args = parser.parse_args(argv)

    if (args.baseline is None) != (args.candidate is None):
        print("error: --baseline and --candidate go together",
              file=sys.stderr)
        return 2
    try:
        if args.baseline is not None:
            baseline_path = Path(args.baseline)
            candidate_path = Path(args.candidate)
        else:
            directory = (Path(args.dir) if args.dir is not None
                         else Path(__file__).resolve().parent.parent)
            baseline_path, candidate_path = discover(directory)
        baseline = load_bench(baseline_path)
        candidate = load_bench(candidate_path)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    records = compare(baseline, candidate, args.tolerance)
    regressions = [record for record in records if not record["ok"]]
    verdict = {
        "schema": VERDICT_SCHEMA,
        "baseline": baseline_path.name,
        "candidate": candidate_path.name,
        "tolerance": args.tolerance,
        "indicators": records,
        "compared": len(records),
        "regressions": len(regressions),
        "ok": not regressions,
    }
    if args.format == "json":
        print(json.dumps(verdict, indent=2, sort_keys=True))
    else:
        print(f"regression check: {candidate_path.name} vs "
              f"{baseline_path.name} (tolerance {args.tolerance})")
        for record in records:
            marker = "ok  " if record["ok"] else "FAIL"
            print(f"  {marker} {record['suite']}."
                  f"{record['indicator']:<36} "
                  f"{record['baseline']:>12.4f} -> "
                  f"{record['candidate']:>12.4f}  "
                  f"(x{record['ratio']:.3f}, {record['direction']} "
                  f"is better)")
        summary = ("no regressions" if not regressions
                   else f"{len(regressions)} regression(s)")
        print(f"{len(records)} indicator(s) compared: {summary}")
    return 1 if regressions else 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Experiment T2 — Theorem 2 / Corollary 1: compliance is an invariant,
hence a safety property.

Measures the practical consequence the paper highlights: because
conditions (i)/(ii) inspect one state at a time, compliance checking is
a reachability scan with a per-state predicate — no history, no cycle
detection, no Büchi machinery.  The benchmark compares (a) building the
product + invariant scan with (b) the per-state predicate cost alone,
and asserts the invariant formulation equals language emptiness on the
whole battery.
"""

from repro.contracts.contract import Contract
from repro.contracts.product import build_product

from workloads import (almost_compliant_server, wide_client, wide_server)

PAIRS = [
    (wide_client(2, 4), wide_server(2, 4)),
    (wide_client(3, 3), wide_server(3, 3)),
    (wide_client(3, 3), almost_compliant_server(3, 3)),
    (wide_client(4, 2), almost_compliant_server(4, 2)),
]


def products():
    return [build_product(Contract(c), Contract(s)) for c, s in PAIRS]


def test_t2_product_construction(benchmark):
    built = benchmark(products)
    sizes = [len(product.lts) for product in built]
    print(f"\nT2 — product sizes: {sizes}")
    assert all(size >= 1 for size in sizes)


def test_t2_invariant_scan_equals_emptiness(benchmark):
    built = products()

    def scan():
        results = []
        for product in built:
            reachable = product.lts.reachable_from(product.initial)
            invariant = not any(product.violates_invariant(state)
                                for state in reachable)
            results.append(invariant)
        return results

    invariant_verdicts = benchmark(scan)
    emptiness_verdicts = [product.language_is_empty()
                          for product in built]
    print(f"T2 — invariant: {invariant_verdicts}")
    print(f"T2 — emptiness: {emptiness_verdicts}")
    assert invariant_verdicts == emptiness_verdicts
    assert invariant_verdicts == [True, True, False, False]


def test_t2_per_state_predicate_is_cheap(benchmark):
    """The safety predicate needs only the state's enabled labels."""
    product = products()[1]
    states = list(product.lts.states)

    def predicate_sweep():
        return sum(product.violates_invariant(state) for state in states)

    bad = benchmark(predicate_sweep)
    assert bad == 0

"""Workload generators shared by the benchmark harness.

The paper has no measured evaluation, so the scaling experiments (S1–S3)
define synthetic families that stress each analysis along its natural
size parameter: contract width/depth for the product automaton, fan-out
and request count for plan synthesis, and policy count / trace length
for validity checking.
"""

from __future__ import annotations

from repro.core.syntax import (EPSILON, Framing, HistoryExpression, Var,
                               event, external, internal, mu, receive,
                               request, send, seq)
from repro.network.repository import Repository
from repro.policies.library import at_most, never_after


def wide_client(width: int, depth: int) -> HistoryExpression:
    """A client protocol with *width* alternatives per round and *depth*
    request/response rounds.

    Each answer has a branch-specific acknowledgement, so contract states
    grow Θ(width · depth) and the product explores width² pairings per
    round rather than collapsing structurally-equal branches."""
    term: HistoryExpression = EPSILON
    for level in range(depth):
        answers = tuple(
            (f"ans_{level}_{i}", send(f"fin_{level}_{i}", term))
            for i in range(width))
        term = internal(*(
            (f"msg_{level}_{i}", external(*answers))
            for i in range(width)))
    return term


def wide_server(width: int, depth: int) -> HistoryExpression:
    """The matching server for :func:`wide_client` (fully compliant)."""
    term: HistoryExpression = EPSILON
    for level in range(depth):
        replies = tuple(
            (f"ans_{level}_{i}", receive(f"fin_{level}_{i}", term))
            for i in range(width))
        term = external(*(
            (f"msg_{level}_{i}", internal(*replies))
            for i in range(width)))
    return term


def almost_compliant_server(width: int, depth: int,
                            surprise_level: int = 0) -> HistoryExpression:
    """Like :func:`wide_server` but round *surprise_level* sends one
    extra, unhandled answer.

    Levels count inside-out: the default 0 plants the defect in the
    deepest round, so non-compliance is only detectable at full depth;
    ``depth - 1`` plants it in the first round, where an on-the-fly
    check finds it after a couple of synchronisations."""
    term: HistoryExpression = EPSILON
    for level in range(depth):
        labels = [(f"ans_{level}_{i}", receive(f"fin_{level}_{i}", term))
                  for i in range(width)]
        if level == surprise_level:
            labels.append((f"surprise_{level}", EPSILON))
        replies = tuple(labels)
        term = external(*(
            (f"msg_{level}_{i}", internal(*replies))
            for i in range(width)))
    return term


def chain_client(requests: int) -> HistoryExpression:
    """A client issuing *requests* sequential sessions (r0 … rN-1)."""
    term: HistoryExpression = EPSILON
    for index in reversed(range(requests)):
        term = seq(request(f"r{index}", None,
                           seq(send("go"), receive("done"))), term)
    return term


def worker_pool(services: int, defective_every: int = 0) -> Repository:
    """*services* interchangeable workers; every *defective_every*-th one
    (when non-zero) answers on the wrong channel, making it
    non-compliant."""
    pool = {}
    for index in range(services):
        if defective_every and index % defective_every == defective_every - 1:
            pool[f"w{index}"] = receive("go", send("wrong"))
        else:
            pool[f"w{index}"] = receive("go", send("done"))
    return Repository(pool)


def branchy_session(preamble: int = 2) -> HistoryExpression:
    """The client-side session body of :func:`branchy_client`:
    *preamble* request/response rounds of setup work, then an internal
    choice between two service branches (``go_a``/``go_b``).

    The preamble is what makes the R2 comparison interesting — a
    checkpoint rollback rewinds only to the choice point, while
    compensation plus re-planning repeats the whole preamble from
    scratch."""
    body: HistoryExpression = internal(
        ("go_a", receive("ok_a")),
        ("go_b", receive("ok_b")))
    for index in reversed(range(preamble)):
        body = send(f"prep{index}", receive(f"ready{index}", body))
    return body


def branchy_client(preamble: int = 2) -> HistoryExpression:
    """A client with one session offering two interchangeable branches
    after a linear preamble — the R2 (reversible recovery) workload."""
    return request("r", None, branchy_session(preamble))


def branchy_worker(preamble: int = 2) -> HistoryExpression:
    """The matching worker for :func:`branchy_client`: serves the
    preamble, then offers *both* branches — so when a fault withholds
    one branch's reply, the other remains a genuine way out."""
    body: HistoryExpression = external(
        ("go_a", send("ok_a")),
        ("go_b", send("ok_b")))
    for index in reversed(range(preamble)):
        body = receive(f"prep{index}", send(f"ready{index}", body))
    return body


def branchy_chain(rounds: int, preamble: int = 2) -> HistoryExpression:
    """*rounds* sequential branchy sessions (requests r0 … rN-1) — long
    enough for sampled chaos fault windows to intersect the run."""
    term: HistoryExpression = EPSILON
    for index in reversed(range(rounds)):
        term = seq(request(f"r{index}", None, branchy_session(preamble)),
                   term)
    return term


def policy_heavy_client(policies: int, events_per_policy: int
                        ) -> HistoryExpression:
    """A client whose single session stacks *policies* distinct framings,
    each guarding a block of benign events — stresses the per-policy
    runner bookkeeping of the validity checkers."""
    body: HistoryExpression = seq(*(
        event("tick", i) for i in range(events_per_policy)))
    for index in range(policies):
        body = Framing(at_most("boom", index + 1), body)
    return request("r", never_after("alpha", "omega"),
                   seq(send("go"), body, receive("done")))


def policy_grid_client(policies: int, width: int,
                       depth: int) -> HistoryExpression:
    """:func:`wide_client` with a policy-tracked event on every branch,
    under one ``at_most`` framing per event class.

    Each round's branch *i* fires ``op{i % policies}`` before its
    answer, so the ⟨residual, monitor⟩ product pairs the Θ(width·depth)
    branch-specific residuals with every reachable per-class count
    vector — the scaling family for the validity *certifiers* (S3),
    where :func:`policy_heavy_client` only yields a linear chain.  The
    budgets are ``depth + 1``, so every run is valid and certification
    must exhaust the whole product."""
    term: HistoryExpression = EPSILON
    for level in range(depth):
        answers = tuple(
            (f"ans_{level}_{i}", send(f"fin_{level}_{i}", term))
            for i in range(width))
        term = internal(*(
            (f"msg_{level}_{i}",
             seq(event(f"op{i % policies}"), external(*answers)))
            for i in range(width)))
    body = term
    for index in range(policies):
        body = Framing(at_most(f"op{index}", depth + 1), body)
    return body


def long_trace_service(length: int) -> HistoryExpression:
    """A service that fires *length* events before answering."""
    return receive("go", seq(*(event("step", i) for i in range(length)),
                             send("done")))


def recursive_ticker(exit_channel: str = "stop") -> HistoryExpression:
    """μk.(go.tick.k + stop): the recursive workhorse for long runs."""
    return mu("k", external(
        ("go", seq(event("tick"), send("ack", Var("k")))),
        (exit_channel, EPSILON)))


def pumping_client(rounds: int) -> HistoryExpression:
    """Drives :func:`recursive_ticker` for *rounds* iterations."""
    term: HistoryExpression = send("stop")
    for _ in range(rounds):
        term = send("go", receive("ack", term))
    return request("r", at_most("tick", rounds), term)

"""Experiment F3 — Figure 3: the thirteen-step computation fragment.

Replays the fragment on the network semantics under ~π = [π1, π2] and
checks the resulting histories against the ones the figure displays,
measuring the interpreter cost of the scripted run and of a full run to
termination.
"""

from repro.core.actions import Event, FrameClose, FrameOpen
from repro.paper import figure2, figure3


def test_f3_scripted_replay(benchmark):
    simulator, fired = benchmark(figure3.replay)
    assert len(fired) == 13
    phi1, phi2 = figure2.policy_c1(), figure2.policy_c2()
    history_c1, history_c2 = simulator.histories()
    print("\nF3 — histories after step 13:")
    print(f"  component 1: {history_c1}")
    print(f"  component 2: {history_c2}")
    assert tuple(history_c1) == (
        FrameOpen(phi1), Event("sgn", (3,)), Event("p", (90,)),
        Event("ta", (100,)), FrameClose(phi1))
    assert tuple(history_c2) == (FrameOpen(phi2),)


def test_f3_replay_then_run_to_completion(benchmark):
    def run():
        simulator, _ = figure3.replay()
        simulator.run(max_steps=500)
        return simulator

    simulator = benchmark(run)
    assert simulator.is_terminated()
    assert simulator.all_histories_valid()
    for history in simulator.histories():
        assert history.is_balanced()


def test_f3_unmonitored_replay(benchmark):
    """The same fragment with the validity filter off — identical
    histories, measurably cheaper stepping (the A1 ablation quantifies
    this on full runs)."""
    simulator, fired = benchmark(figure3.replay, monitored=False)
    assert len(fired) == 13
    monitored, _ = figure3.replay(monitored=True)
    assert simulator.histories() == monitored.histories()

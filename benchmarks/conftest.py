"""Benchmark-suite configuration: make the workload helpers importable
and expose the Figure 2 fixtures."""

import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from repro.paper import figure2  # noqa: E402


@pytest.fixture(scope="session")
def repo():
    return figure2.repository()


@pytest.fixture(scope="session")
def c1():
    return figure2.client_1()


@pytest.fixture(scope="session")
def c2():
    return figure2.client_2()

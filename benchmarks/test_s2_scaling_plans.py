"""Experiment S2 — (synthetic) plan-synthesis scaling.

k sequential requests over a pool of s interchangeable workers give sᵏ
candidate plans; with every third worker defective, the analysis must
reject the plans that touch one.  Expected shape: candidate count (and
synthesis time) grows as sᵏ, the valid fraction as ((s - s/3)/s)ᵏ, and
bounding the search (max_plans) caps the cost.
"""

import pytest

from repro.analysis.planner import enumerate_plans, find_valid_plans

from workloads import chain_client, worker_pool

SHAPES = [(1, 4), (2, 4), (3, 4), (2, 8)]


@pytest.mark.parametrize("requests,services", SHAPES,
                         ids=[f"k{k}s{s}" for k, s in SHAPES])
def test_s2_enumeration(benchmark, requests, services):
    client = chain_client(requests)
    repo = worker_pool(services)
    plans = benchmark(lambda: list(enumerate_plans(client, repo)))
    assert len(plans) == services ** requests


@pytest.mark.parametrize("requests,services", SHAPES,
                         ids=[f"k{k}s{s}" for k, s in SHAPES])
def test_s2_full_synthesis(benchmark, requests, services):
    client = chain_client(requests)
    repo = worker_pool(services, defective_every=3)
    result = benchmark(find_valid_plans, client, repo)
    defective = services // 3
    expected_valid = (services - defective) ** requests
    total = services ** requests
    print(f"\nS2 k={requests} s={services}: {len(result.valid_plans)}"
          f"/{total} plans valid")
    assert len(result.valid_plans) == expected_valid
    assert len(result.invalid_plans) == total - expected_valid


def test_s2_bounded_search(benchmark):
    """max_plans caps the analysed candidates (anytime synthesis)."""
    client = chain_client(3)
    repo = worker_pool(6, defective_every=3)
    result = benchmark(find_valid_plans, client, repo, max_plans=10)
    assert (len(result.valid_plans) + len(result.invalid_plans)) == 10

"""Experiment S3 — (synthetic) validity-checking scaling.

Compares the three validity checkers as histories get longer and the
stack of active policies grows:

* the declarative checker (the literal prefix-quantified definition,
  quadratic in the history length);
* the incremental :class:`ValidityMonitor` (what a run-time monitor
  pays, linear per event);
* the static model checkers (session-product and BPA) that quantify over
  *all* traces at once.

Expected shape: the monitor beats the declarative checker with a gap
that widens with trace length; the static checkers' cost tracks the
product of term size and policy-runner state, independent of run count.
"""

import pytest

from repro.analysis.security import check_security
from repro.analysis.session_product import assemble
from repro.bpa.modelcheck import check_validity_bpa
from repro.core.actions import Event, FrameClose, FrameOpen
from repro.core.plans import Plan
from repro.core.validity import History, ValidityMonitor, is_valid
from repro.network.repository import Repository
from repro.policies.library import at_most, never_after

from workloads import long_trace_service, policy_heavy_client

LENGTHS = [50, 200, 800]


def make_history(length, policies=3):
    labels = []
    stack = []
    for index in range(policies):
        policy = at_most(f"boom{index}", index + 1)
        labels.append(FrameOpen(policy))
        stack.append(policy)
    labels.extend(Event("tick", (i % 5,)) for i in range(length))
    while stack:
        labels.append(FrameClose(stack.pop()))
    return History(labels)


@pytest.mark.parametrize("length", LENGTHS,
                         ids=[f"len{n}" for n in LENGTHS])
def test_s3_declarative_checker(benchmark, length):
    history = make_history(length)
    assert benchmark(is_valid, history)


@pytest.mark.parametrize("length", LENGTHS,
                         ids=[f"len{n}" for n in LENGTHS])
def test_s3_incremental_monitor(benchmark, length):
    history = make_history(length)

    def run():
        monitor = ValidityMonitor()
        for label in history:
            monitor.extend(label)
        return monitor.valid

    assert benchmark(run)


@pytest.mark.parametrize("policies", [1, 3, 6],
                         ids=["p1", "p3", "p6"])
def test_s3_static_session_checker(benchmark, policies):
    client = policy_heavy_client(policies, events_per_policy=4)
    repo = Repository({"srv": long_trace_service(6)})
    lts = assemble(client, Plan.single("r", "srv"), repo)
    report = benchmark(check_security, lts)
    assert report.secure
    print(f"\nS3 static p={policies}: {report.states_checked} product "
          f"states checked")


@pytest.mark.parametrize("policies", [1, 3, 6],
                         ids=["p1", "p3", "p6"])
def test_s3_bpa_checker(benchmark, policies):
    term = policy_heavy_client(policies, events_per_policy=4)
    report = benchmark(check_validity_bpa, term)
    assert report.valid


def test_s3_monitor_vs_declarative_gap(benchmark):
    """The series the experiment reports: per-length cost ratio.  The
    benchmark measures the monitor; the declarative cost is measured
    inline for the printed comparison."""
    import time
    history = make_history(800)

    def monitor_run():
        monitor = ValidityMonitor()
        for label in history:
            monitor.extend(label)
        return monitor.valid

    assert benchmark(monitor_run)
    start = time.perf_counter()
    is_valid(history)
    declarative = time.perf_counter() - start
    start = time.perf_counter()
    monitor_run()
    incremental = time.perf_counter() - start
    print(f"\nS3 len=800: declarative {declarative * 1e3:.1f} ms vs "
          f"monitor {incremental * 1e3:.1f} ms "
          f"({declarative / max(incremental, 1e-9):.0f}x)")
    assert declarative > incremental

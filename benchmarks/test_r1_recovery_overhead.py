"""Experiment R1 — the cost of resilience.

Measures the supervisor's overhead over the bare simulator in three
regimes:

* **fault-free** — same module, same seed: the supervision tax (fault
  filtering, clock keeping, breaker checks) with nothing to recover;
* **transient fault** — a short drop the backoff waits out: the price of
  a retry episode;
* **failover** — a crashed service with a healthy alternative: the full
  compensation + re-planning path, which must still complete.

The aggregate runner (``run_benchmarks.py --suites r1``) records the
same quantities into the BENCH json trajectory.
"""

import time

from repro.core.plans import Plan, PlanVector
from repro.network.config import Component, Configuration
from repro.network.repository import Repository
from repro.network.simulator import Simulator
from repro.paper import figure2
from repro.policies.library import hotel_policy
from repro.resilience import Fault, FaultPlan, Supervisor


def paper_setup():
    clients = {figure2.LOC_CLIENT_1: figure2.client_1(),
               figure2.LOC_CLIENT_2: figure2.client_2()}
    plans = PlanVector.of(figure2.plan_pi1(), figure2.plan_pi2_valid())
    return clients, plans, figure2.repository()


def flaky_setup():
    repository = Repository({
        figure2.LOC_BROKER: figure2.broker(),
        "ls_alpha": figure2.hotel(7, 55, 70),
        "ls_beta": figure2.hotel(8, 50, 90),
    })
    clients = {"lc": figure2.client("1", hotel_policy(set(), 60, 80))}
    plans = PlanVector.of(Plan.of({"1": figure2.LOC_BROKER,
                                   "3": "ls_alpha"}))
    return clients, plans, repository


def bare_run(clients, plans, repository, seed=11):
    configuration = Configuration.of(*(
        Component.client(location, term)
        for location, term in clients.items()))
    simulator = Simulator(configuration, plans, repository, seed=seed)
    simulator.run(max_steps=5_000)
    return simulator


def supervised_run(clients, plans, repository, fault_plan=FaultPlan(),
                   seed=11):
    supervisor = Supervisor(clients, plans, repository,
                            fault_plan=fault_plan, seed=seed)
    return supervisor.run()


def test_r1_bare_simulator(benchmark):
    clients, plans, repository = paper_setup()
    simulator = benchmark(bare_run, clients, plans, repository)
    assert simulator.is_terminated()


def test_r1_supervised_no_faults(benchmark):
    clients, plans, repository = paper_setup()
    result = benchmark(supervised_run, clients, plans, repository)
    assert result.status == "completed"
    assert result.episodes == []


def test_r1_supervised_transient_fault(benchmark):
    clients, plans, repository = paper_setup()
    fault_plan = FaultPlan((Fault("drop", location="ls3", channel="Bok",
                                  at_step=0, duration=2),))
    result = benchmark(supervised_run, clients, plans, repository,
                       fault_plan)
    assert result.status == "completed"


def test_r1_supervised_failover(benchmark):
    clients, plans, repository = flaky_setup()
    fault_plan = FaultPlan((Fault("crash", location="ls_alpha"),))
    result = benchmark(supervised_run, clients, plans, repository,
                       fault_plan)
    assert result.status == "completed"
    assert result.replans == 1


def test_r1_overhead_is_bounded(benchmark):
    """The headline row: fault-free supervision costs something, but the
    run outcome is identical and the tax stays within an order of
    magnitude of the bare simulator."""
    clients, plans, repository = paper_setup()

    def both():
        start = time.perf_counter()
        simulator = bare_run(clients, plans, repository)
        bare_time = time.perf_counter() - start
        start = time.perf_counter()
        result = supervised_run(clients, plans, repository)
        supervised_time = time.perf_counter() - start
        return simulator, result, bare_time, supervised_time

    simulator, result, bare_time, supervised_time = benchmark(both)
    assert simulator.is_terminated()
    assert result.status == "completed"
    print(f"\nR1 — bare {bare_time * 1e3:.1f} ms vs supervised "
          f"{supervised_time * 1e3:.1f} ms "
          f"(overhead {supervised_time / max(bare_time, 1e-9):.1f}x), "
          "fault-free")

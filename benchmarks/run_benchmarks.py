#!/usr/bin/env python
"""Benchmark trajectory runner: execute the S1/S2/S3 scaling suites and
emit a ``BENCH_<n>.json`` file, so performance PRs are measured against
the previous trajectory instead of asserted.

Unlike the pytest-benchmark suites (``test_s*.py``), which measure one
code path per test, this runner measures *pairs* of paths in the same
process and records their ratio:

* **S1** — product-automaton emptiness: every compliance engine
  (``onthefly``, ``eager``, ``gfp``, ``compiled`` — plus the compiled
  gfp relation) timed *warm* on the same cases, with the compiled
  engine's table-lowering time reported separately and verdict
  agreement asserted across all engines, on compliant pairs and on
  non-compliant pairs with deep and shallow counterexamples;
* **S2** — plan synthesis: ``find_valid_plans`` with memoisation and
  pruning off vs on (and, optionally, the parallel path), asserting the
  valid/invalid partitions agree;
* **S3** — validity: the declarative checker vs the incremental
  ``ValidityMonitor`` plus monitor snapshots (``copy``), and the
  *certifier* scaling family: the interpreted ⟨residual, monitor⟩
  product BFS vs the compiled interned one on ``policy_grid_client``,
  certificates asserted identical;
* **S4** — registry discovery: a signature-indexed
  :class:`ContractRegistry` populated with a seeded contract family,
  answering ``find_compliant``/``find_substitutable`` query batches via
  bucket pruning + fingerprint dedup vs the exhaustive all-pairs
  product/preorder baseline, match sets asserted identical;
* **R1** — resilience: the bare simulator vs the fault-free supervised
  run (the supervision tax), and the supervised run under a transient
  drop (retry) and a crash with an alternative (failover);
* **R2** — reversible recovery: checkpoint rollback vs
  replan-from-scratch on branchy workloads under permanent drops
  (recovered-session ratio, median steps/ticks to recover — all on the
  simulated clock), plus a seeded chaos comparison with rollback on vs
  off, compliance verdicts asserted identical across the four ordinary
  engines and both reversible deciders;
* **B1** — static certification: one ``certify_validity`` pass over the
  ⟨residual, monitor⟩ product vs K seeded monitor-checked random runs,
  asserting the verdicts agree and rejection witnesses replay.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py [--quick]
        [--output-dir DIR] [--suites s1,s2,s3,s4,r1,r2,b1] [--repeats N]

The output file is ``BENCH_<n>.json`` with the smallest unused ``n`` in
the output directory (repository root by default); see DESIGN.md
("Performance architecture") for how to read it.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

_HERE = Path(__file__).resolve().parent
_ROOT = _HERE.parent
for entry in (str(_ROOT / "src"), str(_HERE)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.analysis.planner import find_valid_plans  # noqa: E402
from repro.contracts.contract import (Contract,  # noqa: E402
                                      clear_contract_caches)
from repro.core import compliance  # noqa: E402
from repro.core.actions import Event, FrameClose, FrameOpen  # noqa: E402
from repro.core.compliance import check_compliance  # noqa: E402
from repro.core.validity import (History, ValidityMonitor,  # noqa: E402
                                 is_valid)
from repro.network.monitor import ReferenceMonitor  # noqa: E402
from repro.observability import (metrics_snapshot,  # noqa: E402
                                 reset_cache_stats, telemetry_session)
from repro.policies.library import at_most  # noqa: E402

from workloads import (almost_compliant_server, chain_client,  # noqa: E402
                       wide_client, wide_server, worker_pool)


def _clear_caches() -> None:
    """Reset every shared cache so timed runs start cold and comparable."""
    clear_contract_caches()
    compliance._cached_contract.cache_clear()
    reset_cache_stats()


def _instrumented(fn) -> dict:
    """Run ``fn()`` once under a fresh telemetry session, cold caches,
    and return the metrics snapshot (counters + cache hit/miss stats).

    Timed measurements stay *uninstrumented* — telemetry is scoped to
    this extra run only, so the recorded numbers describe the workload
    without perturbing the wall-clock comparisons.
    """
    _clear_caches()
    with telemetry_session():
        fn()
        return metrics_snapshot()


def _measure(fn, repeats: int) -> float:
    """Best-of-*repeats* wall time of ``fn()``, caches cleared per run."""
    best = float("inf")
    for _ in range(repeats):
        _clear_caches()
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _measure_warm(fn, repeats: int) -> float:
    """Best-of-*repeats* wall time of ``fn()`` with caches left *warm*:
    one untimed call builds whatever LTS/tables/memos the path needs, so
    the repeats time the solve alone.  Result memos are bypassed by the
    callers (``__wrapped__`` / engine internals), never by this helper —
    a warm interpreted run still re-steps and re-hashes per state, which
    is exactly the cost the compiled tables amortise."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2


# -- S1: product emptiness ---------------------------------------------------

S1_ENGINES = ("onthefly", "eager", "gfp", "compiled")


def run_s1(quick: bool, repeats: int) -> dict:
    from repro.compiled.search import compiled_relation, compiled_search
    from repro.compiled.tables import compile_contract
    from repro.contracts.product import (DEFAULT_STATE_LIMIT,
                                         search_product)
    from repro.staticcheck import compliance as static_compliance

    sizes = [(2, 2), (3, 3)] if quick else [(2, 2), (2, 4), (3, 3),
                                            (4, 2), (4, 3), (4, 4),
                                            (5, 4)]
    cases = []
    for width, depth in sizes:
        client = wide_client(width, depth)
        kinds = [
            ("compliant", wide_server(width, depth)),
            ("noncompliant_deep", almost_compliant_server(width, depth)),
            ("noncompliant_shallow",
             almost_compliant_server(width, depth,
                                     surprise_level=depth - 1))]
        if width * depth >= 20:
            # The headline size exists to exercise the largest compliant
            # product; the non-compliant kinds would add minutes of
            # eager/gfp full-product time without new information.
            kinds = kinds[:1]
        for kind, server in kinds:
            # Lower both contracts cold: the wall time of projecting,
            # building the LTSs and interning the tables is the price
            # the compiled engine pays exactly once per contract.
            _clear_caches()
            client_c, server_c = Contract(client), Contract(server)
            start = time.perf_counter()
            compiled_client = compile_contract(client_c)
            compiled_server = compile_contract(server_c)
            compile_seconds = time.perf_counter() - start

            cproj, sproj = client_c.term, server_c.term
            engine_seconds = {
                "onthefly": _measure_warm(
                    lambda: search_product(client_c, server_c), repeats),
                "eager": _measure_warm(
                    lambda: check_compliance(client_c, server_c,
                                             engine="eager"), repeats),
                "gfp": _measure_warm(
                    lambda: static_compliance._certify.__wrapped__(
                        cproj, sproj, DEFAULT_STATE_LIMIT), repeats),
                "compiled": _measure_warm(
                    lambda: compiled_search(compiled_client,
                                            compiled_server,
                                            DEFAULT_STATE_LIMIT),
                    repeats),
                "gfp_compiled": _measure_warm(
                    lambda: compiled_relation(compiled_client,
                                              compiled_server,
                                              DEFAULT_STATE_LIMIT),
                    repeats),
            }

            # Verdict agreement through the public decider, all engines.
            results = {engine: check_compliance(client, server,
                                                engine=engine)
                       for engine in S1_ENGINES}
            verdicts = {engine: result.compliant
                        for engine, result in results.items()}
            assert len(set(verdicts.values())) == 1, \
                (width, depth, kind, verdicts)
            result = results["onthefly"]
            assert result.explored_states == \
                results["compiled"].explored_states, (width, depth, kind)
            assert result.trace == results["compiled"].trace, \
                (width, depth, kind)

            metrics = _instrumented(
                lambda: check_compliance(client, server))
            onthefly = engine_seconds["onthefly"]
            compiled_solve = engine_seconds["compiled"]
            speedup = onthefly / max(compiled_solve, 1e-9)
            cases.append({
                "width": width, "depth": depth, "kind": kind,
                "compliant": result.compliant,
                "engine_seconds": engine_seconds,
                "compile_seconds": compile_seconds,
                "table_bytes": (compiled_client.table_bytes()
                                + compiled_server.table_bytes()),
                "eager_states": results["eager"].explored_states,
                "onthefly_states": result.explored_states,
                "verdicts_agree": True,
                "eager_over_onthefly": (engine_seconds["eager"]
                                        / max(onthefly, 1e-9)),
                "compiled_speedup": speedup,
                "metrics": metrics,
            })
            print(f"S1 w={width} d={depth} {kind:21s}: "
                  f"onthefly {onthefly * 1e3:8.2f} ms "
                  f"({result.explored_states:5d} st)  "
                  f"eager {engine_seconds['eager'] * 1e3:8.2f} ms  "
                  f"gfp {engine_seconds['gfp'] * 1e3:8.2f} ms  "
                  f"compiled {compiled_solve * 1e3:8.3f} ms "
                  f"(+{compile_seconds * 1e3:7.1f} ms compile)  "
                  f"{speedup:7.1f}x")
    noncompliant = [c for c in cases if not c["compliant"]]
    largest = max(c["width"] * c["depth"] for c in cases)
    largest_speedups = [c["compiled_speedup"] for c in cases
                        if c["width"] * c["depth"] == largest]
    return {
        "cases": cases,
        "verdicts_agree": True,
        "noncompliant_onthefly_faster": all(
            c["eager_over_onthefly"] > 1.0 for c in noncompliant),
        "noncompliant_mean_speedup": (
            sum(c["eager_over_onthefly"] for c in noncompliant)
            / len(noncompliant)),
        "compiled_median_speedup": _median(
            [c["compiled_speedup"] for c in cases]),
        "compiled_largest_case_speedup": _median(largest_speedups),
    }


# -- S2: plan synthesis ------------------------------------------------------

def _partition(result) -> tuple[frozenset, frozenset]:
    return (frozenset(a.plan for a in result.valid_plans),
            frozenset(a.plan for a in result.invalid_plans))


def run_s2(quick: bool, repeats: int) -> dict:
    shapes = [(2, 4), (2, 6)] if quick else [(2, 4), (3, 4), (2, 8),
                                             (3, 6)]
    cases = []
    for requests, services in shapes:
        client = chain_client(requests)
        repo = worker_pool(services, defective_every=3)
        eager = _measure(
            lambda: find_valid_plans(client, repo, memoize=False,
                                     prune=False),
            repeats)
        memoized = _measure(
            lambda: find_valid_plans(client, repo), repeats)
        parallel = _measure(
            lambda: find_valid_plans(client, repo, parallel=4), repeats)
        _clear_caches()
        baseline = find_valid_plans(client, repo, memoize=False,
                                    prune=False)
        fast = find_valid_plans(client, repo)
        assert _partition(baseline) == _partition(fast), \
            "memoised planner changed the valid/invalid partition"
        metrics = _instrumented(lambda: find_valid_plans(client, repo))
        metrics["planner"] = fast.metrics
        cases.append({
            "requests": requests, "services": services,
            "plans": len(baseline.valid_plans) + len(
                baseline.invalid_plans),
            "valid_plans": len(baseline.valid_plans),
            "eager_seconds": eager,
            "memoized_seconds": memoized,
            "parallel_seconds": parallel,
            "speedup": eager / max(memoized, 1e-9),
            "metrics": metrics,
        })
        print(f"S2 k={requests} s={services}: "
              f"unmemoized {eager * 1e3:8.2f} ms  "
              f"memoized {memoized * 1e3:8.2f} ms  "
              f"parallel(4) {parallel * 1e3:8.2f} ms  "
              f"{eager / max(memoized, 1e-9):5.1f}x")
    return {
        "cases": cases,
        "memoized_faster": all(c["speedup"] > 1.0 for c in cases),
        "memoized_mean_speedup": (
            sum(c["speedup"] for c in cases) / len(cases)),
    }


# -- S3: validity ------------------------------------------------------------

def _history(length: int, policies: int = 3) -> History:
    labels = []
    stack = []
    for index in range(policies):
        policy = at_most(f"boom{index}", index + 1)
        labels.append(FrameOpen(policy))
        stack.append(policy)
    labels.extend(Event("tick", (i % 5,)) for i in range(length))
    while stack:
        labels.append(FrameClose(stack.pop()))
    return History(labels)


def run_s3(quick: bool, repeats: int) -> dict:
    lengths = [100] if quick else [100, 400, 800]
    cases = []
    for length in lengths:
        history = _history(length)

        def monitor_run():
            monitor = ValidityMonitor()
            for label in history:
                monitor.extend(label)
            return monitor

        declarative = _measure(lambda: is_valid(history), repeats)
        incremental = _measure(monitor_run, repeats)
        monitor = monitor_run()
        snapshots = 200
        start = time.perf_counter()
        for _ in range(snapshots):
            monitor.copy()
        copy_seconds = (time.perf_counter() - start) / snapshots
        metrics = _instrumented(
            lambda: ReferenceMonitor().observe_all(history))
        cases.append({
            "length": length,
            "declarative_seconds": declarative,
            "monitor_seconds": incremental,
            "monitor_copy_seconds": copy_seconds,
            "speedup": declarative / max(incremental, 1e-9),
            "metrics": metrics,
        })
        print(f"S3 len={length}: declarative {declarative * 1e3:8.2f} ms  "
              f"monitor {incremental * 1e3:8.2f} ms  "
              f"copy {copy_seconds * 1e6:7.1f} us  "
              f"{declarative / max(incremental, 1e-9):5.1f}x")

    certifier_cases = _run_s3_certifiers(quick, repeats)
    return {
        "cases": cases,
        "monitor_faster": all(c["speedup"] > 1.0 for c in cases),
        "certifier_cases": certifier_cases,
        "certifier_median_compiled_speedup": _median(
            [c["compiled_speedup"] for c in certifier_cases]),
        "certifier_largest_case_speedup": certifier_cases[-1][
            "compiled_speedup"],
        "certificates_identical": True,
    }


def _run_s3_certifiers(quick: bool, repeats: int) -> list[dict]:
    """Interpreted vs compiled static validity certification on the
    ``policy_grid_client`` family.

    Both engines are timed warm through their solve paths (``_certify``
    unwrapped of its result memo; the compiled BFS with the term table
    prebuilt), the table-lowering time is reported separately, and the
    certificates — verdict, explored count, witness — are asserted
    identical."""
    from repro.compiled.validity import (_compile_term,
                                         compiled_certify_validity)
    from repro.staticcheck import validity as static_validity
    from repro.staticcheck.validity import (
        DEFAULT_STATE_LIMIT, certify_validity)

    from workloads import policy_grid_client

    grid = [(3, 3, 3)] if quick else [(3, 3, 3), (3, 3, 4), (2, 4, 4),
                                      (3, 4, 4)]
    certifier_cases = []
    for policies, width, depth in grid:
        term = policy_grid_client(policies, width, depth)
        _clear_caches()
        start = time.perf_counter()
        _compile_term(term)
        compile_seconds = time.perf_counter() - start
        interpreted = _measure_warm(
            lambda: static_validity._certify.__wrapped__(
                term, DEFAULT_STATE_LIMIT), repeats)
        compiled_solve = _measure_warm(
            lambda: compiled_certify_validity(term, DEFAULT_STATE_LIMIT),
            repeats)
        certificate = compiled_certify_validity(term, DEFAULT_STATE_LIMIT)
        reference = static_validity._certify.__wrapped__(
            term, DEFAULT_STATE_LIMIT)
        assert (reference.valid, reference.explored, reference.witness) \
            == (certificate.valid, certificate.explored,
                certificate.witness), (policies, width, depth)
        metrics = _instrumented(
            lambda: certify_validity(term, engine="compiled"))
        speedup = interpreted / max(compiled_solve, 1e-9)
        certifier_cases.append({
            "policies": policies, "width": width, "depth": depth,
            "valid": certificate.valid,
            "explored_states": certificate.explored,
            "interpreted_seconds": interpreted,
            "compiled_seconds": compiled_solve,
            "compile_seconds": compile_seconds,
            "compiled_speedup": speedup,
            "certificates_identical": True,
            "metrics": metrics,
        })
        print(f"S3 certify p={policies} w={width} d={depth}: "
              f"interpreted {interpreted * 1e3:8.2f} ms  "
              f"compiled {compiled_solve * 1e3:8.3f} ms "
              f"(+{compile_seconds * 1e3:7.1f} ms compile)  "
              f"({certificate.explored:5d} st)  {speedup:6.1f}x")
    return certifier_cases


# -- S4: registry discovery --------------------------------------------------

S4_CHANNELS = "abcdefgh"


def _s4_contract(rng, depth):
    """Seeded contract family for the registry scaling suite: the T1
    grammar plus guarded recursion, over per-contract channel subsets of
    an 8-channel pool so the population spreads across many signature
    buckets."""
    from repro.core.syntax import EPSILON, Seq, external, internal, mu

    if depth == 0:
        return EPSILON
    kind = rng.randrange(4)
    chans = rng.sample(S4_CHANNELS, rng.randint(1, 3))
    if kind == 0:
        return internal(*((c, _s4_contract(rng, depth - 1))
                          for c in chans))
    if kind == 1:
        return external(*((c, _s4_contract(rng, depth - 1))
                          for c in chans))
    if kind == 2:
        return mu("h", internal((chans[0],
                                 _s4_contract(rng, depth - 1))))
    return Seq(_s4_contract(rng, depth - 1),
               _s4_contract(rng, depth - 1))


def _s4_dual(term):
    from repro.core.actions import Receive, Send
    from repro.core.syntax import (EPSILON, ExternalChoice, InternalChoice,
                                   Mu, Seq, Var)

    if isinstance(term, (type(EPSILON), Var)):
        return term
    if isinstance(term, Seq):
        return Seq(_s4_dual(term.first), _s4_dual(term.second))
    if isinstance(term, Mu):
        return Mu(term.var, _s4_dual(term.body))
    flipped = tuple(
        (Receive(label.channel) if isinstance(label, Send)
         else Send(label.channel), _s4_dual(cont))
        for label, cont in term.branches)
    if isinstance(term, ExternalChoice):
        return InternalChoice(flipped)
    return ExternalChoice(flipped)


def run_s4(quick: bool, repeats: int) -> dict:
    """Signature-indexed registry discovery vs the all-pairs baseline.

    Populate a :class:`ContractRegistry` with a seeded contract family,
    then answer a mixed batch of ``find_compliant`` /
    ``find_substitutable`` queries two ways: through the indexed path
    (signature-bucket pruning, fingerprint dedup, verdict memo) and
    through the exhaustive per-entry product/preorder baseline.  Match
    sets are asserted identical query by query; reported per size are
    the pruning ratio (fraction of all-pairs product checks the index
    avoided) and the lookup speedup.  The verdict memo is cleared before
    every timed indexed pass, so the repeats time cold queries — the
    memo only shows up *within* a pass, exactly as a fresh query batch
    would experience it."""
    import random as _random

    from repro.registry import ContractRegistry

    sizes = [200, 400] if quick else [1_000, 10_000]
    per_kind = 3 if quick else 5
    cases = []
    for size in sizes:
        rng = _random.Random(0x54000 + size)
        terms = [_s4_contract(rng, rng.randint(1, 4))
                 for _ in range(size)]
        _clear_caches()
        registry = ContractRegistry()
        start = time.perf_counter()
        for index, term in enumerate(terms):
            registry.add(f"svc{index:05d}", term)
        build_seconds = time.perf_counter() - start

        # Query batch: signature-targeted positives (duals of members /
        # member contracts) mixed with free random contracts.
        queries = []
        members = rng.sample(range(size), per_kind * 2)
        for index in members[:per_kind]:
            queries.append(("compliant", _s4_dual(terms[index])))
        for index in members[per_kind:]:
            queries.append(("substitutable", terms[index]))
        for _ in range(per_kind - 1):
            queries.append(("compliant",
                            _s4_contract(rng, rng.randint(1, 3))))
            queries.append(("substitutable",
                            _s4_contract(rng, rng.randint(1, 3))))

        def indexed_pass():
            return [registry.find_compliant(term) if kind == "compliant"
                    else registry.find_substitutable(term)
                    for kind, term in queries]

        def exhaustive_pass():
            return [registry.exhaustive_compliant(term)
                    if kind == "compliant"
                    else registry.exhaustive_substitutable(term)
                    for kind, term in queries]

        indexed_seconds = float("inf")
        for _ in range(repeats):
            registry.clear_verdict_memo()
            start = time.perf_counter()
            results = indexed_pass()
            indexed_seconds = min(indexed_seconds,
                                  time.perf_counter() - start)
        exhaustive_seconds = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            baselines = exhaustive_pass()
            exhaustive_seconds = min(exhaustive_seconds,
                                     time.perf_counter() - start)

        for (kind, _), result, baseline in zip(queries, results,
                                               baselines):
            assert result.matches == baseline, \
                (size, kind, result.matches[:5], baseline[:5])

        product_checks = sum(r.product_checks for r in results)
        exhaustive_checks = size * len(queries)
        pruning = 1.0 - product_checks / exhaustive_checks
        speedup = exhaustive_seconds / max(indexed_seconds, 1e-9)
        stats = registry.stats()

        sample = terms[:min(size, 200)]

        def instrumented_run():
            small = ContractRegistry()
            for index, term in enumerate(sample):
                small.add(f"svc{index:05d}", term)
            small.find_compliant(_s4_dual(sample[0]))
            small.find_substitutable(sample[0])

        metrics = _instrumented(instrumented_run)
        cases.append({
            "entries": size,
            "queries": len(queries),
            "buckets": stats["buckets"],
            "canonical_classes": stats["canonical_classes"],
            "build_seconds": build_seconds,
            "indexed_seconds": indexed_seconds,
            "exhaustive_seconds": exhaustive_seconds,
            "lookup_speedup": speedup,
            "product_checks": product_checks,
            "exhaustive_checks": exhaustive_checks,
            "pruning_ratio": pruning,
            "verdicts_identical": True,
            "metrics": metrics,
        })
        print(f"S4 n={size}: build {build_seconds:7.2f} s  "
              f"indexed {indexed_seconds * 1e3:8.2f} ms  "
              f"exhaustive {exhaustive_seconds * 1e3:9.2f} ms  "
              f"pruning {pruning:.3f}  {speedup:7.1f}x")
    return {
        "cases": cases,
        "median_pruning_ratio": _median(
            [c["pruning_ratio"] for c in cases]),
        "median_lookup_speedup": _median(
            [c["lookup_speedup"] for c in cases]),
        "largest_case_pruning_ratio": cases[-1]["pruning_ratio"],
        "verdicts_identical": True,
    }


# -- R1: recovery overhead ---------------------------------------------------

def run_r1(quick: bool, repeats: int) -> dict:
    from repro.core.plans import Plan, PlanVector
    from repro.network.config import Component, Configuration
    from repro.network.repository import Repository
    from repro.network.simulator import Simulator
    from repro.paper import figure2
    from repro.policies.library import hotel_policy
    from repro.resilience import Fault, FaultPlan, Supervisor

    paper_clients = {figure2.LOC_CLIENT_1: figure2.client_1(),
                     figure2.LOC_CLIENT_2: figure2.client_2()}
    paper_plans = PlanVector.of(figure2.plan_pi1(),
                                figure2.plan_pi2_valid())
    paper_repo = figure2.repository()

    flaky_repo = Repository({
        figure2.LOC_BROKER: figure2.broker(),
        "ls_alpha": figure2.hotel(7, 55, 70),
        "ls_beta": figure2.hotel(8, 50, 90),
    })
    flaky_clients = {"lc": figure2.client("1", hotel_policy(set(),
                                                            60, 80))}
    flaky_plans = PlanVector.of(Plan.of({"1": figure2.LOC_BROKER,
                                         "3": "ls_alpha"}))

    def bare(clients, plans, repo, seed):
        configuration = Configuration.of(*(
            Component.client(location, term)
            for location, term in clients.items()))
        Simulator(configuration, plans, repo, seed=seed).run(
            max_steps=5_000)

    def supervised(clients, plans, repo, seed, fault_plan=FaultPlan()):
        return Supervisor(clients, plans, repo, fault_plan=fault_plan,
                          seed=seed).run()

    seeds = range(3) if quick else range(10)
    cases = []
    for name, clients, plans, repo, fault_plan, expect_replans in [
            ("paper_fault_free", paper_clients, paper_plans, paper_repo,
             FaultPlan(), 0),
            ("paper_transient_drop", paper_clients, paper_plans,
             paper_repo,
             FaultPlan((Fault("drop", location="ls3", channel="Bok",
                              at_step=0, duration=2),)), 0),
            ("flaky_failover", flaky_clients, flaky_plans, flaky_repo,
             FaultPlan((Fault("crash", location="ls_alpha"),)), 1)]:
        bare_seconds = _measure(
            lambda: [bare(clients, plans, repo, seed) for seed in seeds],
            repeats)
        supervised_seconds = _measure(
            lambda: [supervised(clients, plans, repo, seed, fault_plan)
                     for seed in seeds],
            repeats)
        results = [supervised(clients, plans, repo, seed, fault_plan)
                   for seed in seeds]
        assert all(result.status == "completed" for result in results)
        assert all(result.replans >= expect_replans
                   for result in results)
        metrics = _instrumented(
            lambda: supervised(clients, plans, repo, 0, fault_plan))
        cases.append({
            "scenario": name,
            "runs": len(list(seeds)),
            "bare_seconds": bare_seconds,
            "supervised_seconds": supervised_seconds,
            "overhead": supervised_seconds / max(bare_seconds, 1e-9),
            "retries": sum(result.retries for result in results),
            "replans": sum(result.replans for result in results),
            "metrics": metrics,
        })
        print(f"R1 {name:22s}: bare {bare_seconds * 1e3:8.2f} ms  "
              f"supervised {supervised_seconds * 1e3:8.2f} ms  "
              f"{supervised_seconds / max(bare_seconds, 1e-9):5.1f}x")
    fault_free = next(c for c in cases
                      if c["scenario"] == "paper_fault_free")
    return {
        "cases": cases,
        "fault_free_overhead": fault_free["overhead"],
        "all_supervised_runs_completed": True,
    }


# -- R2: reversible recovery vs replan-from-scratch --------------------------

def run_r2(quick: bool, repeats: int) -> dict:
    """Checkpoint rollback vs compensation + failover re-planning.

    Two crafted fault families over the branchy workload (a linear
    preamble, then an internal choice with two service branches, one of
    which a permanent ``drop`` withholds):

    * **single_worker_drop** — one worker only: rollback rewinds to the
      choice point and takes the live branch; the replan ladder has no
      alternative location and gives up, so rollback strictly wins the
      recovered-session ratio;
    * **failover_pair_drop** — a second worker exists: both ladders
      recover, but rollback rewinds past one wasted step where failover
      repeats the whole preamble from scratch, so rollback strictly
      wins steps-to-recover (and simulated-clock ticks).

    Plus a *sampled* chaos comparison (seeded ``drop`` plans over a
    3-round branchy chain) run once with rollback on and once off, the
    chaos invariant asserted in both modes.  All counts and tick totals
    are on the simulated clock — deterministic and machine-free; the
    wall-clock seconds per mode ride along as context.  Before any
    trial runs, the branchy pair's verdict is asserted identical across
    the four ordinary compliance engines and across the interpreted and
    compiled reversible deciders (compliance implies reversible
    compliance, so all six must say yes).
    """
    from repro.core.plans import Plan, PlanVector
    from repro.core.reversible import check_reversible
    from repro.network.repository import Repository
    from repro.resilience import Fault, FaultPlan, Supervisor, run_chaos

    from workloads import (branchy_chain, branchy_client, branchy_session,
                           branchy_worker)

    # -- verdict agreement: ordinary engines + reversible deciders ----------
    body, worker = branchy_session(), branchy_worker()
    ordinary = {engine: check_compliance(body, worker, engine=engine)
                for engine in S1_ENGINES}
    verdicts = {engine: result.compliant
                for engine, result in ordinary.items()}
    assert set(verdicts.values()) == {True}, verdicts
    interpreted = check_reversible(body, worker, engine="interpreted")
    compiled_rev = check_reversible(body, worker, engine="compiled")
    assert interpreted == compiled_rev, "reversible deciders disagree"
    assert interpreted.compliant, \
        "compliance must imply reversible compliance"

    clients = {"lc": branchy_client()}
    repo_single = Repository({"wa": branchy_worker()})
    repo_pair = Repository({"wa": branchy_worker(),
                            "wb": branchy_worker()})
    plans = PlanVector.of(Plan.of({"r": "wa"}))
    fault_plan = FaultPlan((Fault("drop", location="wa",
                                  channel="ok_a"),))

    def supervised(repo, seed, rollback):
        return Supervisor(clients, plans, repo, fault_plan=fault_plan,
                          rollback=rollback, seed=seed).run()

    seeds = range(4) if quick else range(12)
    cases = []
    for scenario, repo in (("single_worker_drop", repo_single),
                           ("failover_pair_drop", repo_pair)):
        modes = {}
        rollback_seed = None
        for mode, enabled in (("rollback", True), ("replan", False)):
            seconds = _measure(
                lambda: [supervised(repo, seed, enabled)
                         for seed in seeds], repeats)
            results = [supervised(repo, seed, enabled) for seed in seeds]
            disturbed = [r for r in results if r.episodes]
            recovered = [r for r in disturbed if r.completed]
            if mode == "rollback" and recovered:
                rollback_seed = next(seed for seed, r in zip(seeds,
                                                             results)
                                     if r.episodes and r.completed)
            modes[mode] = {
                "seconds": seconds,
                "runs": len(results),
                "completed": sum(1 for r in results if r.completed),
                "disturbed": len(disturbed),
                "recovered": len(recovered),
                "recovered_ratio": (len(recovered) / len(disturbed)
                                    if disturbed else None),
                "median_recovery_steps": (_median(
                    [float(r.steps) for r in recovered])
                    if recovered else None),
                "median_recovery_ticks": (_median(
                    [float(r.clock) for r in recovered])
                    if recovered else None),
                "rollbacks": sum(r.rollbacks for r in results),
                "retries": sum(r.retries for r in results),
                "replans": sum(r.replans for r in results),
            }
        assert rollback_seed is not None, scenario
        metrics = _instrumented(
            lambda: supervised(repo, rollback_seed, True))
        cases.append({
            "scenario": scenario,
            "seeds": len(list(seeds)),
            "modes": modes,
            "verdicts_agree": True,
            "metrics": metrics,
        })
        rb, rp = modes["rollback"], modes["replan"]
        print(f"R2 {scenario:20s}: rollback {rb['recovered']}/"
              f"{rb['disturbed']} recovered "
              f"({rb['median_recovery_steps'] or 0:.0f} st med)  "
              f"replan {rp['recovered']}/{rp['disturbed']} "
              f"({rp['median_recovery_steps'] or 0:.0f} st med)  "
              f"[{rb['seconds'] * 1e3:.1f} / {rp['seconds'] * 1e3:.1f} ms]")

    # -- sampled chaos: same seeds, rollback on vs off ----------------------
    chain_clients = {"lc": branchy_chain(3)}
    trials = 6 if quick else 16
    chaos = {}
    for mode, enabled in (("rollback", True), ("replan", False)):
        report = run_chaos(chain_clients, repo_pair, trials=trials,
                           seed=2026, kinds=("drop",), max_faults=2,
                           rollback=enabled, module="branchy-chain")
        assert report.invariant_holds, mode
        chaos[mode] = {
            "trials": trials,
            "outcomes": report.outcomes,
            "completed_ratio": (report.outcomes.get("completed", 0)
                                / trials),
            "rollbacks": sum(r.rollbacks for r in report.results),
            "retries": sum(r.retries for r in report.results),
            "replans": sum(r.replans for r in report.results),
            "invariant_holds": report.invariant_holds,
        }
        print(f"R2 chaos rollback={'on' if enabled else 'off'}: "
              f"{chaos[mode]['outcomes']}  "
              f"rollbacks {chaos[mode]['rollbacks']}  "
              f"retries {chaos[mode]['retries']}  "
              f"replans {chaos[mode]['replans']}")

    single = next(c for c in cases
                  if c["scenario"] == "single_worker_drop")["modes"]
    pair = next(c for c in cases
                if c["scenario"] == "failover_pair_drop")["modes"]
    rollback_ratio = _median(
        [c["modes"]["rollback"]["recovered_ratio"] for c in cases])
    replan_ratio = _median(
        [c["modes"]["replan"]["recovered_ratio"] for c in cases])
    steps_saving = (pair["replan"]["median_recovery_steps"]
                    / max(pair["rollback"]["median_recovery_steps"], 1e-9))
    ticks_saving = (pair["replan"]["median_recovery_ticks"]
                    / max(pair["rollback"]["median_recovery_ticks"], 1e-9))
    assert single["rollback"]["recovered_ratio"] \
        > single["replan"]["recovered_ratio"], \
        "rollback must beat replan on the recovered-session ratio"
    assert steps_saving > 1.0, \
        "rollback must beat replan on median steps-to-recover"
    return {
        "cases": cases,
        "chaos": chaos,
        "verdicts_agree": True,
        "reversible_engines_agree": True,
        "rollback_recovered_ratio": rollback_ratio,
        "replan_recovered_ratio": replan_ratio,
        "rollback_beats_replan_recovery": rollback_ratio > replan_ratio,
        "median_steps_saving": steps_saving,
        "median_ticks_saving": ticks_saving,
        "rollback_fewer_steps": steps_saving > 1.0,
    }


# -- B1: static certification vs dynamic monitoring --------------------------

def run_b1(quick: bool, repeats: int) -> dict:
    """Static validity certification vs monitor-based dynamic checking.

    The static certifier explores the ⟨residual, monitor⟩ product once
    and settles validity for *every* run; the dynamic baseline replays
    K seeded random runs through the concrete :class:`ValidityMonitor`
    and can only ever sample.  Reported per workload: wall time of both,
    the sampling factor K, verdict agreement, and (for invalid
    workloads) whether the static witness replays.
    """
    import random as _random

    from repro.core.actions import is_history_label
    from repro.core.semantics import step
    from repro.core.syntax import event, framing, seq as _seq
    from repro.core.validity import ValidityMonitor
    from repro.paper import figure2
    from repro.policies.library import at_most
    from repro.staticcheck import certify_validity

    from workloads import policy_heavy_client

    runs = 50 if quick else 200
    workloads = [
        ("figure2_c1", figure2.client_1()),
        ("figure2_c2", figure2.client_2()),
        ("policy_heavy", policy_heavy_client(4, 3)),
        ("invalid_at_most", framing(at_most("boom", 2),
                                    _seq(event("boom"), event("boom"),
                                         event("boom")))),
    ]
    cases = []
    for name, term in workloads:

        def dynamic(term=term):
            all_valid = True
            for seed in range(runs):
                rng = _random.Random(seed)
                monitor = ValidityMonitor()
                current = term
                for _ in range(200):
                    moves = sorted(step(current), key=repr)
                    if not moves:
                        break
                    label, current = rng.choice(moves)
                    if is_history_label(label):
                        all_valid = monitor.extend(label) and all_valid
            return all_valid

        static_seconds = _measure(
            lambda term=term: certify_validity(term), repeats)
        dynamic_seconds = _measure(dynamic, repeats)
        _clear_caches()
        certificate = certify_validity(term)
        sampled_valid = dynamic()
        # Soundness cross-check: a static acceptance admits no invalid
        # sampled run; on these deterministic-violation workloads a
        # static rejection is also observed dynamically.
        assert certificate.valid == sampled_valid, name
        if not certificate.valid:
            assert certificate.witness.replays(), name
        metrics = _instrumented(
            lambda term=term: certify_validity(term))
        cases.append({
            "workload": name,
            "dynamic_runs": runs,
            "static_seconds": static_seconds,
            "dynamic_seconds": dynamic_seconds,
            "amortisation": dynamic_seconds / max(static_seconds, 1e-9),
            "valid": certificate.valid,
            "explored_states": certificate.explored,
            "witness_length": (None if certificate.witness is None
                               else len(certificate.witness.labels)),
            "metrics": metrics,
        })
        print(f"B1 {name:16s}: static {static_seconds * 1e3:8.2f} ms  "
              f"dynamic(K={runs}) {dynamic_seconds * 1e3:8.2f} ms  "
              f"{dynamic_seconds / max(static_seconds, 1e-9):5.1f}x")
    return {
        "cases": cases,
        "verdicts_agree": True,
        "static_amortises": all(
            c["amortisation"] > 1.0 for c in cases if c["valid"]),
    }


SUITES = {"s1": run_s1, "s2": run_s2, "s3": run_s3, "s4": run_s4,
          "r1": run_r1, "r2": run_r2, "b1": run_b1}


def next_bench_path(directory: Path) -> Path:
    n = 1
    while (directory / f"BENCH_{n}.json").exists():
        n += 1
    return directory / f"BENCH_{n}.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sizes, one repeat (CI smoke run)")
    parser.add_argument("--output-dir", type=Path, default=_ROOT,
                        help="directory for BENCH_<n>.json "
                             "(default: repository root)")
    parser.add_argument("--suites", default="s1,s2,s3,s4,r1,r2,b1",
                        help="comma-separated subset of "
                             "s1,s2,s3,s4,r1,r2,b1")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per measurement "
                             "(default: 1 with --quick, else 3)")
    args = parser.parse_args(argv)

    repeats = args.repeats or (1 if args.quick else 3)
    selected = [name.strip().lower() for name in args.suites.split(",")
                if name.strip()]
    unknown = [name for name in selected if name not in SUITES]
    if unknown:
        parser.error(f"unknown suites: {', '.join(unknown)}")

    suites = {}
    started = time.time()
    for name in selected:
        print(f"-- suite {name.upper()} "
              f"({'quick' if args.quick else 'full'}, "
              f"best of {repeats}) --")
        suites[name] = SUITES[name](args.quick, repeats)

    report = {
        "schema": "repro-bench.v5",
        "quick": args.quick,
        "repeats": repeats,
        "started_at": started,
        "wall_seconds": time.time() - started,
        "python": sys.version.split()[0],
        "suites": suites,
        "summary": {
            "s1_noncompliant_onthefly_faster_than_eager": suites.get(
                "s1", {}).get("noncompliant_onthefly_faster"),
            "s1_compiled_median_speedup": suites.get(
                "s1", {}).get("compiled_median_speedup"),
            "s1_compiled_largest_case_speedup": suites.get(
                "s1", {}).get("compiled_largest_case_speedup"),
            "s2_memoized_faster_than_eager": suites.get(
                "s2", {}).get("memoized_faster"),
            "s3_certifier_median_compiled_speedup": suites.get(
                "s3", {}).get("certifier_median_compiled_speedup"),
            "s3_certifier_largest_case_speedup": suites.get(
                "s3", {}).get("certifier_largest_case_speedup"),
            "s4_median_pruning_ratio": suites.get(
                "s4", {}).get("median_pruning_ratio"),
            "s4_median_lookup_speedup": suites.get(
                "s4", {}).get("median_lookup_speedup"),
            "s4_registry_verdicts_identical": suites.get(
                "s4", {}).get("verdicts_identical"),
            "r2_rollback_recovered_ratio": suites.get(
                "r2", {}).get("rollback_recovered_ratio"),
            "r2_replan_recovered_ratio": suites.get(
                "r2", {}).get("replan_recovered_ratio"),
            "r2_rollback_beats_replan_recovery": suites.get(
                "r2", {}).get("rollback_beats_replan_recovery"),
            "r2_median_steps_saving": suites.get(
                "r2", {}).get("median_steps_saving"),
            "r2_reversible_engines_agree": suites.get(
                "r2", {}).get("reversible_engines_agree"),
            "verdicts_identical_across_engines": (
                suites.get("s1", {}).get("verdicts_agree", None)
                if "s1" in suites else None),
            "b1_static_amortises_dynamic_sampling": suites.get(
                "b1", {}).get("static_amortises"),
        },
    }
    args.output_dir.mkdir(parents=True, exist_ok=True)
    path = next_bench_path(args.output_dir)
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

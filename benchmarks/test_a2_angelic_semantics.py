"""Experiment A2 — ablation: angelic vs unfiltered semantics on *invalid*
plans.

Under the plan the paper rejects for security ({2↦ℓbr, 3↦ℓs3} for C2):

* the **angelic** (monitored) semantics blocks the violating events —
  the run either routes around them or the monitor aborts the client;
* the **unfiltered** (unmonitored) semantics runs straight into an
  invalid history.

Expected shape: the monitored run never produces an invalid history (at
the price of aborting); every unmonitored scheduler seed that reaches
the hotel's events produces one.  This is the counterpart of A1: the
monitor is exactly as necessary as the plan is invalid.
"""

from repro.core.errors import SecurityViolationError
from repro.network.config import Component, Configuration
from repro.network.explorer import explore
from repro.network.simulator import Simulator
from repro.paper import figure2


def setup():
    config = Configuration.of(
        Component.client(figure2.LOC_CLIENT_2, figure2.client_2()))
    return config, figure2.plan_pi2_bad_security(), figure2.repository()


def run_monitored(seed):
    config, plan, repo = setup()
    simulator = Simulator(config, plan, repo, monitored=True, seed=seed)
    try:
        simulator.run(max_steps=500)
        aborted = False
    except SecurityViolationError:
        aborted = True
    return simulator, aborted


def run_unmonitored(seed):
    config, plan, repo = setup()
    simulator = Simulator(config, plan, repo, monitored=False, seed=seed)
    simulator.run(max_steps=500)
    return simulator


def test_a2_monitored_runs_stay_valid(benchmark):
    def sweep():
        outcomes = []
        for seed in range(20):
            simulator, aborted = run_monitored(seed)
            assert simulator.all_histories_valid()
            outcomes.append(aborted)
        return outcomes

    outcomes = benchmark(sweep)
    print(f"\nA2 — monitored: {sum(outcomes)}/20 seeds aborted by the "
          "monitor, 0 invalid histories")


def test_a2_unmonitored_runs_violate(benchmark):
    def sweep():
        violations = 0
        for seed in range(20):
            simulator = run_unmonitored(seed)
            if not simulator.all_histories_valid():
                violations += 1
        return violations

    violations = benchmark(sweep)
    print(f"A2 — unmonitored: {violations}/20 seeds produced an invalid "
          "history")
    # S3 *always* signs (sgn(3) is its first action once the session
    # opens), and the session always opens: every seed violates.
    assert violations == 20


def test_a2_exhaustive_confirms_reachable_violation(benchmark):
    config, plan, repo = setup()
    result = benchmark(explore, config, plan, repo)
    assert not result.secure
    assert result.violations
    print(f"A2 — explorer: {len(result.violations)} violating transitions "
          f"over {result.explored} configurations")


def test_a2_valid_plan_shows_no_difference(benchmark):
    """Control: under the valid plan the two semantics coincide — no
    blocked move, no violation, for any seed."""
    config = Configuration.of(
        Component.client(figure2.LOC_CLIENT_2, figure2.client_2()))
    plan, repo = figure2.plan_pi2_valid(), figure2.repository()

    def sweep():
        for seed in range(10):
            monitored = Simulator(config, plan, repo, monitored=True,
                                  seed=seed)
            monitored.run(max_steps=500)
            unmonitored = Simulator(config, plan, repo, monitored=False,
                                    seed=seed)
            unmonitored.run(max_steps=500)
            assert monitored.histories() == unmonitored.histories()
            assert monitored.is_terminated()
        return True

    assert benchmark(sweep)

"""Experiment E1 — extension: quantitative policies and cost-aware plans.

The paper's stated future work (Section 5, ref. [14]).  Measures:

* enforcement cost of a compiled budget policy vs a comparable
  qualitative policy (the compilation adds counter states, so checking
  should stay within a small constant factor);
* cost-aware synthesis: pricing every valid plan of a synthetic
  marketplace and picking the cheapest.

Expected shape: budget enforcement scales with the budget (state count
is budget + 2); pricing adds one longest-path pass per valid plan on top
of ordinary synthesis.
"""

import pytest

from repro.core.actions import Event
from repro.core.plans import Plan
from repro.core.syntax import event, external, receive, request, send, seq
from repro.network.repository import Repository
from repro.analysis.planner import find_valid_plans
from repro.policies.library import at_most
from repro.quantitative import (CostModel, budget_policy,
                                cheapest_valid_plan, priced_valid_plans)

MODEL = CostModel.of({"io": 1, "crypto": 5})


def marketplace(services=6):
    """Workers whose sessions cost 1 … *services* crypto units."""
    pool = {}
    for index in range(1, services + 1):
        body = [event("crypto", i) for i in range(index)]
        pool[f"w{index}"] = receive("go", seq(*body, send("done")))
    return Repository(pool)


CLIENT = request("r", budget_policy("cap", {"crypto": 5}, 20),
                 seq(send("go"), external(("done", seq()))))


@pytest.mark.parametrize("budget", [4, 16, 64],
                         ids=["b4", "b16", "b64"])
def test_e1_budget_enforcement_scales_with_budget(benchmark, budget):
    policy = budget_policy("cap", {"tick": 1}, budget)
    trace = [Event("tick")] * budget

    def run():
        runner = policy.runner()
        for item in trace:
            runner.step(item)
        return runner.in_violation

    assert benchmark(run) is False
    assert policy.accepts(trace + [Event("tick")])


def test_e1_budget_vs_qualitative_baseline(benchmark):
    """Same counting behaviour expressed as at_most: identical verdicts,
    comparable cost (both are plain usage automata)."""
    budget = budget_policy("cap", {"tick": 1}, 10)
    baseline = at_most("tick", 10)
    trace = [Event("tick")] * 10 + [Event("noise")] * 50

    def run():
        return (budget.accepts(trace), baseline.accepts(trace))

    verdicts = benchmark(run)
    assert verdicts == (False, False)


def test_e1_priced_synthesis(benchmark):
    repo = marketplace()
    priced = benchmark(priced_valid_plans, CLIENT, repo, MODEL)
    costs = [entry.cost for entry in priced]
    print(f"\nE1 — plan costs, cheapest first: {costs}")
    assert costs == sorted(costs)
    # Budget 20 at 5/crypto admits workers firing ≤ 4 crypto events.
    assert len(priced) == 4


def test_e1_cheapest_plan(benchmark):
    repo = marketplace()
    best = benchmark(cheapest_valid_plan, CLIENT, repo, MODEL)
    assert best is not None
    assert best.plan == Plan.single("r", "w1")
    assert best.cost == 5  # w1 fires a single crypto event


def test_e1_pricing_overhead_over_plain_synthesis(benchmark):
    """Plain synthesis as the baseline the pricing pass sits on."""
    repo = marketplace()
    result = benchmark(find_valid_plans, CLIENT, repo)
    assert len(result.valid_plans) == 4

"""Experiment T1 — Theorem 1: the two compliance deciders agree.

Runs both the Definition-4 (coinductive, ready sets) and the
Definition-5 (product emptiness) deciders over a deterministic battery
of contract pairs spanning compliant, non-compliant and recursive
shapes, asserting 100% agreement and comparing their costs.
"""

import random

from repro.core.compliance import (check_compliance, compliant,
                                   compliant_coinductive)
from repro.core.duality import dual
from repro.core.syntax import (EPSILON, ExternalChoice, InternalChoice,
                               Var, external, internal, mu, receive, send,
                               seq)

from workloads import almost_compliant_server, wide_client, wide_server


def random_contract(rng, depth):
    """A deterministic pseudo-random contract over channels a/b/c."""
    if depth == 0:
        return EPSILON
    kind = rng.choice(("int", "ext", "seq"))
    channels = rng.sample(["a", "b", "c"], k=rng.randint(1, 2))
    if kind == "seq":
        return seq(random_contract(rng, depth - 1),
                   random_contract(rng, depth - 1))
    branches = tuple((channel, random_contract(rng, depth - 1))
                     for channel in channels)
    if kind == "int":
        return internal(*branches)
    return external(*branches)


def battery(pairs=120, depth=3, seed=7):
    rng = random.Random(seed)
    cases = [(random_contract(rng, depth), random_contract(rng, depth))
             for _ in range(pairs)]
    cases += [(c, dual(c)) for c, _ in cases[:30]]  # compliant seeds
    cases += [
        (wide_client(3, 3), wide_server(3, 3)),
        (wide_client(3, 3), almost_compliant_server(3, 3)),
        (mu("h", send("p", receive("q", Var("h")))),
         mu("k", receive("p", send("q", Var("k"))))),
    ]
    return cases


CASES = battery()


def test_t1_product_decider(benchmark):
    verdicts = benchmark(
        lambda: [compliant(c, s) for c, s in CASES])
    assert len(verdicts) == len(CASES)
    # The battery must be discriminating.
    assert True in verdicts and False in verdicts


def test_t1_coinductive_decider(benchmark):
    verdicts = benchmark(
        lambda: [compliant_coinductive(c, s) for c, s in CASES])
    assert len(verdicts) == len(CASES)


def test_t1_agreement(benchmark):
    def agree():
        mismatches = 0
        table = []
        for client, server in CASES:
            left = compliant(client, server)
            right = compliant_coinductive(client, server)
            table.append(left)
            if left != right:
                mismatches += 1
        return mismatches, table

    mismatches, table = benchmark(agree)
    compliant_count = sum(table)
    print(f"\nT1 — {len(CASES)} pairs: {compliant_count} compliant, "
          f"{len(CASES) - compliant_count} not; mismatches: {mismatches}")
    assert mismatches == 0


def test_t1_compiled_decider(benchmark):
    verdicts = benchmark(
        lambda: [check_compliance(c, s, engine="compiled").compliant
                 for c, s in CASES])
    assert len(verdicts) == len(CASES)
    assert True in verdicts and False in verdicts


def test_t1_compiled_matches_interpreted_exactly():
    """The compiled BFS is the interpreted one over interned tables:
    verdict, explored-state count and counterexample trace must all be
    identical, case for case."""
    for client, server in CASES:
        interpreted = check_compliance(client, server)
        compiled = check_compliance(client, server, engine="compiled")
        assert interpreted.compliant == compiled.compliant, (client, server)
        assert interpreted.explored_states == compiled.explored_states, \
            (client, server)
        assert interpreted.trace == compiled.trace, (client, server)

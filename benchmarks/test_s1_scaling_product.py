"""Experiment S1 — (synthetic) product-automaton scaling.

The paper gives no measurements; this bench characterises the cost of
Definition 5 as the contracts grow: width w (alternatives per round) and
depth d (request/response rounds).  Expected shape: state count and time
grow with the product of the per-round pairings.

Two engines are measured.  The *eager* path (``build_product``)
materialises the full explicit automaton before testing emptiness, so
compliant and non-compliant pairs cost the same.  The *on-the-fly* path
(``check_compliance``, the default) BFS-explores the implicit product and
stops at the first reachable final state, so detecting *non-compliance*
costs only the states within the BFS radius of the shortest
counterexample — the early exit is asserted below, not just claimed.
"""

import pytest

from repro.core.compliance import check_compliance
from repro.contracts.contract import Contract
from repro.contracts.product import build_product

from workloads import almost_compliant_server, wide_client, wide_server

SIZES = [(2, 2), (2, 4), (3, 3), (4, 2), (4, 3)]


@pytest.mark.parametrize("width,depth", SIZES,
                         ids=[f"w{w}d{d}" for w, d in SIZES])
def test_s1_compliant_product(benchmark, width, depth):
    client = Contract(wide_client(width, depth))
    server = Contract(wide_server(width, depth))
    product = benchmark(build_product, client, server)
    assert product.language_is_empty()
    print(f"\nS1 w={width} d={depth}: {len(product.lts)} product states, "
          f"{len(client.lts)}×{len(server.lts)} components")


@pytest.mark.parametrize("width,depth", SIZES,
                         ids=[f"w{w}d{d}" for w, d in SIZES])
def test_s1_noncompliant_product(benchmark, width, depth):
    client = wide_client(width, depth)
    server = almost_compliant_server(width, depth)
    result = benchmark(check_compliance, client, server)
    assert not result.compliant
    assert result.trace is not None
    # Early exit: the on-the-fly engine materialised no more product
    # states than the full automaton holds — and for a counterexample
    # shallower than the product diameter, strictly fewer.
    product = build_product(Contract(client), Contract(server))
    assert result.explored_states is not None
    assert result.explored_states <= len(product.lts)


def test_s1_state_count_scales_with_width(benchmark):
    """The series the experiment reports: product states per width."""
    def series():
        counts = {}
        for width in (2, 3, 4, 5):
            product = build_product(Contract(wide_client(width, 2)),
                                    Contract(wide_server(width, 2)))
            counts[width] = len(product.lts)
        return counts

    counts = benchmark(series)
    print(f"\nS1 — product states by width (depth 2): {counts}")
    assert counts[2] < counts[3] < counts[4] < counts[5]

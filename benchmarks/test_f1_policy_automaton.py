"""Experiment F1 — Figure 1: the usage automaton φ(bl, p, t).

Regenerates the figure as a verdict table — for every hotel trace and
every policy instantiation used in Section 2, does the automaton accept
(= flag a violation)? — and measures the cost of checking traces against
the parametric automaton.

Paper's expected shape: exactly the traces the figure forbids are
accepted; everything else self-loops to the safe sinks q4/q5.
"""

from repro.core.actions import Event
from repro.policies.library import hotel_policy

#: The four hotels of Figure 2 as (id, price, rating) traces.
HOTELS = {
    "S1": (1, 45, 80),
    "S2": (2, 70, 100),
    "S3": (3, 90, 100),
    "S4": (4, 50, 90),
}

#: The two instantiations of Section 2 plus two sweep points.
INSTANTIATIONS = {
    "phi({1},45,100)": (frozenset({1}), 45, 100),
    "phi({1,3},40,70)": (frozenset({1, 3}), 40, 70),
    "phi({},0,200)": (frozenset(), 0, 200),     # everything too pricey+bad
    "phi({},999,0)": (frozenset(), 999, 0),     # everything acceptable
}

#: hotel → instantiation → expected *violation* verdict.
EXPECTED = {
    "S1": {"phi({1},45,100)": True, "phi({1,3},40,70)": True,
           "phi({},0,200)": True, "phi({},999,0)": False},
    "S2": {"phi({1},45,100)": False, "phi({1,3},40,70)": False,
           "phi({},0,200)": True, "phi({},999,0)": False},
    "S3": {"phi({1},45,100)": False, "phi({1,3},40,70)": True,
           "phi({},0,200)": True, "phi({},999,0)": False},
    "S4": {"phi({1},45,100)": True, "phi({1,3},40,70)": False,
           "phi({},0,200)": True, "phi({},999,0)": False},
}


def trace_of(identifier, price, rating):
    return (Event("sgn", (identifier,)), Event("p", (price,)),
            Event("ta", (rating,)))


def verdict_table():
    table = {}
    for hotel, shape in HOTELS.items():
        row = {}
        for name, (bl, p, t) in INSTANTIATIONS.items():
            policy = hotel_policy(bl, p, t)
            row[name] = policy.accepts(trace_of(*shape))
        table[hotel] = row
    return table


def test_f1_verdict_table(benchmark):
    table = benchmark(verdict_table)
    print("\nF1 — violation verdicts (rows: hotels, cols: φ instances)")
    names = list(INSTANTIATIONS)
    print(f"{'':6s}" + "".join(f"{n:>22s}" for n in names))
    for hotel, row in table.items():
        cells = "".join(f"{str(row[n]):>22s}" for n in names)
        print(f"{hotel:6s}{cells}")
    assert table == EXPECTED


def test_f1_long_trace_monitoring(benchmark):
    """Checking cost on long histories (many self-loop events around the
    three significant ones)."""
    policy = hotel_policy({1}, 45, 100)
    noise = tuple(Event("noise", (i,)) for i in range(500))
    trace = noise + trace_of(3, 90, 100) + noise

    result = benchmark(policy.accepts, trace)
    assert result is False  # S3 respects φ1


def test_f1_incremental_runner(benchmark):
    """Per-event stepping cost of the incremental runner (what the
    reference monitor pays on every access event)."""
    policy = hotel_policy({1}, 45, 100)
    events = [Event("sgn", (3,))] + \
        [Event("noise", (i % 7,)) for i in range(300)]

    def run():
        runner = policy.runner()
        for item in events:
            runner.step(item)
        return runner.in_violation

    assert benchmark(run) is False

"""Experiment E4 — substrate: the type-and-effect system.

Section 3's programming model: behaviours are extracted from λ-programs
by a type-and-effect system (machinery of refs [4, 5]).  Measures:

* extraction of the Figure 2 participants from their λ-programs, and
  behavioural equality (strong bisimilarity) with the hand-written
  terms — the correctness claim;
* inference cost on growing program families (chains of applications,
  towers of conditionals, recursive servers).

Expected shape: inference is a single syntax-directed pass — linear in
program size, with the conditional join paying for choice-branch
concatenation only.
"""

import pytest

from repro.contracts.lts import bisimilar, build_lts
from repro.core.semantics import step
from repro.lam import (BOOL, UNIT, UNIT_VALUE, app, cond, evt, extract,
                       fix, infer, lam, offer, open_session, send,
                       seq_terms, var)
from repro.paper import figure2

ENV = {"rooms_available": BOOL}


def client_program():
    return open_session("1", figure2.policy_c1(), seq_terms(
        send("Req"),
        offer(("CoBo", send("Pay")), ("NoAv", UNIT_VALUE))))


def broker_program():
    return seq_terms(
        offer(("Req", UNIT_VALUE)),
        open_session("3", None, seq_terms(
            send("IdC"),
            offer(("Bok", UNIT_VALUE), ("UnA", UNIT_VALUE)))),
        cond(var("rooms_available"),
             seq_terms(send("CoBo"), offer(("Pay", UNIT_VALUE))),
             send("NoAv")))


def test_e4_extract_figure2_participants(benchmark):
    def run():
        return (extract(client_program()),
                extract(broker_program(), env=ENV))

    client_effect, broker_effect = benchmark(run)
    assert bisimilar(build_lts(client_effect, step),
                     build_lts(figure2.client_1(), step))
    assert bisimilar(build_lts(broker_effect, step),
                     build_lts(figure2.broker(), step))
    print("\nE4 — λ-extracted C1 and Br are bisimilar to Figure 2's")


@pytest.mark.parametrize("size", [20, 80, 320],
                         ids=["n20", "n80", "n320"])
def test_e4_inference_scales_linearly(benchmark, size):
    # A chain of `size` applications of an event-firing function.
    function = lam("x", UNIT, evt("tick"))
    program = seq_terms(*(app(function, UNIT_VALUE)
                          for _ in range(size)))
    judgement = benchmark(infer, program)
    assert judgement.type == UNIT


@pytest.mark.parametrize("depth", [4, 8],
                         ids=["d4", "d8"])
def test_e4_conditional_towers(benchmark, depth):
    # Nested conditionals whose branches all end in outputs: the join
    # builds an internal choice with 2^depth branches.
    def tower(level):
        if level == 0:
            return send(f"leaf{id(level) % 7}")
        return cond(var("b"), tower(level - 1), tower(level - 1))

    program = tower(depth)
    judgement = benchmark(infer, program, {"b": BOOL})
    assert judgement.type == UNIT


def test_e4_recursive_server_extraction(benchmark):
    server = fix("serve", "u", UNIT, UNIT,
                 offer(("go", seq_terms(evt("tick"), send("ack"),
                                        app(var("serve"), UNIT_VALUE))),
                       ("stop", UNIT_VALUE)))
    judgement = benchmark(infer, server)
    from repro.core.syntax import Mu
    assert isinstance(judgement.type.latent, Mu)


def test_e4_extracted_network_verifies(benchmark):
    from repro.analysis.verification import verify_client
    from repro.network.repository import Repository

    def run():
        client_effect = extract(client_program())
        repo = Repository({
            "lbr": extract(broker_program(), env=ENV),
            "ls3": figure2.hotel_3(),
        })
        return verify_client(client_effect, repo,
                             location=figure2.LOC_CLIENT_1)

    verdict = benchmark(run)
    assert verdict.verified

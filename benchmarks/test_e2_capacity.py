"""Experiment E2 — extension: bounded service availability.

The paper assumes services "replicate themselves unboundedly many
times" and names bounded availability as future work.  Measures the
static concurrent-demand bound against the dynamic ground truth
(exhaustive maximum of open sessions per location) and the cost of the
feasibility check as client count grows.

Expected shape: static and observed demand agree on the paper network;
the static check is orders of magnitude cheaper and scales linearly in
clients, while the observed check pays the full interleaving blow-up.
"""

import pytest

from repro.analysis.capacity import (check_capacities,
                                     observed_concurrent_demand,
                                     static_concurrent_demand)
from repro.core.plans import PlanVector
from repro.network.config import Component, Configuration
from repro.paper import figure2


def paper_vector():
    clients = [(figure2.client_1(), figure2.plan_pi1()),
               (figure2.client_2(), figure2.plan_pi2_valid())]
    plans = PlanVector.of(figure2.plan_pi1(), figure2.plan_pi2_valid())
    return clients, plans


def test_e2_static_demand(benchmark, repo):
    clients, _ = paper_vector()

    def run():
        return {location: static_concurrent_demand(clients, repo,
                                                   location)
                for location in repo.locations()}

    demands = benchmark(run)
    print(f"\nE2 — static demand: {demands}")
    assert demands == {"lbr": 2, "ls1": 0, "ls2": 0, "ls3": 1, "ls4": 1}


def test_e2_observed_demand_matches(benchmark, repo):
    clients, plans = paper_vector()
    config = figure2.initial_configuration()

    def run():
        return {location: observed_concurrent_demand(config, plans, repo,
                                                     location)
                for location in repo.locations()}

    observed = benchmark(run)
    static = {location: static_concurrent_demand(clients, repo, location)
              for location in repo.locations()}
    print(f"E2 — observed demand: {observed}")
    assert observed == static


@pytest.mark.parametrize("copies", [2, 6, 12],
                         ids=["n2", "n6", "n12"])
def test_e2_static_check_scales_with_clients(benchmark, repo, copies):
    base = [(figure2.client_1(), figure2.plan_pi1())]
    clients = base * copies
    report = benchmark(check_capacities, clients, repo,
                       {figure2.LOC_BROKER: copies, "ls3": copies})
    assert report.feasible


def test_e2_oversubscription_detected(benchmark, repo):
    clients, _ = paper_vector()
    report = benchmark(check_capacities, clients, repo,
                       {figure2.LOC_BROKER: 1})
    assert not report.feasible
    assert report.oversubscribed() == (figure2.LOC_BROKER,)

#!/usr/bin/env python
"""Validate the telemetry payload of ``BENCH_<n>.json`` trajectory files.

CI runs the benchmark smoke with telemetry enabled and then this script;
a benchmark file whose cases stopped carrying the instrumentation
snapshot (counters, cache hit/miss stats, explored-state counts) fails
the build, so the observability layer cannot silently rot.

Accepts every historical schema (``repro-bench.v1`` through ``v5``);
on v3+ files it additionally requires the per-engine warm timings,
compile-time split and verdict-agreement flags on S1 cases, and the
certifier cases (with the compiled term-table cache in their snapshot)
on S3.  On v4+ files carrying an S4 suite, every registry case must
report its pruning ratio, lookup speedup and verdict-identity flag,
with ``registry.*`` counters in the instrumentation snapshot.  On v5
files carrying an R2 suite, every case must report both recovery modes
(rollback and replan) with their recovered ratios, and the
instrumentation snapshot must record the ``resilience.rollbacks``
counter — proof the rollback path really ran.

Usage::

    PYTHONPATH=src python benchmarks/check_metrics_schema.py BENCH_*.json

Exit status: 0 when every file passes, 1 with a per-file report
otherwise.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Counter keys every instrumented S1 case must have recorded.
S1_REQUIRED_COUNTERS = (
    "compliance.explored_states",
    "compliance.enqueued_states",
)

#: Cache adapters the snapshot must report on (hits/misses/currsize).
REQUIRED_CACHES = (
    "contracts.projection",
    "contracts.lts",
)

#: Keys of the per-pass planner summary embedded in S2 cases.
S2_PLANNER_KEYS = ("plans_analyzed", "plans_valid", "plans_pruned",
                   "memo_hits", "memo_misses")

#: Counter keys every instrumented B1 case must have recorded.
B1_REQUIRED_COUNTERS = ("staticcheck.explored_states",)

#: Cache adapters that must additionally appear in B1 snapshots.
B1_REQUIRED_CACHES = ("staticcheck.validity",)

ACCEPTED_SCHEMAS = ("repro-bench.v1", "repro-bench.v2", "repro-bench.v3",
                    "repro-bench.v4", "repro-bench.v5")

#: Engines whose warm solve time every v3 S1 case must report.
V3_S1_ENGINES = ("onthefly", "eager", "gfp", "compiled")

#: Keys every v3 S1 case must carry beside the timings.
V3_S1_CASE_KEYS = ("compile_seconds", "compiled_speedup",
                   "verdicts_agree")

#: Keys every v3 S3 certifier case must carry.
V3_S3_CERTIFIER_KEYS = ("interpreted_seconds", "compiled_seconds",
                        "compile_seconds", "compiled_speedup",
                        "certificates_identical", "explored_states")

#: Cache adapter that must appear in v3 S3 certifier snapshots: the
#: compiled term-table memo proves the compiled path actually ran.
V3_S3_CERTIFIER_CACHE = "compiled.validity_terms"

#: Keys every v4 S4 registry case must carry.
V4_S4_CASE_KEYS = ("entries", "build_seconds", "indexed_seconds",
                   "exhaustive_seconds", "lookup_speedup",
                   "pruning_ratio", "verdicts_identical")

#: Counter prefixes the v4 S4 instrumentation snapshot must include:
#: the registry path really ran, with its query counters recorded.
V4_S4_COUNTER_PREFIXES = ("registry.adds", "registry.queries")

#: Keys every v5 R2 case must carry.
V5_R2_CASE_KEYS = ("scenario", "seeds", "modes", "verdicts_agree")

#: Keys both recovery modes of a v5 R2 case must report.
V5_R2_MODE_KEYS = ("seconds", "runs", "completed", "disturbed",
                   "recovered", "recovered_ratio",
                   "median_recovery_steps", "median_recovery_ticks",
                   "rollbacks", "retries", "replans")

#: Counter prefix the v5 R2 instrumentation snapshot must include: the
#: checkpoint-rollback recovery path really ran.
V5_R2_COUNTER_PREFIX = "resilience.rollbacks"


def _check_snapshot(metrics: dict, where: str, errors: list[str],
                    required_counters: tuple[str, ...] = ()) -> None:
    counters = metrics.get("counters")
    if not isinstance(counters, dict):
        errors.append(f"{where}: metrics.counters missing")
        return
    for key in required_counters:
        if key not in counters:
            errors.append(f"{where}: counter {key!r} missing")
    caches = metrics.get("caches")
    if not isinstance(caches, dict):
        errors.append(f"{where}: metrics.caches missing")
        return
    for name in REQUIRED_CACHES:
        stats = caches.get(name)
        if not isinstance(stats, dict):
            errors.append(f"{where}: cache stats for {name!r} missing")
            continue
        for field in ("hits", "misses", "currsize"):
            if field not in stats:
                errors.append(f"{where}: cache {name!r} lacks {field!r}")


def _check_v3_s1_case(case: dict, where: str,
                      errors: list[str]) -> None:
    engine_seconds = case.get("engine_seconds")
    if not isinstance(engine_seconds, dict):
        errors.append(f"{where}: engine_seconds missing (v3)")
    else:
        for engine in V3_S1_ENGINES:
            if engine not in engine_seconds:
                errors.append(f"{where}: engine_seconds lacks "
                              f"{engine!r}")
    for key in V3_S1_CASE_KEYS:
        if key not in case:
            errors.append(f"{where}: key {key!r} missing (v3)")
    if case.get("verdicts_agree") is not True:
        errors.append(f"{where}: verdicts_agree is not true")


def check_file(path: Path) -> list[str]:
    errors: list[str] = []
    try:
        report = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        return [f"{path}: unreadable ({error})"]

    schema = report.get("schema")
    if schema not in ACCEPTED_SCHEMAS:
        errors.append(f"{path}: schema {schema!r} not in "
                      f"{ACCEPTED_SCHEMAS}")
        return errors

    if schema == "repro-bench.v1":
        # v1 predates the instrumentation snapshots: schema recognised,
        # nothing further to require.
        return errors
    v3 = schema in ("repro-bench.v3", "repro-bench.v4", "repro-bench.v5")
    v4 = schema in ("repro-bench.v4", "repro-bench.v5")
    v5 = schema == "repro-bench.v5"
    suites = report.get("suites", {})
    for case_index, case in enumerate(suites.get("s1", {}).get("cases",
                                                               ())):
        where = f"{path}: s1.cases[{case_index}]"
        if v3:
            _check_v3_s1_case(case, where, errors)
        metrics = case.get("metrics")
        if not isinstance(metrics, dict):
            errors.append(f"{where}: metrics object missing")
            continue
        _check_snapshot(metrics, where, errors, S1_REQUIRED_COUNTERS)
    for case_index, case in enumerate(suites.get("s2", {}).get("cases",
                                                               ())):
        where = f"{path}: s2.cases[{case_index}]"
        metrics = case.get("metrics")
        if not isinstance(metrics, dict):
            errors.append(f"{where}: metrics object missing")
            continue
        _check_snapshot(metrics, where, errors)
        planner = metrics.get("planner")
        if not isinstance(planner, dict):
            errors.append(f"{where}: metrics.planner summary missing")
        else:
            for key in S2_PLANNER_KEYS:
                if key not in planner:
                    errors.append(f"{where}: planner key {key!r} missing")
    for case_index, case in enumerate(suites.get("s3", {}).get("cases",
                                                               ())):
        where = f"{path}: s3.cases[{case_index}]"
        metrics = case.get("metrics")
        if not isinstance(metrics, dict):
            errors.append(f"{where}: metrics object missing")
            continue
        counters = metrics.get("counters", {})
        if not any(key.startswith("monitor.labels") for key in counters):
            errors.append(f"{where}: monitor.labels counters missing")
    if v3 and "s3" in suites:
        certifier_cases = suites["s3"].get("certifier_cases")
        if not isinstance(certifier_cases, list) or not certifier_cases:
            errors.append(f"{path}: s3.certifier_cases missing (v3)")
        else:
            for case_index, case in enumerate(certifier_cases):
                where = f"{path}: s3.certifier_cases[{case_index}]"
                for key in V3_S3_CERTIFIER_KEYS:
                    if key not in case:
                        errors.append(f"{where}: key {key!r} missing")
                metrics = case.get("metrics")
                caches = (metrics.get("caches", {})
                          if isinstance(metrics, dict) else {})
                if V3_S3_CERTIFIER_CACHE not in caches:
                    errors.append(
                        f"{where}: cache stats for "
                        f"{V3_S3_CERTIFIER_CACHE!r} missing")
    if v4:
        for case_index, case in enumerate(suites.get("s4", {}).get(
                "cases", ())):
            where = f"{path}: s4.cases[{case_index}]"
            for key in V4_S4_CASE_KEYS:
                if key not in case:
                    errors.append(f"{where}: key {key!r} missing (v4)")
            if case.get("verdicts_identical") is not True:
                errors.append(f"{where}: verdicts_identical is not true")
            metrics = case.get("metrics")
            if not isinstance(metrics, dict):
                errors.append(f"{where}: metrics object missing")
                continue
            _check_snapshot(metrics, where, errors)
            counters = metrics.get("counters", {})
            for prefix in V4_S4_COUNTER_PREFIXES:
                if not any(key.startswith(prefix) for key in counters):
                    errors.append(f"{where}: counter {prefix!r}* missing")
    if v5:
        for case_index, case in enumerate(suites.get("r2", {}).get(
                "cases", ())):
            where = f"{path}: r2.cases[{case_index}]"
            for key in V5_R2_CASE_KEYS:
                if key not in case:
                    errors.append(f"{where}: key {key!r} missing (v5)")
            if case.get("verdicts_agree") is not True:
                errors.append(f"{where}: verdicts_agree is not true")
            modes = case.get("modes")
            if not isinstance(modes, dict):
                errors.append(f"{where}: modes object missing")
            else:
                for mode in ("rollback", "replan"):
                    entry = modes.get(mode)
                    if not isinstance(entry, dict):
                        errors.append(f"{where}: mode {mode!r} missing")
                        continue
                    for key in V5_R2_MODE_KEYS:
                        if key not in entry:
                            errors.append(f"{where}: mode {mode!r} "
                                          f"lacks {key!r}")
            metrics = case.get("metrics")
            if not isinstance(metrics, dict):
                errors.append(f"{where}: metrics object missing")
                continue
            counters = metrics.get("counters", {})
            if not any(key.startswith(V5_R2_COUNTER_PREFIX)
                       for key in counters):
                errors.append(f"{where}: counter "
                              f"{V5_R2_COUNTER_PREFIX!r}* missing")
    for case_index, case in enumerate(suites.get("b1", {}).get("cases",
                                                               ())):
        where = f"{path}: b1.cases[{case_index}]"
        metrics = case.get("metrics")
        if not isinstance(metrics, dict):
            errors.append(f"{where}: metrics object missing")
            continue
        _check_snapshot(metrics, where, errors, B1_REQUIRED_COUNTERS)
        caches = metrics.get("caches", {})
        for name in B1_REQUIRED_CACHES:
            stats = caches.get(name) if isinstance(caches, dict) else None
            if not isinstance(stats, dict):
                errors.append(f"{where}: cache stats for {name!r} missing")
        if "explored_states" not in case:
            errors.append(f"{where}: explored_states missing")
    return errors


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_metrics_schema.py BENCH_*.json",
              file=sys.stderr)
        return 2
    failures: list[str] = []
    for name in argv:
        failures.extend(check_file(Path(name)))
    if failures:
        for failure in failures:
            print(f"SCHEMA ERROR: {failure}", file=sys.stderr)
        return 1
    print(f"ok: {len(argv)} benchmark file(s) carry the required "
          "metrics snapshots")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

"""Compliance certification as a greatest fixpoint with stuck witnesses.

Definition 4 presents ``H1 ⊢ H2`` coinductively: the *largest* relation
whose pairs satisfy the ready-set condition and are closed under
synchronisation.  This module re-derives that relation through the
worklist solver by the standard complement trick: over the candidate
relation (the pairs reachable from ``⟨H1!, H2!⟩`` by synchronisations,
computed with :func:`repro.contracts.product.synchronisations`), solve
the *least* fixpoint of

    ``removed(p)  =  ¬ready_condition(p)  ∨  ∃ p→p'. removed(p')``

on the two-point lattice; the greatest fixpoint of Definition 4 is the
complement, so ``H1 ⊢ H2`` iff the initial pair is not removed.
Following Definition 5, refusing pairs are absorbing (their
synchronisations are cut), which keeps the candidate relation the same
one :func:`repro.core.compliance.compliant_coinductive` explores.

On refusal the certificate carries a
:class:`~repro.staticcheck.witness.StuckWitness`: a shortest
synchronisation path into the nearest refusing pair plus the ready sets
that fail to match (Definition 3/4), replayable against the concrete
contract transition systems.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from functools import lru_cache

from repro.core.errors import StateSpaceLimitError
from repro.core.ready_sets import ready_sets, unmatched_pairs
from repro.core.syntax import HistoryExpression
from repro.contracts.contract import Contract
from repro.contracts.lts import DEFAULT_STATE_LIMIT
from repro.contracts.product import PairState, synchronisations
from repro.observability import runtime as _telemetry
from repro.observability.cache_stats import track_cache
from repro.staticcheck.solver import BoolLattice, Equation, solve
from repro.staticcheck.witness import StuckWitness

#: Entries kept in the certification memo table (see
#: :func:`repro.staticcheck.clear_staticcheck_caches`).
COMPLIANCE_CACHE_SIZE = 1024


@dataclass(frozen=True)
class ComplianceCertificate:
    """Outcome of the fixpoint compliance certification.

    ``pairs`` is the size of the candidate relation (reachable product
    pairs) and ``iterations`` the number of fixpoint steps the removal
    system took; on refusal ``witness`` explains the stuck configuration
    with the ready sets that fail to match.
    """

    compliant: bool
    witness: StuckWitness | None
    pairs: int
    iterations: int

    def __bool__(self) -> bool:
        return self.compliant


def certify_compliance(client: HistoryExpression | Contract,
                       server: HistoryExpression | Contract, *,
                       max_states: int = DEFAULT_STATE_LIMIT,
                       engine: str = "interpreted"
                       ) -> ComplianceCertificate:
    """Certify ``client ⊢ server`` (Definition 4) as a greatest fixpoint,
    with a stuck-configuration witness on refusal.

    Memoised on the projected pair; the verdict provably agrees with the
    product-emptiness engines of :mod:`repro.core.compliance` (the test
    suite cross-validates all of them).

    ``engine="compiled"`` explores the same candidate relation over the
    interned integer tables of :mod:`repro.compiled` (refusals decided on
    precompiled channel bitmasks) — identical verdict, relation size and
    witness; the certificate's ``iterations`` is 0, as no removal system
    is solved.
    """
    if engine == "compiled":
        certify = _certify_compiled
    elif engine == "interpreted":
        certify = _certify
    else:
        raise ValueError(f"unknown certification engine {engine!r} "
                         "(expected 'interpreted' or 'compiled')")
    client_c = client if isinstance(client, Contract) else Contract(client)
    server_c = server if isinstance(server, Contract) else Contract(server)
    tel = _telemetry.active()
    if tel is None:
        return certify(client_c.term, server_c.term, max_states)
    with tel.tracer.span("staticcheck.certify_compliance",
                         engine=engine) as span:
        certificate = certify(client_c.term, server_c.term, max_states)
        span.set(compliant=certificate.compliant, pairs=certificate.pairs,
                 iterations=certificate.iterations)
        verdict = "compliant" if certificate.compliant else "witness"
        tel.metrics.counter("staticcheck.certifications",
                            analysis="compliance", verdict=verdict).inc()
        tel.metrics.counter("staticcheck.explored_states").inc(
            certificate.pairs)
        if certificate.witness is not None:
            tel.metrics.histogram("staticcheck.witness_length").observe(
                len(certificate.witness.trace) - 1)
        return certificate


@lru_cache(maxsize=COMPLIANCE_CACHE_SIZE)
def _certify(client_term: HistoryExpression, server_term: HistoryExpression,
             max_states: int) -> ComplianceCertificate:
    client = Contract(client_term, already_projected=True)
    server = Contract(server_term, already_projected=True)
    client_lts = client.lts
    server_lts = server.lts
    initial: PairState = (client_term, server_term)

    # Candidate relation: pairs reachable by synchronisation, with
    # refusing pairs absorbing.  Successors are explored in a canonical
    # order so the (shortest) witness below is deterministic across
    # processes whatever the hash seed.
    successors: dict[PairState, tuple[PairState, ...]] = {}
    refusing: dict[PairState, tuple] = {}
    parents: dict[PairState, PairState] = {}
    first_refusing: PairState | None = None
    seen: set[PairState] = {initial}
    frontier: deque[PairState] = deque([initial])
    while frontier:
        pair = frontier.popleft()
        refusals = unmatched_pairs(*pair)
        if refusals:
            refusing[pair] = refusals
            successors[pair] = ()
            if first_refusing is None:
                first_refusing = pair
            continue
        moves = sorted(set(synchronisations(client_lts, server_lts, pair)),
                       key=repr)
        successors[pair] = tuple(moves)
        for successor in moves:
            if successor not in seen:
                if len(seen) >= max_states:
                    raise StateSpaceLimitError(max_states,
                                               "ready-set product")
                seen.add(successor)
                parents[successor] = pair
                frontier.append(successor)

    equations = {
        pair: Equation(pair, successors[pair],
                       (lambda env, p=pair: _removed(p, refusing,
                                                     successors, env)))
        for pair in successors}
    solution = solve(equations, BoolLattice())

    if not solution[initial]:
        return ComplianceCertificate(True, None, len(successors),
                                     solution.iterations)

    # The initial pair was removed, so some refusing pair is reachable;
    # the BFS discovered the nearest one first.
    assert first_refusing is not None
    trace = [first_refusing]
    node = first_refusing
    while node != initial:
        node = parents[node]
        trace.append(node)
    trace.reverse()
    h1, h2 = first_refusing
    witness = StuckWitness(trace=tuple(trace),
                           client_ready=ready_sets(h1),
                           server_ready=ready_sets(h2),
                           unmatched=refusing[first_refusing])
    return ComplianceCertificate(False, witness, len(successors),
                                 solution.iterations)


track_cache("staticcheck.compliance", _certify)


@lru_cache(maxsize=COMPLIANCE_CACHE_SIZE)
def _certify_compiled(client_term: HistoryExpression,
                      server_term: HistoryExpression,
                      max_states: int) -> ComplianceCertificate:
    from repro.compiled.search import compiled_relation
    from repro.compiled.tables import compile_contract
    relation = compiled_relation(
        compile_contract(Contract(client_term, already_projected=True)),
        compile_contract(Contract(server_term, already_projected=True)),
        max_states)
    if relation.trace is None:
        return ComplianceCertificate(True, None, relation.pairs, 0)
    h1, h2 = relation.trace[-1]
    witness = StuckWitness(trace=relation.trace,
                           client_ready=ready_sets(h1),
                           server_ready=ready_sets(h2),
                           unmatched=unmatched_pairs(h1, h2))
    return ComplianceCertificate(False, witness, relation.pairs, 0)


track_cache("staticcheck.compliance_compiled", _certify_compiled)


def _removed(pair: PairState, refusing: dict, successors: dict,
             env) -> bool:
    if pair in refusing:
        return True
    return any(env[successor] for successor in successors[pair])

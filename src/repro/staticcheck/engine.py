"""Whole-module static analysis: the engine behind ``repro analyze``.

Runs the four staticcheck analyses over a parsed
:class:`~repro.lang.module.Module` and aggregates their certificates:

* per declared term — may/must label analysis and static validity
  (:mod:`repro.staticcheck.labels`, :mod:`repro.staticcheck.validity`);
* per request occurrence × candidate service — compliance certification
  with stuck witnesses (:mod:`repro.staticcheck.compliance`);
* per client — plan certification, with a minimal-unsat-core
  explanation when no valid plan exists
  (:mod:`repro.staticcheck.plans`).

A module is *accepted* when every term is statically valid and every
client has a valid plan; non-compliant request/service pairs on their
own are informational (the planner routes around them).  All renderings
— text and JSON — are deterministic across processes: everything
derived from a set is sorted before it is shown.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.lang.module import Module
from repro.observability import runtime as _telemetry
from repro.analysis.requests import extract_requests
from repro.staticcheck.compliance import (ComplianceCertificate,
                                          certify_compliance)
from repro.staticcheck.labels import LabelAnalysis, analyse_labels
from repro.staticcheck.plans import PlanExplanation, explain_no_valid_plan
from repro.staticcheck.validity import (ValidityCertificate,
                                        certify_validity)


@dataclass(frozen=True)
class TermReport:
    """Label analysis and validity certificate of one declared term."""

    name: str
    kind: str
    labels: LabelAnalysis
    validity: ValidityCertificate

    def to_json(self) -> dict:
        witness = self.validity.witness
        return {
            "name": self.name,
            "kind": self.kind,
            "valid": self.validity.valid,
            "explored": self.validity.explored,
            "may": sorted(str(label) for label in self.labels.may),
            "must": sorted(str(label) for label in self.labels.must),
            "diverging": self.labels.diverging,
            "widened": self.labels.widened,
            "witness": None if witness is None else witness.to_json(),
        }


@dataclass(frozen=True)
class PairReport:
    """Compliance certificate of one request occurrence × service."""

    owner: str
    request: str
    service: str
    certificate: ComplianceCertificate

    def to_json(self) -> dict:
        witness = self.certificate.witness
        return {
            "owner": self.owner,
            "request": self.request,
            "service": self.service,
            "compliant": self.certificate.compliant,
            "pairs": self.certificate.pairs,
            "witness": None if witness is None else witness.to_json(),
        }


@dataclass(frozen=True)
class ClientPlanReport:
    """Plan certification of one client: a valid plan or an explanation."""

    client: str
    plan: str | None
    explanation: PlanExplanation | None

    @property
    def valid(self) -> bool:
        return self.explanation is None

    def to_json(self) -> dict:
        return {
            "client": self.client,
            "valid": self.valid,
            "plan": self.plan,
            "explanation": None if self.explanation is None
            else self.explanation.to_json(),
        }


@dataclass(frozen=True)
class ModuleAnalysis:
    """Everything ``repro analyze`` determined about one module."""

    path: str | None
    terms: tuple[TermReport, ...]
    pairs: tuple[PairReport, ...]
    plans: tuple[ClientPlanReport, ...]

    @property
    def ok(self) -> bool:
        """The acceptance verdict: every term statically valid and every
        client certified with a valid plan."""
        return (all(report.validity.valid for report in self.terms)
                and all(report.valid for report in self.plans))

    def to_json(self) -> dict:
        return {
            "schema": "repro-analyze.v1",
            "module": None if self.path is None
            else os.path.basename(self.path),
            "ok": self.ok,
            "terms": [report.to_json() for report in self.terms],
            "pairs": [report.to_json() for report in self.pairs],
            "plans": [report.to_json() for report in self.plans],
        }

    def render_text(self) -> str:
        name = "<module>" if self.path is None \
            else os.path.basename(self.path)
        lines = [f"analysis of {name}:"]
        for report in self.terms:
            verdict = "valid" if report.validity.valid else "INVALID"
            may = ", ".join(sorted(str(label) for label in
                                   report.labels.may)) or "-"
            lines.append(f"  {report.kind} {report.name}: {verdict} "
                         f"(may labels: {may})")
            if report.validity.witness is not None:
                lines.extend("    " + line for line in
                             report.validity.witness.render_text()
                             .splitlines())
        for report in self.pairs:
            verdict = ("compliant" if report.certificate.compliant
                       else "not compliant")
            lines.append(f"  request {report.request} ({report.owner}) "
                         f"|- {report.service}: {verdict}")
            if report.certificate.witness is not None:
                lines.extend("    " + line for line in
                             report.certificate.witness.render_text()
                             .splitlines())
        for report in self.plans:
            if report.valid:
                lines.append(f"  client {report.client}: valid plan "
                             f"{report.plan}")
            else:
                lines.extend("  " + line for line in
                             report.explanation.render_text().splitlines())
        lines.append(f"verdict: {'accepted' if self.ok else 'rejected'}")
        return "\n".join(lines)


def analyze_module(module: Module, *,
                   max_plans: int | None = None,
                   engine: str = "interpreted") -> ModuleAnalysis:
    """Run the whole-network static analysis on *module*.

    ``engine="compiled"`` routes the validity and compliance
    certifications through the compiled core (:mod:`repro.compiled`) —
    identical reports, faster on large modules."""
    tel = _telemetry.active()
    if tel is None:
        return _analyze(module, max_plans, engine)
    with tel.tracer.span("staticcheck.analyze_module",
                         module=module.path or "<module>",
                         engine=engine) as span:
        analysis = _analyze(module, max_plans, engine)
        span.set(ok=analysis.ok, terms=len(analysis.terms),
                 pairs=len(analysis.pairs))
        tel.emit("staticcheck.verdict", ok=analysis.ok,
                 engine=engine, terms=len(analysis.terms),
                 pairs=len(analysis.pairs))
        return analysis


def _analyze(module: Module, max_plans: int | None,
             engine: str) -> ModuleAnalysis:
    repository = module.repository

    terms = []
    for kind, table in (("client", module.clients),
                        ("service", module.services)):
        for name, term in table.items():
            terms.append(TermReport(name, kind, analyse_labels(term),
                                    certify_validity(term, engine=engine)))

    pairs = []
    for kind, table in (("client", module.clients),
                        ("service", module.services)):
        for name, term in table.items():
            for info in extract_requests(term):
                for location in repository.locations():
                    certificate = certify_compliance(
                        info.body, repository[location], engine=engine)
                    pairs.append(PairReport(name, info.request, location,
                                            certificate))

    plans = []
    for name, term in module.clients.items():
        explanation = explain_no_valid_plan(term, repository,
                                            location=name,
                                            max_plans=max_plans)
        plan = None
        if explanation is None:
            from repro.analysis.planner import find_valid_plans
            best = find_valid_plans(term, repository, location=name,
                                    max_plans=max_plans).best()
            if best is not None:
                plan = str(best.plan)
        plans.append(ClientPlanReport(name, plan, explanation))

    return ModuleAnalysis(module.path, tuple(terms), tuple(pairs),
                          tuple(plans))

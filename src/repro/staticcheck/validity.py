"""Static validity certification: proving ``|= η`` for all runs.

The concrete :class:`~repro.core.validity.ValidityMonitor` checks one
history at a time; this module certifies a whole history *expression* by
a symbolic product construction: BFS over pairs

    ``⟨residual term, abstract monitor state⟩``

where the abstract monitor (shared with :mod:`repro.analysis.security`)
keeps one frozen :class:`~repro.policies.usage_automata.PolicyRunner`
per policy of the term plus its activation count under the framings
opened so far.  Runner states are finite and activation depth is
bounded by the syntactic framing nesting, so the product is a finite
safety check — exactly the paper's reduction of validity to model
checking (Section 3.1), without ever enumerating individual runs.

On failure the BFS parent structure yields a *shortest* offending
abstract path, packaged as a :class:`~repro.staticcheck.witness.ValidityWitness`
(labels plus the violated automaton's state sets) that replays to a
genuine violation in the concrete semantics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from functools import lru_cache

from repro.core.actions import is_history_label
from repro.core.errors import StateSpaceLimitError
from repro.core.semantics import step
from repro.core.syntax import HistoryExpression, policies_of
from repro.observability import runtime as _telemetry
from repro.observability.cache_stats import track_cache
from repro.analysis.security import (MonitorState, advance_monitor,
                                     fresh_monitor_state)
from repro.staticcheck.witness import ValidityWitness, automaton_states

#: Default bound on explored ⟨residual, monitor⟩ product states.
DEFAULT_STATE_LIMIT = 200_000

#: Entries kept in the certification memo table (see
#: :func:`repro.staticcheck.clear_staticcheck_caches`).
VALIDITY_CACHE_SIZE = 1024


@dataclass(frozen=True)
class ValidityCertificate:
    """Outcome of the static validity certification of one term.

    ``valid`` certifies ``|= η`` for *every* history ``η`` the term can
    produce; otherwise ``witness`` is a shortest offending abstract path.
    ``explored`` counts distinct product states (0 when the term mentions
    no policy at all — validity is then trivial).
    """

    valid: bool
    witness: ValidityWitness | None
    explored: int

    def __bool__(self) -> bool:
        return self.valid


def certify_validity(term: HistoryExpression, *,
                     max_states: int = DEFAULT_STATE_LIMIT,
                     engine: str = "interpreted") -> ValidityCertificate:
    """Certify that every run of *term* yields a valid history.

    Memoised on the (immutable) term; the telemetry wrapper records the
    verdict, the explored-state count and the witness length.

    ``engine="compiled"`` runs the same product BFS over interned
    residual/monitor ids with memoised monitor advancement
    (:func:`repro.compiled.validity.compiled_certify_validity`) —
    identical certificate, typically much faster on policy-heavy terms.
    """
    if engine == "compiled":
        certify = _certify_compiled
    elif engine == "interpreted":
        certify = _certify
    else:
        raise ValueError(f"unknown certification engine {engine!r} "
                         "(expected 'interpreted' or 'compiled')")
    tel = _telemetry.active()
    if tel is None:
        return certify(term, max_states)
    with tel.tracer.span("staticcheck.certify_validity",
                         engine=engine) as span:
        certificate = certify(term, max_states)
        span.set(valid=certificate.valid, explored=certificate.explored)
        verdict = "valid" if certificate.valid else "witness"
        tel.metrics.counter("staticcheck.certifications",
                            analysis="validity", verdict=verdict).inc()
        tel.metrics.counter("staticcheck.explored_states").inc(
            certificate.explored)
        if certificate.witness is not None:
            tel.metrics.histogram("staticcheck.witness_length").observe(
                len(certificate.witness.labels))
        return certificate


@lru_cache(maxsize=VALIDITY_CACHE_SIZE)
def _certify(term: HistoryExpression,
             max_states: int) -> ValidityCertificate:
    policies = policies_of(term)
    if not policies:
        return ValidityCertificate(True, None, 0)

    initial = (term, fresh_monitor_state(policies))
    seen: set[tuple[HistoryExpression, MonitorState]] = {initial}
    frontier: deque = deque([(initial, ())])
    explored = 0
    while frontier:
        (residual, monitor), path = frontier.popleft()
        explored += 1
        for label, successor in step(residual):
            appends = (label,) if is_history_label(label) else ()
            next_monitor, violated = advance_monitor(monitor, appends)
            new_path = path + appends
            if violated is not None:
                # Every state kept by the BFS is violation-free, so the
                # history is valid right up to the final label — the
                # witness therefore replays sharply in the concrete
                # monitor (valid prefix, last label refused).
                witness = ValidityWitness(
                    labels=new_path,
                    policy=violated,
                    states=automaton_states(new_path, violated))
                return ValidityCertificate(False, witness, explored)
            next_state = (successor, next_monitor)
            if next_state not in seen:
                if len(seen) >= max_states:
                    raise StateSpaceLimitError(max_states,
                                               "validity product")
                seen.add(next_state)
                frontier.append((next_state, new_path))
    return ValidityCertificate(True, None, explored)


track_cache("staticcheck.validity", _certify)


@lru_cache(maxsize=VALIDITY_CACHE_SIZE)
def _certify_compiled(term: HistoryExpression,
                      max_states: int) -> ValidityCertificate:
    from repro.compiled.validity import compiled_certify_validity
    return compiled_certify_validity(term, max_states)


track_cache("staticcheck.validity_compiled", _certify_compiled)

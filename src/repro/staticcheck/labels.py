"""May/must label analysis of history expressions.

An abstract interpretation over the powerset of the term's syntactic
label alphabet:

* ``may(H)`` over-approximates the labels occurring on *some* run of
  ``H`` — sound for the prefix-closed trace semantics of
  :func:`repro.core.semantics.step`, so any label a concrete run ever
  produces is in the may set;
* ``must(H)`` under-approximates the labels occurring on *every*
  maximal run — choices intersect, and the tail of a sequence only
  contributes when its head cannot diverge.

Recursion is handled by alpha-renaming the term so that every ``μ``
binder is globally unique, phrasing one equation per binder and solving
the system with the worklist engine (Kleene iteration; the optional
set-height widening of :class:`~repro.staticcheck.solver.PowersetLattice`
bounds iteration on pathologically deep alphabets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.actions import (FrameClose, FrameOpen, Label, SessionClose,
                                SessionOpen)
from repro.core.syntax import (ClosePending, Epsilon, EventNode,
                               ExternalChoice, FrameClosePending, Framing,
                               HistoryExpression, InternalChoice, Mu, Request,
                               Seq, Var, free_variables)
from repro.staticcheck.solver import Equation, PowersetLattice, solve


@dataclass(frozen=True)
class LabelAnalysis:
    """Result of the may/must analysis of one history expression."""

    may: frozenset
    must: frozenset
    universe: frozenset
    diverging: bool
    iterations: int
    widened: bool

    def covers(self, label: Label) -> bool:
        """Is *label* abstractly possible?  (Soundness: a ``False`` answer
        proves no concrete run ever produces it.)"""
        return label in self.may


def analyse_labels(term: HistoryExpression, *,
                   widen_height: int | None = None,
                   widen_after: int | None = None) -> LabelAnalysis:
    """Run the may and must label analyses on *term*."""
    renamed = _unique_binders(term)
    universe = syntactic_alphabet(renamed)
    lattice = PowersetLattice(universe, widen_height)
    binders = _binder_bodies(renamed)

    def system(transfer):
        return {name: Equation(name,
                               tuple(sorted(free_variables(body))),
                               (lambda env, b=body: transfer(b, env)))
                for name, body in binders.items()}

    may_solution = solve(system(_may), lattice, widen_after=widen_after)
    must_solution = solve(system(_must), lattice, widen_after=widen_after)
    return LabelAnalysis(
        may=_may(renamed, may_solution.values),
        must=_must(renamed, must_solution.values),
        universe=universe,
        diverging=may_diverge(renamed),
        iterations=may_solution.iterations + must_solution.iterations,
        widened=bool(may_solution.widened or must_solution.widened))


def syntactic_alphabet(term: HistoryExpression) -> frozenset:
    """Every label the transition semantics can possibly emit from any
    residual of *term* — the universe of the powerset lattice."""
    labels: set = set()
    for node in term.walk():
        if isinstance(node, EventNode):
            labels.add(node.event)
        elif isinstance(node, (ExternalChoice, InternalChoice)):
            labels.update(label for label, _ in node.branches)
        elif isinstance(node, (Request, ClosePending)):
            labels.add(SessionOpen(node.request, node.policy))
            labels.add(SessionClose(node.request, node.policy))
        elif isinstance(node, (Framing, FrameClosePending)):
            labels.add(FrameOpen(node.policy))
            labels.add(FrameClose(node.policy))
    return frozenset(labels)


def may_diverge(term: HistoryExpression) -> bool:
    """Syntactic divergence check: may some run of *term* be infinite?

    Over-approximate (a ``μ`` whose variable occurs in its body counts as
    diverging even if the recursive branch is unreachable) — the safe
    direction for the *must* analysis, which drops the tail of a sequence
    whose head may never finish.
    """
    if isinstance(term, Mu):
        return term.var in free_variables(term.body) or may_diverge(term.body)
    if isinstance(term, Seq):
        return may_diverge(term.first) or may_diverge(term.second)
    if isinstance(term, (ExternalChoice, InternalChoice)):
        return any(may_diverge(body) for _, body in term.branches)
    if isinstance(term, (Request, Framing)):
        return may_diverge(term.body)
    return False


# -- transfer functions -----------------------------------------------------

def _may(term: HistoryExpression,
         env: Mapping[str, frozenset]) -> frozenset:
    """Labels on *some* run of *term* (environment maps μ-binders)."""
    if isinstance(term, Epsilon):
        return frozenset()
    if isinstance(term, Var):
        return env.get(term.name, frozenset())
    if isinstance(term, EventNode):
        return frozenset({term.event})
    if isinstance(term, Seq):
        return _may(term.first, env) | _may(term.second, env)
    if isinstance(term, (ExternalChoice, InternalChoice)):
        result: frozenset = frozenset()
        for label, body in term.branches:
            result |= frozenset({label}) | _may(body, env)
        return result
    if isinstance(term, Mu):
        return env.get(term.var, frozenset()) | _may(term.body, env)
    if isinstance(term, Request):
        return (frozenset({SessionOpen(term.request, term.policy),
                           SessionClose(term.request, term.policy)})
                | _may(term.body, env))
    if isinstance(term, ClosePending):
        return frozenset({SessionClose(term.request, term.policy)})
    if isinstance(term, Framing):
        return (frozenset({FrameOpen(term.policy), FrameClose(term.policy)})
                | _may(term.body, env))
    if isinstance(term, FrameClosePending):
        return frozenset({FrameClose(term.policy)})
    raise TypeError(f"not a history expression: {term!r}")


def _must(term: HistoryExpression,
          env: Mapping[str, frozenset]) -> frozenset:
    """Labels on *every* maximal run of *term*."""
    if isinstance(term, (Epsilon, Var)):
        # A recursion variable contributes nothing: the lfp from ⊥ keeps
        # `must` an under-approximation (unrolling can only shrink the
        # intersection over runs, never grow it).
        return frozenset()
    if isinstance(term, EventNode):
        return frozenset({term.event})
    if isinstance(term, Seq):
        head = _must(term.first, env)
        if may_diverge(term.first):
            return head
        return head | _must(term.second, env)
    if isinstance(term, (ExternalChoice, InternalChoice)):
        result: frozenset | None = None
        for label, body in term.branches:
            branch = frozenset({label}) | _must(body, env)
            result = branch if result is None else (result & branch)
        return result if result is not None else frozenset()
    if isinstance(term, Mu):
        return env.get(term.var, frozenset()) | _must(term.body, env)
    if isinstance(term, Request):
        open_label = SessionOpen(term.request, term.policy)
        close_label = SessionClose(term.request, term.policy)
        guaranteed = frozenset({open_label}) | _must(term.body, env)
        if not may_diverge(term.body):
            guaranteed |= frozenset({close_label})
        return guaranteed
    if isinstance(term, ClosePending):
        return frozenset({SessionClose(term.request, term.policy)})
    if isinstance(term, Framing):
        guaranteed = frozenset({FrameOpen(term.policy)}) | _must(term.body,
                                                                 env)
        if not may_diverge(term.body):
            guaranteed |= frozenset({FrameClose(term.policy)})
        return guaranteed
    if isinstance(term, FrameClosePending):
        return frozenset({FrameClose(term.policy)})
    raise TypeError(f"not a history expression: {term!r}")


# -- alpha renaming ---------------------------------------------------------

def _unique_binders(term: HistoryExpression) -> HistoryExpression:
    """Rename every ``μ`` binder to a globally unique name, so one flat
    environment (binder name → lattice value) is well defined."""
    used: set[str] = set()
    for node in term.walk():
        if isinstance(node, (Mu, Var)):
            used.add(node.var if isinstance(node, Mu) else node.name)
    counter = [0]

    def fresh(base: str) -> str:
        candidate = base
        while candidate in used:
            counter[0] += 1
            candidate = f"{base}#{counter[0]}"
        used.add(candidate)
        return candidate

    def rename(node: HistoryExpression,
               scope: dict[str, str]) -> HistoryExpression:
        if isinstance(node, (Epsilon, EventNode, ClosePending,
                             FrameClosePending)):
            return node
        if isinstance(node, Var):
            return Var(scope.get(node.name, node.name))
        if isinstance(node, Mu):
            name = fresh(node.var)
            inner = dict(scope)
            inner[node.var] = name
            return Mu(name, rename(node.body, inner))
        if isinstance(node, Seq):
            return Seq(rename(node.first, scope), rename(node.second, scope))
        if isinstance(node, ExternalChoice):
            return ExternalChoice(tuple(
                (label, rename(body, scope)) for label, body in node.branches))
        if isinstance(node, InternalChoice):
            return InternalChoice(tuple(
                (label, rename(body, scope)) for label, body in node.branches))
        if isinstance(node, Request):
            return Request(node.request, node.policy,
                           rename(node.body, scope))
        if isinstance(node, Framing):
            return Framing(node.policy, rename(node.body, scope))
        raise TypeError(f"not a history expression: {node!r}")

    return rename(term, {})


def _binder_bodies(term: HistoryExpression) -> dict[str, HistoryExpression]:
    """The body of each (unique) ``μ`` binder in *term*."""
    bodies: dict[str, HistoryExpression] = {}
    for node in term.walk():
        if isinstance(node, Mu):
            bodies[node.var] = node.body
    return bodies

"""Explaining why no valid plan exists (minimal unsatisfiable cores).

:func:`repro.analysis.planner.find_valid_plans` reports plan failure as
an empty list; this module turns that bare refusal into a certificate.
A candidate plan must satisfy one constraint per (transitively
reachable) request — *the chosen service complies with the session
body* — plus one global *security* constraint — *the assembled
behaviour never produces an invalid history*.  When no plan satisfies
them all, a deletion-based minimal unsatisfiable core is computed:
constraints are dropped one at a time, keeping only those whose removal
would make the system satisfiable.  Each surviving constraint carries
its evidence — per-candidate stuck witnesses
(:class:`~repro.staticcheck.witness.StuckWitness`) for a compliance
constraint, a replayable
:class:`~repro.staticcheck.witness.ValidityWitness` for the security
constraint — rendered as a human-readable "why no valid plan exists"
report.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.core.syntax import HistoryExpression
from repro.network.repository import Repository
from repro.observability import runtime as _telemetry
from repro.observability.cache_stats import track_cache
from repro.analysis.planner import (analyze_plan, enumerate_plans,
                                    find_valid_plans)
from repro.analysis.requests import extract_requests
from repro.staticcheck.compliance import certify_compliance
from repro.staticcheck.witness import (StuckWitness, ValidityWitness,
                                       witness_from_history)

#: Entries kept in the explanation memo table (see
#: :func:`repro.staticcheck.clear_staticcheck_caches`).
PLAN_CACHE_SIZE = 256

#: Bound on the candidate plans the unsat-core search enumerates.
DEFAULT_PLAN_CAP = 512


@dataclass(frozen=True)
class BindingRefusal:
    """One candidate service refused for one request, with evidence."""

    location: str
    witness: StuckWitness | None

    def to_json(self) -> dict:
        return {"location": self.location,
                "witness": None if self.witness is None
                else self.witness.to_json()}


@dataclass(frozen=True)
class CoreConstraint:
    """One member of the minimal unsatisfiable core.

    ``kind`` is ``"compliance"`` (request *request* must be served by a
    complying candidate — the refusing ones are listed in ``refusals``,
    the complying ones in ``compliant``), ``"security"`` (every
    otherwise acceptable plan reaches a policy violation) or
    ``"completeness"`` (request *request* has no candidate service at
    all).  A compliance constraint with an empty ``compliant`` tuple is
    unsatisfiable on its own: the request is doomed.
    """

    kind: str
    request: str | None = None
    refusals: tuple[BindingRefusal, ...] = ()
    compliant: tuple[str, ...] = ()

    def to_json(self) -> dict:
        return {"kind": self.kind, "request": self.request,
                "compliant": list(self.compliant),
                "refusals": [refusal.to_json()
                             for refusal in self.refusals]}


@dataclass(frozen=True)
class PlanExplanation:
    """Why :func:`find_valid_plans` came back empty, with witnesses."""

    location: str
    core: tuple[CoreConstraint, ...]
    security_witness: ValidityWitness | None
    plans_considered: int

    def render_text(self) -> str:
        lines = [f"no valid plan exists for the client at "
                 f"'{self.location}' "
                 f"({self.plans_considered} candidate plans considered); "
                 "minimal unsatisfiable core:"]
        for constraint in self.core:
            if constraint.kind == "completeness":
                lines.append(f"- request {constraint.request}: no candidate "
                             "service can serve it")
            elif constraint.kind == "compliance":
                if constraint.compliant:
                    complying = ", ".join(constraint.compliant)
                    lines.append(
                        f"- request {constraint.request}: must be served by "
                        f"one of {complying} (every other candidate "
                        "refuses)")
                else:
                    lines.append(f"- request {constraint.request}: no "
                                 "candidate service complies with the "
                                 "session body")
                for refusal in constraint.refusals:
                    lines.append(f"    candidate {refusal.location} refuses:")
                    if refusal.witness is not None:
                        lines.extend(
                            "      " + line for line in
                            refusal.witness.render_text().splitlines())
            elif constraint.kind == "security":
                lines.append("- security: every complete compliant plan "
                             "reaches a policy violation")
                if self.security_witness is not None:
                    lines.extend(
                        "    " + line for line in
                        self.security_witness.render_text().splitlines())
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "location": self.location,
            "satisfiable": False,
            "plans_considered": self.plans_considered,
            "core": [constraint.to_json() for constraint in self.core],
            "security_witness": None if self.security_witness is None
            else self.security_witness.to_json(),
        }


def explain_no_valid_plan(client: HistoryExpression,
                          repository: Repository,
                          candidates=None, location: str = "client", *,
                          max_plans: int | None = None,
                          plan_cap: int = DEFAULT_PLAN_CAP
                          ) -> PlanExplanation | None:
    """Explain why no valid plan exists — or return ``None`` when one does.

    Memoised on the client term and the repository contents; *candidates*
    optionally restricts the locations allowed per request (as in
    :func:`~repro.analysis.planner.find_valid_plans`), *plan_cap* bounds
    the candidate plans the unsat-core search may enumerate.
    """
    items = tuple(repository.items())
    if candidates is None:
        candidate_key = None
    else:
        candidate_key = tuple(sorted(
            (request, tuple(locations))
            for request, locations in candidates.items()))
    tel = _telemetry.active()
    if tel is None:
        return _explain(client, items, candidate_key, location, max_plans,
                        plan_cap)
    with tel.tracer.span("staticcheck.explain_no_valid_plan",
                         location=location) as span:
        explanation = _explain(client, items, candidate_key, location,
                               max_plans, plan_cap)
        verdict = "valid_plan" if explanation is None else "explained"
        span.set(verdict=verdict)
        tel.metrics.counter("staticcheck.certifications",
                            analysis="plans", verdict=verdict).inc()
        return explanation


@lru_cache(maxsize=PLAN_CACHE_SIZE)
def _explain(client: HistoryExpression, items: tuple, candidate_key,
             location: str, max_plans: int | None,
             plan_cap: int) -> PlanExplanation | None:
    repository = Repository(dict(items), validate=False)
    candidates = (None if candidate_key is None
                  else {request: list(locations)
                        for request, locations in candidate_key})

    planner = find_valid_plans(client, repository, candidates, location,
                               max_plans)
    if planner.has_valid_plan:
        return None

    bodies = _reachable_requests(client, repository, candidates)

    def options_for(request: str) -> tuple[str, ...]:
        if candidates is not None and request in candidates:
            return tuple(candidates[request])
        return repository.locations()

    # Per-binding compliance verdicts (with stuck witnesses), decided
    # once per (request, candidate) pair.
    compliant_of: dict[tuple[str, str], bool] = {}
    refusals_of: dict[str, tuple[BindingRefusal, ...]] = {}
    accepting_of: dict[str, tuple[str, ...]] = {}
    unresolvable: list[str] = []
    for request in sorted(bodies):
        refused = []
        accepting = []
        any_candidate = False
        for loc in options_for(request):
            service = repository.get(loc)
            if service is None:
                continue
            any_candidate = True
            certificate = certify_compliance(bodies[request], service)
            compliant_of[(request, loc)] = certificate.compliant
            if certificate.compliant:
                accepting.append(loc)
            else:
                refused.append(BindingRefusal(loc, certificate.witness))
        refusals_of[request] = tuple(refused)
        accepting_of[request] = tuple(accepting)
        if not any_candidate:
            unresolvable.append(request)

    if unresolvable:
        core = tuple(CoreConstraint("completeness", request)
                     for request in unresolvable)
        return PlanExplanation(location, core, None,
                               planner.metrics.get("plans_analyzed", 0))

    plans = []
    for index, plan in enumerate(
            enumerate_plans(client, repository, candidates)):
        if index >= plan_cap:
            break
        plans.append(plan)

    security_cache: dict = {}

    def secure(plan) -> bool:
        verdict = security_cache.get(plan)
        if verdict is None:
            analysis = analyze_plan(client, plan, repository, location,
                                    prune=False)
            security_cache[plan] = analysis
            verdict = analysis
        return verdict.security.secure

    def satisfiable(constraints: tuple[tuple[str, str | None], ...]) -> bool:
        """Does some candidate plan satisfy every listed constraint?"""
        for plan in plans:
            ok = all(kind != "compliance"
                     or _binding_complies(plan, request, compliant_of)
                     for kind, request in constraints)
            if ok and any(kind == "security" for kind, _ in constraints):
                ok = secure(plan)
            if ok:
                return True
        return False

    all_constraints = tuple((("compliance", request)
                             for request in sorted(bodies))
                            ) + (("security", None),)

    # Deletion-based minimal unsatisfiable core: drop each constraint in
    # turn; keep it only when the remainder becomes satisfiable without
    # it.  The result is subset-minimal (every member is necessary).
    core = list(all_constraints)
    for constraint in list(core):
        rest = tuple(c for c in core if c != constraint)
        if not satisfiable(rest):
            core.remove(constraint)

    security_witness = None
    if any(kind == "security" for kind, _ in core):
        for plan in plans:
            if not all(_binding_complies(plan, request, compliant_of)
                       for request in sorted(bodies)):
                continue
            report = security_cache.get(plan)
            if report is None:
                report = analyze_plan(client, plan, repository,
                                      location, prune=False)
                security_cache[plan] = report
            if not report.security.secure:
                security_witness = witness_from_history(
                    report.security.history_labels())
                break

    constraints = []
    for kind, request in core:
        if kind == "compliance":
            constraints.append(CoreConstraint(
                "compliance", request, refusals_of.get(request, ()),
                accepting_of.get(request, ())))
        else:
            constraints.append(CoreConstraint("security"))
    return PlanExplanation(location, tuple(constraints), security_witness,
                           max(planner.metrics.get("plans_analyzed", 0),
                               len(plans)))


track_cache("staticcheck.plans", _explain)


def _binding_complies(plan, request: str, compliant_of) -> bool:
    """Is the compliance constraint of *request* satisfied under *plan*?

    A request the plan does not bind is not reachable under it (complete
    plans bind exactly the transitively reachable requests), so the
    constraint holds vacuously.
    """
    binding = plan.lookup(request)
    if binding is None:
        return True
    return compliant_of.get((request, binding), False)


def _reachable_requests(client: HistoryExpression, repository: Repository,
                        candidates) -> dict[str, HistoryExpression]:
    """Request id → session body, transitively through every candidate
    service a plan could select (first occurrence wins, as in
    :func:`~repro.analysis.planner.analyze_plan`)."""
    bodies: dict[str, HistoryExpression] = {}
    queue = list(extract_requests(client))
    while queue:
        info = queue.pop(0)
        if info.request in bodies:
            continue
        bodies[info.request] = info.body
        if candidates is not None and info.request in candidates:
            options = tuple(candidates[info.request])
        else:
            options = repository.locations()
        for loc in options:
            service = repository.get(loc)
            if service is not None:
                queue.extend(extract_requests(service))
    return bodies

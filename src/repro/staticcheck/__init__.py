"""Whole-network abstract interpretation (static certification layer).

A generic worklist fixpoint solver over finite lattices
(:mod:`~repro.staticcheck.solver`) and four analyses layered on it:

====================  ====================================================
analysis              certifies
====================  ====================================================
label analysis        may/must label sets of a history expression
static validity       ``|= η`` for all runs, with a replayable
                      :class:`~repro.staticcheck.witness.ValidityWitness`
                      on failure
compliance (gfp)      ``H1 ⊢ H2`` as a greatest fixpoint on the ready-set
                      product, with a
                      :class:`~repro.staticcheck.witness.StuckWitness` on
                      refusal
plan explanation      a minimal unsatisfiable core of (request,
                      candidate-service) constraints when no valid plan
                      exists
====================  ====================================================

:func:`~repro.staticcheck.engine.analyze_module` aggregates all four
over a parsed module — the engine behind ``repro analyze`` and the
SUS04x lint rules.

The analyses memoise certificates in module-level LRU tables tracked by
the cache-stats layer (``staticcheck.validity``, ``staticcheck.compliance``,
``staticcheck.plans``); :func:`clear_staticcheck_caches` drops them and
rebaselines their adapters, and is registered with
:func:`repro.contracts.contract.clear_contract_caches` so a contract
cache reset can never leave stale derived certificates behind.
"""

from __future__ import annotations

from repro.observability.cache_stats import reset_cache_stats
from repro.contracts.contract import register_cache_clearer
from repro.staticcheck.solver import (BoolLattice, Equation,
                                      FixpointSolution, Lattice,
                                      PowersetLattice, solve)
from repro.staticcheck.labels import (LabelAnalysis, analyse_labels,
                                      may_diverge, syntactic_alphabet)
from repro.staticcheck.validity import (ValidityCertificate,
                                        certify_validity)
from repro.staticcheck.compliance import (ComplianceCertificate,
                                          certify_compliance)
from repro.staticcheck.plans import (BindingRefusal, CoreConstraint,
                                     PlanExplanation,
                                     explain_no_valid_plan)
from repro.staticcheck.engine import (ClientPlanReport, ModuleAnalysis,
                                      PairReport, TermReport,
                                      analyze_module)
from repro.staticcheck.witness import (StuckWitness, ValidityWitness,
                                       witness_from_history)

#: The cache-stats names owned by the staticcheck memo tables.
_CACHE_NAMES = ("staticcheck.validity", "staticcheck.compliance",
                "staticcheck.validity_compiled",
                "staticcheck.compliance_compiled",
                "staticcheck.plans")


def clear_staticcheck_caches() -> None:
    """Drop the staticcheck memo tables (validity, compliance and plan
    certificates, interpreted and compiled engines alike) and rebaseline
    their cache-stats adapters."""
    from repro.staticcheck import compliance as _compliance
    from repro.staticcheck import plans as _plans
    from repro.staticcheck import validity as _validity
    _validity._certify.cache_clear()
    _validity._certify_compiled.cache_clear()
    _compliance._certify.cache_clear()
    _compliance._certify_compiled.cache_clear()
    _plans._explain.cache_clear()
    reset_cache_stats(*_CACHE_NAMES)


register_cache_clearer(clear_staticcheck_caches)

__all__ = [
    "BindingRefusal",
    "BoolLattice",
    "ClientPlanReport",
    "ComplianceCertificate",
    "CoreConstraint",
    "Equation",
    "FixpointSolution",
    "LabelAnalysis",
    "Lattice",
    "ModuleAnalysis",
    "PairReport",
    "PlanExplanation",
    "PowersetLattice",
    "StuckWitness",
    "TermReport",
    "ValidityCertificate",
    "ValidityWitness",
    "analyse_labels",
    "analyze_module",
    "certify_compliance",
    "certify_validity",
    "clear_staticcheck_caches",
    "explain_no_valid_plan",
    "may_diverge",
    "solve",
    "syntactic_alphabet",
    "witness_from_history",
]

"""Counterexample witnesses produced by the static analyses.

A static rejection is only trustworthy if it can be *replayed* in the
concrete semantics, so each witness class carries enough state to
re-execute its own refusal:

* :class:`ValidityWitness` — a shortest offending abstract path (labels
  plus the violated automaton's state sets along it); ``replays()``
  feeds the labels through the concrete
  :class:`~repro.core.validity.ValidityMonitor` and confirms the
  violation lands exactly on the final label.
* :class:`StuckWitness` — a shortest synchronisation path to a stuck
  product configuration together with the ready sets that fail the
  Definition 3/4 matching; ``replays()`` re-walks the path over the
  concrete contract transition systems and re-checks the refusal.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.actions import HistoryLabel
from repro.core.ready_sets import ReadySet, co_set, ready_sets
from repro.core.syntax import HistoryExpression
from repro.core.validity import ValidityMonitor
from repro.policies.usage_automata import Policy


def _sorted_set(items) -> list[str]:
    """A deterministic JSON rendering of a set-like value."""
    return sorted(str(item) for item in items)


@dataclass(frozen=True)
class ValidityWitness:
    """A shortest abstract path proving ``|= η`` fails.

    ``labels`` is the offending history prefix; its last label is the one
    the violated *policy* refuses.  ``states`` tracks the policy
    automaton's reachable state set after each label (``states[0]`` is
    the set before any label), so the path can be read as a run of the
    usage automaton ending in an offending state.
    """

    labels: tuple[HistoryLabel, ...]
    policy: Policy
    states: tuple[frozenset[str], ...]

    def replays(self) -> bool:
        """Does the witness reproduce its violation concretely?

        Feeds the labels through a fresh concrete monitor: the history
        must stay valid up to the last label, the reported policy must be
        among those blaming the last label, and appending it must break
        validity.  Any mismatch means the static engine produced a
        spurious path.
        """
        if not self.labels:
            return False
        monitor = ValidityMonitor()
        for label in self.labels[:-1]:
            if not monitor.extend(label):
                return False
        last = self.labels[-1]
        if self.policy not in monitor.blame(last):
            return False
        return not monitor.extend(last)

    def render_text(self) -> str:
        lines = [f"validity violation of policy {self.policy}:"]
        for index, label in enumerate(self.labels):
            states = "{" + ", ".join(_sorted_set(self.states[index + 1])) + "}"
            lines.append(f"  {index + 1}. {label}  ->  {states}")
        lines.append(f"  the final label is refused by {self.policy}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "kind": "validity",
            "policy": str(self.policy),
            "labels": [str(label) for label in self.labels],
            "states": [_sorted_set(states) for states in self.states],
        }


@dataclass(frozen=True)
class StuckWitness:
    """A shortest path into a stuck configuration (Definitions 3/4).

    ``trace`` is a sequence of product states ``⟨H1, H2⟩`` — projected
    contract terms — from the initial pair to the stuck one; consecutive
    states are related by one synchronisation.  ``unmatched`` lists the
    ready-set pairs ``(C, S)`` of the stuck state with ``C ≠ ∅`` and
    ``C ∩ co(S) = ∅``: the client insists on one of the actions in ``C``
    while the server may present ``S``, which offers none of their
    co-actions.
    """

    trace: tuple[tuple[HistoryExpression, HistoryExpression], ...]
    client_ready: frozenset[ReadySet]
    server_ready: frozenset[ReadySet]
    unmatched: tuple[tuple[ReadySet, ReadySet], ...]

    @property
    def stuck_pair(self) -> tuple[HistoryExpression, HistoryExpression]:
        return self.trace[-1]

    def replays(self) -> bool:
        """Does the witness reproduce its refusal concretely?

        Re-walks ``trace`` over the concrete contract transition systems
        (each hop must be a genuine synchronisation) and re-derives the
        unmatched ready-set pairs of the final state from
        :func:`~repro.core.ready_sets.ready_sets` — the stuck
        configuration must refuse for exactly the reported reason.
        """
        from repro.contracts.contract import Contract
        from repro.contracts.product import synchronisations

        if not self.trace or not self.unmatched:
            return False
        client = Contract(self.trace[0][0], already_projected=True)
        server = Contract(self.trace[0][1], already_projected=True)
        for state, successor in zip(self.trace, self.trace[1:]):
            moves = set(synchronisations(client.lts, server.lts, state))
            if successor not in moves:
                return False
        h1, h2 = self.trace[-1]
        if (ready_sets(h1) != self.client_ready
                or ready_sets(h2) != self.server_ready):
            return False
        for client_set, server_set in self.unmatched:
            if not client_set:
                return False
            if client_set & co_set(server_set):
                return False
            if client_set not in self.client_ready:
                return False
            if server_set not in self.server_ready:
                return False
        return True

    def render_text(self) -> str:
        from repro.lang.pretty import pretty

        lines = ["stuck configuration (no ready-set match):"]
        for depth, (h1, h2) in enumerate(self.trace):
            lines.append(f"  {depth}: <{pretty(h1)} | {pretty(h2)}>")
        for client_set, server_set in self.unmatched:
            lines.append(
                f"  client insists on {_render_ready(client_set)} but the "
                f"server may present {_render_ready(server_set)}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        from repro.lang.pretty import pretty

        return {
            "kind": "stuck",
            "trace": [[pretty(h1), pretty(h2)] for h1, h2 in self.trace],
            "client_ready": sorted(
                _sorted_set(rs) for rs in self.client_ready),
            "server_ready": sorted(
                _sorted_set(rs) for rs in self.server_ready),
            "unmatched": [[_sorted_set(client_set), _sorted_set(server_set)]
                          for client_set, server_set in self.unmatched],
        }


def witness_from_history(labels) -> ValidityWitness | None:
    """Package a concrete offending history as a :class:`ValidityWitness`.

    Feeds *labels* (e.g. the flattened counterexample of a security model
    checking run) through a fresh monitor and truncates at the first
    refused label, so the returned witness replays sharply by
    construction.  ``None`` when the history is entirely valid.
    """
    monitor = ValidityMonitor()
    consumed: list[HistoryLabel] = []
    for label in labels:
        blamed = monitor.blame(label)
        if blamed:
            policy = blamed[0]
            path = tuple(consumed) + (label,)
            return ValidityWitness(labels=path, policy=policy,
                                   states=automaton_states(path, policy))
        monitor.extend(label)
        consumed.append(label)
    return None


def automaton_states(path: tuple, policy: Policy
                     ) -> tuple[frozenset[str], ...]:
    """The policy automaton's reachable state set after each label of
    *path* (framing labels leave the automaton in place);
    ``len(result) == len(path) + 1``, the first entry being the initial
    set."""
    from repro.core.actions import Event

    runner = policy.runner()
    states = [_state_union(runner)]
    for label in path:
        if isinstance(label, Event):
            runner.step(label)
        states.append(_state_union(runner))
    return tuple(states)


def _state_union(runner) -> frozenset[str]:
    merged: set[str] = set()
    for targets in runner.current_states().values():
        merged.update(targets)
    return frozenset(merged)


def _render_ready(actions: ReadySet) -> str:
    if not actions:
        return "{}"
    return "{" + ", ".join(_sorted_set(actions)) + "}"

"""A generic worklist fixpoint solver over finite lattices.

Every analysis in :mod:`repro.staticcheck` is phrased as an *equation
system*: finitely many variables, one monotone transfer function each,
values drawn from a lattice of finite height.  The solver computes the
least solution by chaotic (worklist) iteration — Kleene iteration with
recomputation limited to the variables whose dependencies changed —
and optionally *widens* a variable that has been updated too often,
trading precision for a guaranteed early exit on tall lattices.

The lattice interface is deliberately tiny (``bottom``/``join``/``leq``
plus an optional ``widen``); :class:`PowersetLattice` over a finite
label universe and the two-point :class:`BoolLattice` cover everything
the four client analyses need.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Generic, Hashable, Mapping, TypeVar

from repro.observability import runtime as _telemetry

V = TypeVar("V")
N = TypeVar("N", bound=Hashable)


class Lattice(Generic[V]):
    """A join-semilattice of finite height."""

    def bottom(self) -> V:
        raise NotImplementedError

    def join(self, left: V, right: V) -> V:
        raise NotImplementedError

    def leq(self, left: V, right: V) -> bool:
        """``left ⊑ right`` — default: ``left ⊔ right = right``."""
        return self.join(left, right) == right

    def widen(self, old: V, new: V) -> V:
        """The widening ``old ∇ new``; the default is no widening."""
        return new


class PowersetLattice(Lattice[frozenset]):
    """The powerset of a finite *universe*, ordered by inclusion.

    ``widen`` jumps straight to the full universe once a value's height
    (its cardinality) exceeds *widen_height* — the classic set-height
    widening: sound (the result only grows) and terminating after one
    more step, at the price of declaring every label possible.
    """

    __slots__ = ("universe", "widen_height")

    def __init__(self, universe: frozenset,
                 widen_height: int | None = None) -> None:
        self.universe = frozenset(universe)
        self.widen_height = widen_height

    def bottom(self) -> frozenset:
        return frozenset()

    def top(self) -> frozenset:
        return self.universe

    def join(self, left: frozenset, right: frozenset) -> frozenset:
        return left | right

    def leq(self, left: frozenset, right: frozenset) -> bool:
        return left <= right

    def widen(self, old: frozenset, new: frozenset) -> frozenset:
        if self.widen_height is not None and len(new) > self.widen_height:
            return self.universe
        return new


class BoolLattice(Lattice[bool]):
    """The two-point lattice ``False ⊑ True``.

    Used to run *greatest*-fixpoint arguments through the least-fixpoint
    solver: encode "removed from the candidate relation" as ``True`` and
    the gfp is the complement of the computed lfp.
    """

    def bottom(self) -> bool:
        return False

    def join(self, left: bool, right: bool) -> bool:
        return left or right

    def leq(self, left: bool, right: bool) -> bool:
        return (not left) or right


@dataclass(frozen=True)
class Equation(Generic[N, V]):
    """One equation ``variable = transfer(environment)``.

    ``dependencies`` lists the variables the transfer function reads;
    the solver re-evaluates this equation whenever one of them changes.
    """

    variable: N
    dependencies: tuple[N, ...]
    transfer: Callable[[Mapping[N, V]], V]


@dataclass
class FixpointSolution(Generic[N, V]):
    """The least solution of an equation system.

    ``iterations`` counts transfer-function evaluations (the classic
    cost measure of chaotic iteration); ``widened`` lists the variables
    whose final value was produced by widening and is therefore an
    over-approximation of the exact least fixpoint.
    """

    values: dict[N, V]
    iterations: int
    widened: frozenset = field(default_factory=frozenset)

    def __getitem__(self, variable: N) -> V:
        return self.values[variable]


def solve(equations: Mapping[N, Equation],
          lattice: Lattice[V], *,
          widen_after: int | None = None,
          max_iterations: int = 100_000) -> FixpointSolution[N, V]:
    """Solve the *equations* by worklist iteration from ``⊥``.

    With monotone transfers the result is the least fixpoint (Kleene);
    *widen_after* bounds the per-variable update count before the
    lattice's ``widen`` is applied, guaranteeing termination even on
    lattices whose height exceeds the iteration budget.  A system that
    still fails to stabilise within *max_iterations* raises
    ``RuntimeError`` — with finite lattices this indicates a
    non-monotone transfer function, not a big input.
    """
    values: dict[N, V] = {name: lattice.bottom() for name in equations}
    updates: dict[N, int] = {name: 0 for name in equations}
    widened: set[N] = set()

    dependents: dict[N, list[N]] = {name: [] for name in equations}
    for name, equation in equations.items():
        for dependency in equation.dependencies:
            if dependency in dependents:
                dependents[dependency].append(name)

    worklist: deque[N] = deque(equations)
    queued: set[N] = set(equations)
    iterations = 0
    while worklist:
        iterations += 1
        if iterations > max_iterations:
            raise RuntimeError(
                f"fixpoint iteration did not stabilise within "
                f"{max_iterations} steps (non-monotone transfer?)")
        name = worklist.popleft()
        queued.discard(name)
        old = values[name]
        new = lattice.join(old, equations[name].transfer(values))
        if widen_after is not None and updates[name] >= widen_after:
            widened_value = lattice.widen(old, new)
            if widened_value != new:
                widened.add(name)
                new = widened_value
        if new == old:
            continue
        values[name] = new
        updates[name] += 1
        for dependent in dependents[name]:
            if dependent not in queued:
                queued.add(dependent)
                worklist.append(dependent)

    tel = _telemetry.active()
    if tel is not None:
        tel.metrics.counter("staticcheck.fixpoint.iterations").inc(
            iterations)
        tel.metrics.histogram("staticcheck.fixpoint.system_size").observe(
            len(equations))
    return FixpointSolution(values, iterations, frozenset(widened))

"""Behavioural contracts and the finite-state machinery built over them.

A *contract* is the projection of a history expression on its communication
actions (paper, Section 4); because the calculus only allows guarded tail
recursion, contracts are finite state.  This package provides the generic
labelled-transition-system substrate (:mod:`repro.contracts.lts`), the
contract wrapper (:mod:`repro.contracts.contract`) and the product
automaton of Definition 5 (:mod:`repro.contracts.product`).
"""

from repro.contracts.contract import (Contract, clear_contract_caches,
                                      contract_cache_stats)
from repro.contracts.lts import LTS, build_lts
from repro.contracts.product import (ProductAutomaton, ProductSearch,
                                     build_product, search_product)
from repro.contracts.subcontract import (equivalent, subcontract,
                                         substitutable_services)

__all__ = ["Contract", "clear_contract_caches", "contract_cache_stats",
           "LTS", "build_lts",
           "ProductAutomaton", "ProductSearch", "build_product",
           "search_product", "equivalent", "subcontract",
           "substitutable_services"]

"""The subcontract (server-substitutability) preorder.

The paper builds on the contract theory of Castagna, Gesbert and
Padovani [12], whose central tool beyond compliance is the *subcontract*
preorder: ``H1 ⊑ H2`` when every client compliant with server ``H1`` is
also compliant with server ``H2`` — so a service advertising contract
``H1`` can be transparently replaced (or discovered through) one
implementing ``H2``.  The paper itself uses only compliance; the
preorder is the natural extension enabling contract-based *discovery*,
exposed to the planner via :func:`substitutable_services`.

For the contracts of this calculus the relation has a finite
characterisation over pairs of *meet states* — the sets of contract
states a client may have to face after one interaction sequence, which
it must handle like an internal choice of the members:

* a pair is **vacuous** (trivially related) when only the terminated
  client ``ε`` complies with the left meet: some ready set is empty, or
  the ready sets mix waiting and sending so no homogeneous client choice
  can answer all of them;
* otherwise the pair must satisfy the **ready-set condition**: every
  ready set of the right meet contains a ready set of the left meet
  (fewer internal-choice surprises, more external-choice acceptance);
* exploration continues along exactly the *client-realizable* actions —
  the outputs the right server may emit (the client must be listening
  for them) and the inputs present in **every** left ready set (the only
  ones a compliant client may ever send).

``H1 ⊑ H2`` holds iff no reachable pair violates the ready-set
condition.  Soundness is hammered by the property-based suite; exactness
is checked by bounded exhaustive quantification over all small clients
in the unit tests.
"""

from __future__ import annotations

from repro.core.actions import Receive, is_input, is_output
from repro.core.ready_sets import ReadySet, ready_sets
from repro.core.syntax import HistoryExpression
from repro.contracts.contract import Contract

#: A meet state: the set of contract states a client must handle at once.
MeetState = frozenset[HistoryExpression]


def subcontract(smaller: HistoryExpression | Contract,
                larger: HistoryExpression | Contract) -> bool:
    """Decide ``smaller ⊑ larger`` (server substitutability)."""
    return _find_violation(smaller, larger) is None


def refine_violation(smaller: HistoryExpression | Contract,
                     larger: HistoryExpression | Contract
                     ) -> tuple[tuple, ...] | None:
    """A witness that ``smaller ⊑ larger`` fails: the action path leading
    to the offending meet pair (``None`` when the refinement holds)."""
    return _find_violation(smaller, larger)


def _find_violation(smaller, larger):
    lhs = smaller if isinstance(smaller, Contract) else Contract(smaller)
    rhs = larger if isinstance(larger, Contract) else Contract(larger)

    initial = (frozenset({lhs.term}), frozenset({rhs.term}))
    seen = {initial}
    frontier: list[tuple[tuple[MeetState, MeetState], tuple]] = [
        (initial, ())]

    while frontier:
        (m1, m2), path = frontier.pop()
        rs1 = _meet_ready_sets(m1)
        if _only_epsilon_complies(rs1):
            continue
        rs2 = _meet_ready_sets(m2)
        if not _ready_set_condition(rs1, rs2):
            return path
        for action in _client_realizable(lhs, rhs, m1, m2, rs1):
            next1 = _meet_successor(lhs, m1, action)
            next2 = _meet_successor(rhs, m2, action)
            if not next2:
                # The right server cannot follow an action the client may
                # take: under the ready-set condition this cannot happen,
                # but guard against it as a violation.
                return path + (action,)
            pair = (next1, next2)
            if pair not in seen:
                seen.add(pair)
                frontier.append((pair, path + (action,)))
    return None


def _meet_ready_sets(meet: MeetState) -> frozenset[ReadySet]:
    """Ready sets of a meet state: the union over its members."""
    sets: set[ReadySet] = set()
    for state in meet:
        sets |= ready_sets(state)
    return frozenset(sets)


def _only_epsilon_complies(rs1: frozenset[ReadySet]) -> bool:
    """True when no client with a non-empty ready set can satisfy every
    ready set of the left meet — so only ``ε`` complies and the pair is
    vacuously related.

    This happens when some ready set is empty (the server may stop dead:
    any waiting client deadlocks) or when the ready sets mix waiting and
    sending modes (a client choice is homogeneous: it cannot both listen
    for one member's output and feed another member's input).
    """
    if frozenset() in rs1:
        return True
    has_inputs = any(any(is_input(a) for a in s) for s in rs1)
    has_outputs = any(any(is_output(a) for a in s) for s in rs1)
    return has_inputs and has_outputs


def _ready_set_condition(rs1: frozenset[ReadySet],
                         rs2: frozenset[ReadySet]) -> bool:
    """Every right ready set contains a left ready set."""
    for s2 in rs2:
        if not any(s1 <= s2 for s1 in rs1):
            return False
    return True


def _client_realizable(lhs: Contract, rhs: Contract, m1: MeetState,
                       m2: MeetState, rs1: frozenset[ReadySet]):
    """The actions a client compliant with the left meet may exchange
    with the right server.

    Actions are yielded as *server-side* labels (the same on both sides):

    * ``Send`` labels — the right server's possible outputs, which the
      client receives (under the ready-set condition these are also left
      outputs, so the client is obliged to be listening for them);
    * ``Receive`` labels — server inputs occurring in **every** left
      ready set: a client output ready set ``{ā}`` must intersect the
      co-set of each server ready set, so ``a`` must be universally
      offered before the client may send it.
    """
    outputs2 = {label for state in m2
                for label in rhs.lts.labels_from(state)
                if is_output(label)}
    yield from outputs2

    if rs1 and all(all(is_input(a) for a in s) for s in rs1):
        common = None
        for s in rs1:
            common = s if common is None else (common & s)
        for label in common or frozenset():
            assert isinstance(label, Receive)
            yield label


def _meet_successor(contract: Contract, meet: MeetState,
                    label) -> MeetState:
    """The meet of all states reachable from *meet* members via the
    server-side *label*."""
    targets: set[HistoryExpression] = set()
    for state in meet:
        if label in contract.lts.labels_from(state):
            targets |= contract.lts.successors(state, label)
    return frozenset(targets)


def equivalent(a: HistoryExpression | Contract,
               b: HistoryExpression | Contract) -> bool:
    """Contract equivalence: refinement in both directions."""
    return subcontract(a, b) and subcontract(b, a)


def substitutable_services(advertised: HistoryExpression | Contract,
                           repository) -> tuple[str, ...]:
    """Locations in *repository* whose contract refines *advertised* —
    contract-based service discovery: any of them can serve a client
    that was verified (for compliance) against the advertised
    contract."""
    results = []
    for location, term in repository.items():
        if subcontract(advertised, term):
            results.append(location)
    return tuple(results)

"""The product automaton of two contracts (paper, Definition 5).

The product ``H1 ⊗ H2`` models the composition of two contracts: its only
transitions are synchronisations (label ``τ``), and its *final* states are
the stuck configurations.  A state ``⟨H1, H2⟩`` with ``H1 ≠ ε`` is final
when it violates either of:

(i)  some output is enabled: ``∃ā. H1 --ā--> ∨ H2 --ā-->``
     (both participants waiting on inputs is a deadlock);
(ii) every enabled output of one participant is matched by an enabled
     input of the other, in both directions.

Theorem 1: ``H1 ⊢ H2`` iff the language of ``H1 ⊗ H2`` is empty, i.e. no
final state is reachable.  Theorem 2 observes that conditions (i) and (ii)
only inspect the current state, making compliance an *invariant* — hence a
safety — property.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.core.actions import TAU, Tau, co, is_input, is_output
from repro.core.semantics import is_terminated
from repro.core.syntax import HistoryExpression
from repro.contracts.contract import Contract
from repro.contracts.lts import LTS, build_lts

#: A product state ``⟨H1, H2⟩``.
PairState = tuple[HistoryExpression, HistoryExpression]


@dataclass(frozen=True)
class ProductAutomaton:
    """The explicit product automaton ``H1 ⊗ H2`` of Definition 5."""

    client: Contract
    server: Contract
    lts: LTS[PairState, Tau]
    final_states: frozenset[PairState]

    @property
    def initial(self) -> PairState:
        """The initial state ``⟨H1, H2⟩``."""
        return self.lts.initial

    @cached_property
    def reachable_final_states(self) -> frozenset[PairState]:
        """Final (stuck) states reachable from the initial state."""
        return frozenset(self.lts.reachable_from(self.initial)
                         & self.final_states)

    def language_is_empty(self) -> bool:
        """``L(H1 ⊗ H2) = ∅`` — no reachable final state (Theorem 1)."""
        return not self.reachable_final_states

    def counterexample(self) -> tuple[PairState, ...] | None:
        """A shortest path of product states leading to a stuck state, or
        ``None`` when the contracts are compliant.

        The returned tuple starts at the initial state and ends at a final
        state; consecutive states are related by one synchronisation.
        """
        path = self.lts.path_to(lambda s: s in self.final_states)
        if path is None:
            return None
        return (self.initial,) + tuple(state for _, state in path)

    def violates_invariant(self, state: PairState) -> bool:
        """The per-state check of Theorem 2: ``state ⊨ Φ`` fails.

        ``Φ`` is the invariant ``H1 = ε ∨ ((i) ∧ (ii))``; compliance holds
        iff every reachable state satisfies ``Φ``.
        """
        return state in self.final_states


def build_product(client: Contract, server: Contract) -> ProductAutomaton:
    """Construct the product automaton ``client ⊗ server``.

    Both component transition systems are finite (projection of guarded
    tail-recursive terms), so the product is finite as well.
    """
    client_lts = client.lts
    server_lts = server.lts

    def is_final(state: PairState) -> bool:
        h1, h2 = state
        if is_terminated(h1):
            return False
        labels1 = client_lts.labels_from(h1)
        labels2 = server_lts.labels_from(h2)
        outputs1 = {label for label in labels1 if is_output(label)}
        outputs2 = {label for label in labels2 if is_output(label)}
        inputs1 = {label for label in labels1 if is_input(label)}
        inputs2 = {label for label in labels2 if is_input(label)}
        some_output = bool(outputs1 or outputs2)
        if not some_output:                               # ¬(i)
            return True
        matched = (all(co(out) in inputs2 for out in outputs1)
                   and all(co(out) in inputs1 for out in outputs2))
        return not matched                                # ¬(ii)

    def successors(state: PairState):
        if is_final(state):
            # Definition 5 cuts transitions out of final states.
            return
        h1, h2 = state
        for label in client_lts.labels_from(h1):
            if not (is_output(label) or is_input(label)):
                continue
            partner = co(label)
            for h1_next in client_lts.successors(h1, label):
                for h2_next in server_lts.successors(h2, partner):
                    yield TAU, (h1_next, h2_next)

    lts = build_lts((client.term, server.term), successors)
    final = frozenset(state for state in lts.states if is_final(state))
    return ProductAutomaton(client, server, lts, final)

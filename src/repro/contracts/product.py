"""The product automaton of two contracts (paper, Definition 5).

The product ``H1 ⊗ H2`` models the composition of two contracts: its only
transitions are synchronisations (label ``τ``), and its *final* states are
the stuck configurations.  A state ``⟨H1, H2⟩`` with ``H1 ≠ ε`` is final
when it violates either of:

(i)  some output is enabled: ``∃ā. H1 --ā--> ∨ H2 --ā-->``
     (both participants waiting on inputs is a deadlock);
(ii) every enabled output of one participant is matched by an enabled
     input of the other, in both directions.

Theorem 1: ``H1 ⊢ H2`` iff the language of ``H1 ⊗ H2`` is empty, i.e. no
final state is reachable.  Theorem 2 observes that conditions (i) and (ii)
only inspect the current state, making compliance an *invariant* — hence a
safety — property.

Two constructions are provided:

* :func:`build_product` materialises the full explicit automaton — for
  callers that need the state space itself (diagnostics, benchmarks,
  subcontract checks);
* :func:`search_product` explores the *implicit* product on the fly and
  stops at the first reachable final state, reconstructing the shortest
  counterexample from its BFS parent map.  Because compliance is a safety
  property (Theorem 2), the verdict is decided the moment the first stuck
  pair is reached — non-compliance costs O(states within the
  counterexample radius), not O(full product).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from functools import cached_property

from repro.core.actions import TAU, Tau, co, is_input, is_output
from repro.core.semantics import is_terminated
from repro.core.syntax import HistoryExpression
from repro.contracts.contract import Contract
from repro.contracts.lts import DEFAULT_STATE_LIMIT, LTS, build_lts
from repro.core.errors import StateSpaceLimitError
from repro.observability import runtime as _telemetry

#: A product state ``⟨H1, H2⟩``.
PairState = tuple[HistoryExpression, HistoryExpression]


def is_stuck(client_lts: LTS, server_lts: LTS, state: PairState) -> bool:
    """The per-state final-state check of Definition 5 (``¬Φ`` of
    Theorem 2): *state* is stuck unless the client has terminated or both
    (i) and (ii) hold."""
    h1, h2 = state
    if is_terminated(h1):
        return False
    labels1 = client_lts.labels_from(h1)
    labels2 = server_lts.labels_from(h2)
    outputs1 = {label for label in labels1 if is_output(label)}
    outputs2 = {label for label in labels2 if is_output(label)}
    inputs1 = {label for label in labels1 if is_input(label)}
    inputs2 = {label for label in labels2 if is_input(label)}
    some_output = bool(outputs1 or outputs2)
    if not some_output:                               # ¬(i)
        return True
    matched = (all(co(out) in inputs2 for out in outputs1)
               and all(co(out) in inputs1 for out in outputs2))
    return not matched                                # ¬(ii)


def synchronisations(client_lts: LTS, server_lts: LTS, state: PairState):
    """The product moves out of *state*: every pairing of a communication
    of one side with its co-action on the other (both directions are
    covered because each synchronisation appears once as an output and
    once as an input)."""
    h1, h2 = state
    for label in client_lts.labels_from(h1):
        if not (is_output(label) or is_input(label)):
            continue
        partner = co(label)
        for h1_next in client_lts.successors(h1, label):
            for h2_next in server_lts.successors(h2, partner):
                yield h1_next, h2_next


@dataclass(frozen=True)
class ProductAutomaton:
    """The explicit product automaton ``H1 ⊗ H2`` of Definition 5."""

    client: Contract
    server: Contract
    lts: LTS[PairState, Tau]
    final_states: frozenset[PairState]

    @property
    def initial(self) -> PairState:
        """The initial state ``⟨H1, H2⟩``."""
        return self.lts.initial

    @cached_property
    def reachable_final_states(self) -> frozenset[PairState]:
        """Final (stuck) states reachable from the initial state."""
        return frozenset(self.lts.reachable_from(self.initial)
                         & self.final_states)

    def language_is_empty(self) -> bool:
        """``L(H1 ⊗ H2) = ∅`` — no reachable final state (Theorem 1)."""
        return not self.reachable_final_states

    def counterexample(self) -> tuple[PairState, ...] | None:
        """A shortest path of product states leading to a stuck state, or
        ``None`` when the contracts are compliant.

        The returned tuple starts at the initial state and ends at a final
        state; consecutive states are related by one synchronisation.
        """
        path = self.lts.path_to(lambda s: s in self.final_states)
        if path is None:
            return None
        return (self.initial,) + tuple(state for _, state in path)

    def violates_invariant(self, state: PairState) -> bool:
        """The per-state check of Theorem 2: ``state ⊨ Φ`` fails.

        ``Φ`` is the invariant ``H1 = ε ∨ ((i) ∧ (ii))``; compliance holds
        iff every reachable state satisfies ``Φ``.
        """
        return state in self.final_states


@dataclass(frozen=True)
class ProductSearch:
    """Outcome of the on-the-fly emptiness check (:func:`search_product`).

    ``empty`` is the Theorem 1 verdict; on failure ``trace`` is a shortest
    sequence of product states from the initial one to the stuck witness
    (its last element).  ``explored`` counts the distinct product states
    materialised — the regression the benchmarks track: for non-compliant
    pairs it stays within the BFS radius of the counterexample instead of
    the full product size.
    """

    empty: bool
    trace: tuple[PairState, ...] | None
    explored: int

    @property
    def witness(self) -> PairState | None:
        """The stuck pair, or ``None`` when the language is empty."""
        return None if self.trace is None else self.trace[-1]


def search_product(client: Contract, server: Contract,
                   max_states: int = DEFAULT_STATE_LIMIT,
                   *, engine: str = "interpreted") -> ProductSearch:
    """Decide ``L(client ⊗ server) = ∅`` without building the automaton.

    BFS over the implicit product; every state is checked against the
    Definition 5 final-state condition *when first discovered*, so the
    search short-circuits at the first reachable stuck pair — at minimal
    synchronisation depth, which keeps the returned counterexample
    shortest, exactly like :meth:`ProductAutomaton.counterexample`.

    ``engine="compiled"`` runs the same BFS over the interned integer
    tables of :mod:`repro.compiled` — identical verdict, trace and
    explored count, typically an order of magnitude faster on large
    products.
    """
    if engine == "compiled":
        run = _compiled_search
    elif engine == "interpreted":
        run = _search
    else:
        raise ValueError(f"unknown search engine {engine!r} "
                         "(expected 'interpreted' or 'compiled')")
    tel = _telemetry.active()
    if tel is None:
        return run(client, server, max_states)
    with tel.tracer.span("compliance.search_product", engine=engine) as span:
        result = run(client, server, max_states)
        depth = None if result.trace is None else len(result.trace) - 1
        span.set(empty=result.empty, explored=result.explored,
                 counterexample_depth=depth)
        metrics = tel.metrics
        outcome = "empty" if result.empty else "counterexample"
        metrics.counter("compliance.searches", outcome=outcome).inc()
        metrics.counter("compliance.explored_states").inc(result.explored)
        # Every discovered state is enqueued except a stuck witness (the
        # BFS returns the moment it finds one).
        metrics.counter("compliance.enqueued_states").inc(
            result.explored if result.empty else result.explored - 1)
        if depth is not None:
            metrics.histogram("compliance.early_exit_depth").observe(depth)
        tel.emit("search.product", engine=engine, empty=result.empty,
                 explored=result.explored)
        return result


def _compiled_search(client: Contract, server: Contract,
                     max_states: int) -> ProductSearch:
    """The compiled twin of :func:`_search` (one shared compiled core
    with :mod:`repro.staticcheck`); imported lazily — the compiled layer
    builds on this module's siblings."""
    from repro.compiled.search import compiled_search
    from repro.compiled.tables import compile_contract
    result = compiled_search(compile_contract(client),
                             compile_contract(server), max_states)
    return ProductSearch(result.empty, result.trace, result.explored)


def _search(client: Contract, server: Contract,
            max_states: int) -> ProductSearch:
    """The uninstrumented BFS :func:`search_product` dispatches to."""
    client_lts = client.lts
    server_lts = server.lts
    initial: PairState = (client.term, server.term)

    if is_stuck(client_lts, server_lts, initial):
        return ProductSearch(False, (initial,), explored=1)

    parents: dict[PairState, PairState] = {}
    seen: set[PairState] = {initial}
    frontier: deque[PairState] = deque([initial])
    while frontier:
        state = frontier.popleft()
        for successor in synchronisations(client_lts, server_lts, state):
            if successor in seen:
                continue
            if len(seen) >= max_states:
                raise StateSpaceLimitError(max_states)
            seen.add(successor)
            parents[successor] = state
            if is_stuck(client_lts, server_lts, successor):
                trace = [successor]
                node = successor
                while node != initial:
                    node = parents[node]
                    trace.append(node)
                trace.reverse()
                return ProductSearch(False, tuple(trace), len(seen))
            frontier.append(successor)
    return ProductSearch(True, None, len(seen))


def build_product(client: Contract, server: Contract) -> ProductAutomaton:
    """Construct the explicit product automaton ``client ⊗ server``.

    Both component transition systems are finite (projection of guarded
    tail-recursive terms), so the product is finite as well.
    """
    client_lts = client.lts
    server_lts = server.lts

    def successors(state: PairState):
        if is_stuck(client_lts, server_lts, state):
            # Definition 5 cuts transitions out of final states.
            return
        for successor in synchronisations(client_lts, server_lts, state):
            yield TAU, successor

    lts = build_lts((client.term, server.term), successors)
    final = frozenset(state for state in lts.states
                      if is_stuck(client_lts, server_lts, state))
    return ProductAutomaton(client, server, lts, final)

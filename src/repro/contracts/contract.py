"""Behavioural contracts: projected history expressions with a finite LTS.

A :class:`Contract` wraps the projection ``H!`` of a history expression and
caches the finite transition system it generates.  The finiteness relies on
the calculus restrictions (guarded tail recursion; see Section 4: "the
transition system of H! is finite state").
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.actions import Label, Receive, Send, is_input, is_output
from repro.core.projection import project
from repro.core.ready_sets import ReadySet, ready_sets
from repro.core.semantics import step
from repro.core.syntax import HistoryExpression, is_closed
from repro.contracts.lts import LTS, build_lts
from repro.observability.cache_stats import (cache_stats, reset_cache_stats,
                                             track_cache)

#: Entries kept in the shared projection / LTS caches.  Terms are immutable
#: and structurally hashed, so caching is sound; the bound only trades
#: memory for recomputation.
CONTRACT_CACHE_SIZE = 4096


@lru_cache(maxsize=CONTRACT_CACHE_SIZE)
def _projection_of(term: HistoryExpression) -> HistoryExpression:
    """Shared, memoised projection ``H!``."""
    return project(term)


@lru_cache(maxsize=CONTRACT_CACHE_SIZE)
def _lts_of(projected: HistoryExpression) -> LTS[HistoryExpression, Label]:
    """Shared, memoised transition system of a projected term.

    Keyed on the projected term, so every ``Contract`` over a structurally
    equal term — however constructed — reuses one built LTS (and with it
    the label-indexed adjacency the LTS itself caches).
    """
    return build_lts(projected, step)


track_cache("contracts.projection", _projection_of)
track_cache("contracts.lts", _lts_of)

#: The cache-stats names owned by this module (see
#: :func:`contract_cache_stats`).  Higher layers append their own names
#: through :func:`register_cache_stat_names`, so one
#: :func:`contract_cache_stats` call surveys every contract-derived memo
#: table (the compiled transition tables in particular).
_CACHE_NAMES: list[str] = ["contracts.projection", "contracts.lts"]


def register_cache_stat_names(*names: str) -> None:
    """Expose additional cache-stats *names* through
    :func:`contract_cache_stats`.  Idempotent per name."""
    for name in names:
        if name not in _CACHE_NAMES:
            _CACHE_NAMES.append(name)

#: Extra cache-clearing callbacks run by :func:`clear_contract_caches`.
#: Higher layers (``repro.staticcheck`` in particular) memoise results
#: *derived from* contracts; stale derivations after a cache reset would
#: desynchronise benchmarks and cache-stats baselines, so they register
#: their own clearers here instead of this module importing them (which
#: would invert the layering).
_EXTRA_CLEARERS: list = []


def register_cache_clearer(clearer) -> None:
    """Register *clearer* (a zero-argument callable) to run whenever
    :func:`clear_contract_caches` is invoked.  Idempotent per callable."""
    if clearer not in _EXTRA_CLEARERS:
        _EXTRA_CLEARERS.append(clearer)


def clear_contract_caches() -> None:
    """Drop the shared projection and LTS caches (benchmark hygiene) and
    rebaseline their telemetry adapters, so hit/miss counts read from a
    clean slate afterwards.  Registered higher-layer clearers (see
    :func:`register_cache_clearer`) run as well, so memo tables derived
    from contracts never outlive the contracts themselves.  The flight
    recorder's per-kind counters are rebaselined too (after noting the
    flush as a ``cache.cleared`` event), so event counts — like cache
    hit/miss counts — always read relative to the last flush."""
    _projection_of.cache_clear()
    _lts_of.cache_clear()
    reset_cache_stats(*_CACHE_NAMES)
    for clearer in _EXTRA_CLEARERS:
        clearer()
    from repro.observability import runtime as _telemetry
    tel = _telemetry.active()
    if tel is not None:
        tel.emit("cache.cleared", caches=len(_CACHE_NAMES))
        tel.events.rebaseline()


def contract_cache_stats() -> dict[str, dict[str, int]]:
    """Hits/misses/size of the projection and LTS caches since the last
    :func:`clear_contract_caches` (or adapter reset)."""
    return cache_stats(*_CACHE_NAMES)


class Contract:
    """The communication behaviour of a (closed) history expression.

    Instances are immutable; the underlying LTS is built on first use and
    cached.  Equality is structural on the projected term.
    """

    __slots__ = ("_term", "__dict__")

    def __init__(self, term: HistoryExpression,
                 already_projected: bool = False) -> None:
        if not is_closed(term):
            raise ValueError("contracts are built from closed history "
                             "expressions only")
        self._term = term if already_projected else _projection_of(term)

    @property
    def term(self) -> HistoryExpression:
        """The projected history expression ``H!``."""
        return self._term

    @property
    def lts(self) -> LTS[HistoryExpression, Label]:
        """The (finite) transition system of the contract.

        Served from the module-level LRU, shared across all structurally
        equal contracts."""
        return _lts_of(self._term)

    @property
    def states(self) -> frozenset[HistoryExpression]:
        """All reachable contract states."""
        return self.lts.states

    def ready_sets_of(self, state: HistoryExpression | None = None
                      ) -> frozenset[ReadySet]:
        """Ready sets of *state* (default: the initial state)."""
        return ready_sets(self._term if state is None else state)

    def outputs_from(self, state: HistoryExpression) -> frozenset[Send]:
        """Output actions enabled in *state*."""
        return frozenset(label for label in self.lts.labels_from(state)
                         if is_output(label))

    def inputs_from(self, state: HistoryExpression) -> frozenset[Receive]:
        """Input actions enabled in *state*."""
        return frozenset(label for label in self.lts.labels_from(state)
                         if is_input(label))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Contract):
            return NotImplemented
        return self._term == other._term

    def __hash__(self) -> int:
        return hash(("Contract", self._term))

    def __repr__(self) -> str:
        return f"Contract({self._term!r})"

    def __str__(self) -> str:
        from repro.lang.pretty import pretty
        return pretty(self._term)

"""Nested tracing spans with JSONL export and a human-readable tree.

A :class:`Span` records one named, timed region of the pipeline —
``compliance.search_product``, ``planner.find_valid_plans``, one network
session — with attributes, point events, and parent links.  The
:class:`Tracer` hands them out either as context managers (the common,
strictly nested case) or via :meth:`Tracer.start_span` /
:meth:`Tracer.end_span` for regions whose lifetimes interleave (the
simulator's concurrent sessions).

Span construction is counted in ``Span.constructed`` — a process-global
class attribute the no-op fast-path tests use to assert that a disabled
pipeline allocates *zero* spans.

Point events carry a per-tracer monotone ``seq`` so the *global* event
order across interleaved spans (two simulator sessions taking turns)
survives the JSONL round trip: :func:`merged_events` re-sorts by it.
Exports start with a ``{"schema": "repro-trace.v1"}`` header line and
:func:`load_jsonl` rejects unknown schema versions.
"""

from __future__ import annotations

import json
import threading
from itertools import count
from time import perf_counter
from typing import Callable, Iterator

from contextlib import contextmanager

#: Schema tag on the header line of every JSONL export.
TRACE_SCHEMA = "repro-trace.v1"


class Span:
    """One timed region: name, attributes, point events, children."""

    __slots__ = ("span_id", "parent_id", "name", "attrs", "events",
                 "start", "end", "children", "_seq_source")

    #: Total Span constructions in this process (no-op fast-path tests).
    constructed = 0

    def __init__(self, span_id: int, parent_id: int | None, name: str,
                 attrs: dict | None = None, start: float = 0.0,
                 seq_source: Callable[[], int] | None = None) -> None:
        Span.constructed += 1
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs: dict = dict(attrs) if attrs else {}
        self.events: list[dict] = []
        self.start = start
        self.end: float | None = None
        self.children: list[Span] = []
        self._seq_source = seq_source

    @property
    def duration(self) -> float:
        """Wall seconds; 0.0 while the span is still open."""
        return 0.0 if self.end is None else self.end - self.start

    def set(self, **attrs: object) -> None:
        """Attach (or overwrite) attributes."""
        self.attrs.update(attrs)

    def add_event(self, name: str, **attrs: object) -> None:
        """Record a point event inside the span (communications, framing
        opens/closes, monitor aborts…).  Tracer-created spans stamp the
        event with a tracer-wide monotone ``seq`` so interleaved spans'
        events keep their global order through export/load."""
        event = {"name": name}
        if self._seq_source is not None:
            event["seq"] = self._seq_source()
        if attrs:
            event.update(attrs)
        self.events.append(event)

    def to_record(self) -> dict:
        """The JSON-serialisable export record of this span."""
        return {"span_id": self.span_id, "parent_id": self.parent_id,
                "name": self.name, "attrs": self.attrs,
                "events": self.events, "start": self.start,
                "duration": self.duration}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, id={self.span_id})"


class Tracer:
    """A factory and store of spans.

    The *current parent* is tracked per thread, so spans opened by the
    planner's worker threads become independent roots instead of
    corrupting each other's nesting.
    """

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        self._next_id = 1
        self._event_seq = count(1)

    # -- span lifecycle -----------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def start_span(self, name: str, parent: Span | None = None,
                   **attrs: object) -> Span:
        """Open a span explicitly (caller must :meth:`end_span` it).

        With ``parent=None`` the span nests under this thread's current
        span; pass an explicit parent for interleaved lifetimes.
        """
        if parent is None:
            parent = self.current()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        span = Span(span_id,
                    parent.span_id if parent is not None else None,
                    name, attrs, start=perf_counter(),
                    seq_source=self._event_seq.__next__)
        if parent is not None:
            parent.children.append(span)
        self.spans.append(span)
        return span

    def end_span(self, span: Span) -> None:
        """Close an explicitly opened span."""
        if span.end is None:
            span.end = perf_counter()

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        """Open a strictly nested span for the duration of the block."""
        opened = self.start_span(name, **attrs)
        stack = self._stack()
        stack.append(opened)
        try:
            yield opened
        finally:
            stack.pop()
            self.end_span(opened)

    # -- inspection ---------------------------------------------------------

    def roots(self) -> list[Span]:
        """Spans with no parent, in creation order."""
        return [span for span in self.spans if span.parent_id is None]

    def find(self, name: str) -> list[Span]:
        """All spans with the given name, in creation order."""
        return [span for span in self.spans if span.name == name]

    def reset(self) -> None:
        """Drop every recorded span (open ones are abandoned)."""
        self.spans.clear()
        self._local = threading.local()
        self._event_seq = count(1)

    def merged_events(self) -> list[tuple[Span, dict]]:
        """Every point event across all spans, in global emission order
        (by ``seq``; events without one sort first, in span order)."""
        return merged_events(self.spans)

    def __len__(self) -> int:
        return len(self.spans)

    # -- export -------------------------------------------------------------

    def export_jsonl(self) -> str:
        """A ``{"schema": ...}`` header line followed by one JSON object
        per span, in creation order (parents precede their children, so
        a stream consumer can rebuild the tree)."""
        lines = [json.dumps({"schema": TRACE_SCHEMA}, sort_keys=True)]
        lines.extend(json.dumps(span.to_record(), sort_keys=True,
                                default=str)
                     for span in self.spans)
        return "\n".join(lines)

    def render_tree(self, unit: str = "ms") -> str:
        """The forest of spans as an indented, durations-annotated tree."""
        scale = {"s": 1.0, "ms": 1e3, "us": 1e6}[unit]
        lines: list[str] = []

        def walk(span: Span, depth: int) -> None:
            indent = "  " * depth
            attrs = ""
            if span.attrs:
                attrs = " " + " ".join(f"{k}={v}"
                                       for k, v in sorted(span.attrs.items()))
            lines.append(f"{indent}{span.name} "
                         f"[{span.duration * scale:.3f}{unit}]{attrs}")
            for event in span.events:
                extra = " ".join(f"{k}={v}" for k, v in event.items()
                                 if k not in ("name", "seq"))
                lines.append(f"{indent}  · {event['name']}"
                             + (f" {extra}" if extra else ""))
            for child in span.children:
                walk(child, depth + 1)

        for root in self.roots():
            walk(root, 0)
        return "\n".join(lines) if lines else "(no spans recorded)"


def merged_events(spans: list[Span]) -> list[tuple[Span, dict]]:
    """Flatten ``(span, event)`` pairs across spans into global emission
    order.  Events carry a tracer-assigned monotone ``seq``; legacy
    events without one keep their per-span position and sort first."""
    pairs: list[tuple[int, int, Span, dict]] = []
    for span_index, span in enumerate(spans):
        for event in span.events:
            pairs.append((event.get("seq", 0), span_index, span, event))
    pairs.sort(key=lambda item: (item[0], item[1]))
    return [(span, event) for _, _, span, event in pairs]


def iter_spans(roots: list[Span]) -> Iterator[Span]:
    """Depth-first traversal of a span forest (for loaded trees, whose
    flat creation-order list is not otherwise available)."""
    for root in roots:
        yield root
        yield from iter_spans(root.children)


def load_jsonl(text: str) -> list[Span]:
    """Rebuild a span forest from :meth:`Tracer.export_jsonl` output.

    Returns the root spans with parent/child links restored; durations,
    attributes and event ``seq`` stamps round-trip exactly (timestamps
    stay as exported).  The leading schema header is validated: an
    unknown version raises :class:`ValueError`; a headerless stream is
    accepted as the legacy (pre-versioning) format.
    """
    by_id: dict[int, Span] = {}
    roots: list[Span] = []
    first = True
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if first:
            first = False
            schema = record.get("schema")
            if schema is not None:
                if schema != TRACE_SCHEMA:
                    raise ValueError(
                        f"unsupported trace schema {schema!r} "
                        f"(expected {TRACE_SCHEMA!r})")
                continue
        span = Span(record["span_id"], record["parent_id"],
                    record["name"], record["attrs"],
                    start=record["start"])
        span.end = span.start + record["duration"]
        span.events = list(record.get("events", ()))
        by_id[span.span_id] = span
        parent = (by_id.get(record["parent_id"])
                  if record["parent_id"] is not None else None)
        if parent is not None:
            parent.children.append(span)
        else:
            roots.append(span)
    return roots

"""Unified instrumentation: metrics, tracing spans, cache statistics.

The pipeline's stages — projection, on-the-fly product emptiness, plan
synthesis, security model checking, simulation, the reference monitor —
all report into one process-wide telemetry scope:

* :class:`MetricsRegistry` — counters, gauges, histogram timers with
  labelled children and a JSON-friendly :meth:`~MetricsRegistry.snapshot`;
* :class:`Tracer` — nested spans with attributes, point events, JSONL
  export and a human-readable tree (``repro trace`` prints one);
* :mod:`~repro.observability.cache_stats` — delta views over the
  ``lru_cache`` layers (contract projection/LTS, request extraction).

Telemetry is **off by default** and the disabled fast path costs one
``runtime.active()`` check per instrumented region — no spans, no
counters, no allocations.  Enable it with ``REPRO_TELEMETRY=1``,
:func:`enable`, or the scoped :func:`telemetry_session`.
"""

from repro.observability.metrics import (Counter, Gauge, Histogram,
                                         MetricsRegistry, render_key)
from repro.observability.tracing import (TRACE_SCHEMA, Span, Tracer,
                                         iter_spans, load_jsonl,
                                         merged_events)
from repro.observability.events import (EVENTS_SCHEMA, Event, EventLog)
from repro.observability.events import load_jsonl as load_events_jsonl
from repro.observability.cache_stats import (CacheStatsAdapter, cache_stats,
                                             reset_cache_stats, track_cache,
                                             tracked_caches)
from repro.observability.runtime import (Telemetry, active, default_scope,
                                         disable, enable, enabled,
                                         get_event_log, get_registry,
                                         get_tracer, metrics_snapshot,
                                         telemetry_session)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "render_key",
    "Span", "Tracer", "TRACE_SCHEMA", "iter_spans", "load_jsonl",
    "merged_events",
    "Event", "EventLog", "EVENTS_SCHEMA", "load_events_jsonl",
    "CacheStatsAdapter", "cache_stats", "reset_cache_stats", "track_cache",
    "tracked_caches",
    "Telemetry", "active", "default_scope", "disable", "enable", "enabled",
    "get_event_log", "get_registry", "get_tracer", "metrics_snapshot",
    "telemetry_session",
]

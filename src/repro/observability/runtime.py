"""The process-wide telemetry switch, default registry, and tracer.

Instrumented hot paths are gated on one cheap call::

    tel = runtime.active()
    if tel is not None:
        tel.metrics.counter("...").inc()

``active()`` returns ``None`` while telemetry is disabled (the default),
so a disabled pipeline pays one function call and one comparison per
instrumented *region* — never per inner-loop iteration, and it allocates
no spans at all (asserted by the fast-path tests via
``Span.constructed``).

Telemetry is enabled by :func:`enable`, by the ``REPRO_TELEMETRY``
environment variable (any value except ``0``/``false``/empty), or
scoped with the :func:`telemetry_session` context manager, which swaps
in a fresh registry/tracer and restores the previous state on exit —
the CLI's ``--stats``/``trace`` and the benchmark harness use the
latter so runs never see each other's numbers.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

from repro.observability.events import Event, EventLog
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import Tracer


class Telemetry:
    """One enabled telemetry scope: a metrics registry, a tracer, and
    the flight-recorder event log."""

    __slots__ = ("metrics", "tracer", "events")

    def __init__(self, metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None,
                 events: EventLog | None = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.events = events if events is not None else EventLog()

    def emit(self, kind: str, /, *, cause: int | None = None,
             **attrs: object) -> Event:
        """Append a flight-recorder event correlated to the innermost
        open span on this thread (the session id comes from the event
        log's enclosing :meth:`EventLog.session` context)."""
        current = self.tracer.current()
        return self.events.emit(
            kind, span=current.span_id if current is not None else None,
            cause=cause, **attrs)

    def reset(self) -> None:
        self.metrics.reset()
        self.tracer.reset()
        self.events.reset()


#: The process-default scope (used when enabling without an explicit one).
_DEFAULT = Telemetry()

#: The active scope, or None while telemetry is disabled.  Module-level so
#: ``active()`` is a single global load.
_ACTIVE: Telemetry | None = None


def _env_enabled() -> bool:
    return os.environ.get("REPRO_TELEMETRY", "").lower() not in (
        "", "0", "false", "off", "no")


if _env_enabled():
    _ACTIVE = _DEFAULT


def active() -> Telemetry | None:
    """The active telemetry scope, or ``None`` when disabled — the only
    check instrumented code performs on its fast path."""
    return _ACTIVE


def enabled() -> bool:
    """Is telemetry currently on?"""
    return _ACTIVE is not None


def enable(scope: Telemetry | None = None) -> Telemetry:
    """Switch telemetry on (idempotent); returns the active scope."""
    global _ACTIVE
    _ACTIVE = scope if scope is not None else (_ACTIVE or _DEFAULT)
    return _ACTIVE


def disable() -> None:
    """Switch telemetry off (recorded data stays readable via
    :func:`default_scope`)."""
    global _ACTIVE
    _ACTIVE = None


def default_scope() -> Telemetry:
    """The process-default scope (whether or not it is active)."""
    return _DEFAULT


def get_registry() -> MetricsRegistry:
    """The active registry (default scope's when disabled)."""
    return (_ACTIVE or _DEFAULT).metrics


def get_tracer() -> Tracer:
    """The active tracer (default scope's when disabled)."""
    return (_ACTIVE or _DEFAULT).tracer


@contextmanager
def telemetry_session(scope: Telemetry | None = None
                      ) -> Iterator[Telemetry]:
    """Enable a fresh telemetry scope for the duration of the block.

    The previous active scope (possibly none) is restored on exit, so
    nested sessions and interleaved benchmark runs stay isolated.
    """
    global _ACTIVE
    previous = _ACTIVE
    session = scope if scope is not None else Telemetry()
    _ACTIVE = session
    try:
        yield session
    finally:
        _ACTIVE = previous


def get_event_log() -> EventLog:
    """The active flight recorder (default scope's when disabled)."""
    return (_ACTIVE or _DEFAULT).events


def metrics_snapshot(include_caches: bool = True,
                     include_events: bool = True) -> dict:
    """The active scope's metrics snapshot, optionally merged with the
    tracked ``lru_cache`` statistics (hits/misses/currsize per cache)
    and the flight recorder's per-kind event counters."""
    snapshot = get_registry().snapshot()
    if include_caches:
        from repro.observability.cache_stats import cache_stats
        snapshot["caches"] = cache_stats()
    if include_events:
        snapshot["events"] = get_event_log().counters()
    return snapshot

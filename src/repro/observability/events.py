"""The flight recorder: a bounded, deterministic structured event log.

Where :mod:`repro.observability.metrics` answers *how much* and
:mod:`repro.observability.tracing` answers *how long*, the flight
recorder answers *what happened, in what order, and because of what*.
Every instrumented layer appends :class:`Event` records — fault
injections, session aborts, compensations, replans, compile misses,
verdicts — each carrying three correlation fields:

``session``
    The logical work unit the event belongs to (a chaos trial, a verify
    pass), set by the enclosing :meth:`EventLog.session` context.
``span``
    The ``span_id`` of the innermost open tracing span on the emitting
    thread, linking the event into the span tree.
``cause``
    The ``seq`` of the event that *caused* this one, forming explicit
    causal chains (fault → abort → compensate → replan → verdict) that
    :func:`EventLog.causal_chain` walks back.

Determinism: events never record wall-clock time.  Emitters pass the
*simulated* clock (``tick=...``) where a notion of time exists, so a
seeded run produces a byte-identical log.  The log is bounded — a ring
buffer of ``maxlen`` events with a drop counter — so a long chaos
campaign cannot grow memory without bound; sequence numbers keep
increasing monotonically across drops.

``Event.appended`` is a process-global construction counter, mirroring
``Span.constructed``: the no-op fast-path tests assert that a disabled
pipeline appends *zero* events.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from contextlib import contextmanager
from typing import Iterator

#: Schema tag stamped on every exported log.
EVENTS_SCHEMA = "repro-events.v1"

#: Default ring-buffer capacity (events, not bytes).
DEFAULT_CAPACITY = 65536


class Event:
    """One structured log record with causal correlation fields."""

    __slots__ = ("seq", "kind", "session", "span", "cause", "attrs")

    #: Total Event constructions in this process (fast-path tests).
    appended = 0

    def __init__(self, seq: int, kind: str, session: str | None,
                 span: int | None, cause: int | None,
                 attrs: dict) -> None:
        Event.appended += 1
        self.seq = seq
        self.kind = kind
        self.session = session
        self.span = span
        self.cause = cause
        self.attrs = attrs

    def to_record(self) -> dict:
        """The JSON-serialisable export record of this event."""
        return {"seq": self.seq, "kind": self.kind,
                "session": self.session, "span": self.span,
                "cause": self.cause, "attrs": self.attrs}

    def describe(self) -> str:
        """``#seq kind key=value ...`` — one human-readable line."""
        extra = " ".join(f"{k}={v}"
                         for k, v in sorted(self.attrs.items()))
        parts = [f"#{self.seq}", self.kind]
        if self.session is not None:
            parts.append(f"session={self.session}")
        if self.cause is not None:
            parts.append(f"cause=#{self.cause}")
        if extra:
            parts.append(extra)
        return " ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event(#{self.seq} {self.kind!r})"


class EventLog:
    """A bounded append-only log of :class:`Event` records.

    Per-kind counters are kept beside the ring buffer and survive
    eviction; :meth:`rebaseline` zeroes their *visible* value without
    touching the buffer, which is how ``clear_contract_caches()``
    restarts counting after a cache flush (mirroring the cache-stats
    adapters' baseline deltas).
    """

    def __init__(self, maxlen: int = DEFAULT_CAPACITY) -> None:
        self.events: deque[Event] = deque(maxlen=maxlen)
        self.maxlen = maxlen
        self.dropped = 0
        self._next_seq = 1
        self._counts: Counter[str] = Counter()
        self._baseline: Counter[str] = Counter()
        self._session: str | None = None

    # -- recording ----------------------------------------------------------

    def emit(self, kind: str, /, *, session: str | None = None,
             span: int | None = None, cause: int | None = None,
             **attrs: object) -> Event:
        """Append an event and return it (its ``seq`` seeds later
        ``cause`` links).  ``session`` defaults to the enclosing
        :meth:`session` context's id."""
        if session is None:
            session = self._session
        if len(self.events) == self.maxlen:
            self.dropped += 1
        event = Event(self._next_seq, kind, session, span, cause, attrs)
        self._next_seq += 1
        self.events.append(event)
        self._counts[kind] += 1
        return event

    @contextmanager
    def session(self, session_id: str) -> Iterator[str]:
        """Stamp every event emitted in the block with ``session_id``."""
        previous = self._session
        self._session = session_id
        try:
            yield session_id
        finally:
            self._session = previous

    def current_session(self) -> str | None:
        """The enclosing :meth:`session` id, if any."""
        return self._session

    # -- inspection ---------------------------------------------------------

    def find(self, kind: str) -> list[Event]:
        """All retained events of the given kind, in seq order."""
        return [event for event in self.events if event.kind == kind]

    def get(self, seq: int) -> Event | None:
        """The retained event with this seq, or ``None`` if evicted."""
        for event in self.events:
            if event.seq == seq:
                return event
        return None

    def causal_chain(self, seq: int) -> list[Event]:
        """The chain of retained events ending at ``seq``, oldest first.

        Walks ``cause`` links backwards; stops at the first missing
        (evicted) link, so a truncated buffer yields a truncated — never
        wrong — chain.
        """
        by_seq = {event.seq: event for event in self.events}
        chain: list[Event] = []
        cursor = by_seq.get(seq)
        while cursor is not None and cursor.seq not in {
                e.seq for e in chain}:
            chain.append(cursor)
            cursor = (by_seq.get(cursor.cause)
                      if cursor.cause is not None else None)
        chain.reverse()
        return chain

    def counters(self) -> dict[str, int]:
        """Per-kind event counts since the last :meth:`rebaseline`,
        zero-count kinds omitted, sorted by kind."""
        visible = {kind: count - self._baseline[kind]
                   for kind, count in sorted(self._counts.items())
                   if count - self._baseline[kind] > 0}
        return visible

    def rebaseline(self) -> None:
        """Zero the visible per-kind counters (the buffer is kept)."""
        self._baseline = Counter(self._counts)

    def reset(self) -> None:
        """Drop everything: events, counters, baselines, drop count.
        Sequence numbers restart at 1 (a fresh recorder)."""
        self.events.clear()
        self.dropped = 0
        self._next_seq = 1
        self._counts.clear()
        self._baseline.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    # -- export -------------------------------------------------------------

    def to_records(self) -> list[dict]:
        """All retained events as export records, in seq order."""
        return [event.to_record() for event in self.events]

    def export_jsonl(self) -> str:
        """A schema-header line followed by one JSON object per event."""
        header = json.dumps({"schema": EVENTS_SCHEMA,
                             "dropped": self.dropped}, sort_keys=True)
        lines = [header]
        lines.extend(json.dumps(record, sort_keys=True, default=str)
                     for record in self.to_records())
        return "\n".join(lines)

    def render(self, limit: int | None = None) -> str:
        """The retained log as human-readable lines (newest last)."""
        events = list(self.events)
        if limit is not None and len(events) > limit:
            events = events[-limit:]
        if not events:
            return "(no events recorded)"
        lines = [event.describe() for event in events]
        if self.dropped:
            lines.insert(0, f"({self.dropped} event(s) dropped)")
        return "\n".join(lines)


def load_jsonl(text: str) -> EventLog:
    """Rebuild an :class:`EventLog` from :meth:`EventLog.export_jsonl`.

    The first record must carry a known ``schema`` tag; an unknown tag
    raises :class:`ValueError` so consumers cannot silently misread a
    future format.
    """
    log = EventLog()
    first = True
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if first:
            first = False
            schema = record.get("schema")
            if schema is not None:
                if schema != EVENTS_SCHEMA:
                    raise ValueError(
                        f"unsupported event-log schema {schema!r} "
                        f"(expected {EVENTS_SCHEMA!r})")
                log.dropped = int(record.get("dropped", 0))
                continue
        event = Event(record["seq"], record["kind"], record["session"],
                      record["span"], record["cause"],
                      dict(record["attrs"]))
        log.events.append(event)
        log._counts[event.kind] += 1
        log._next_seq = max(log._next_seq, event.seq + 1)
    return log

"""One merged observability report: metrics + trace + flight recorder.

:func:`build_report` folds everything one telemetry scope recorded — the
metrics snapshot, the span forest, and the flight-recorder event log —
into a single :class:`Report` with

* **per-layer time attribution**: every span is classified into one of
  the pipeline layers (``parse`` / ``compile`` / ``search`` / ``monitor``
  / ``recover``) by its name prefix, and the layer totals use *self*
  time (a span's duration minus its children's), so the layers partition
  the traced wall clock instead of double-counting nested regions;
* **causal chains**: for every ``run.verdict`` event the recorder's
  cause links are walked back, reconstructing the full
  fault → abort → recovery → verdict story of each supervised session.

The JSON rendering (``repro-report.v1``) is deterministic by default for
a seeded run: it carries span and event *counts*, simulated-clock ticks,
and chains — never wall seconds.  Wall-clock timings (layer seconds and
histogram summaries) appear only when the report is built with
``wall=True`` (the CLI's ``--wall``), which is also the only
non-reproducible part of the text rendering.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.observability.events import EventLog
from repro.observability.tracing import Span

#: Identifier of the JSON report layout below.
REPORT_SCHEMA = "repro-report.v1"

#: Span-name prefix → pipeline layer.  First match wins; unmatched spans
#: land in ``other`` (which stays empty in a stock pipeline).
LAYER_PREFIXES: tuple[tuple[str, str], ...] = (
    ("parse.", "parse"),
    ("compile.", "compile"),
    ("compliance.", "search"),
    ("planner.", "search"),
    ("staticcheck.", "search"),
    ("simulator.", "monitor"),
    ("monitor.", "monitor"),
    ("supervisor.", "recover"),
)

#: Layer display order.
LAYERS: tuple[str, ...] = ("parse", "compile", "search", "monitor",
                           "recover", "other")


def layer_of(span_name: str) -> str:
    """The pipeline layer a span name belongs to."""
    for prefix, layer in LAYER_PREFIXES:
        if span_name.startswith(prefix):
            return layer
    return "other"


@dataclass
class LayerStats:
    """Aggregate attribution of one pipeline layer."""

    spans: int = 0
    events: int = 0
    self_seconds: float = 0.0

    def to_dict(self, wall: bool) -> dict:
        record: dict = {"spans": self.spans, "events": self.events}
        if wall:
            record["self_seconds"] = self.self_seconds
        return record


@dataclass
class Report:
    """The merged report of one telemetry scope (see module docstring)."""

    module: str
    wall: bool
    layers: dict[str, LayerStats]
    chains: list[list[dict]]
    counters: dict[str, int]
    gauges: dict[str, float]
    histograms: dict[str, dict]
    event_counters: dict[str, int]
    events_recorded: int
    events_dropped: int
    span_count: int
    root_count: int
    chaos: dict | None = None
    tree: str | None = field(default=None, repr=False)

    def to_dict(self) -> dict:
        record: dict = {
            "schema": REPORT_SCHEMA,
            "module": self.module,
            "layers": {layer: stats.to_dict(self.wall)
                       for layer, stats in self.layers.items()},
            "chains": self.chains,
            "metrics": {"counters": self.counters, "gauges": self.gauges},
            "events": {"recorded": self.events_recorded,
                       "dropped": self.events_dropped,
                       "counters": self.event_counters},
            "trace": {"spans": self.span_count, "roots": self.root_count},
        }
        if self.wall:
            record["metrics"]["histograms"] = self.histograms
        if self.chaos is not None:
            record["chaos"] = self.chaos
        return record

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True,
                          default=str)

    def render_text(self) -> str:
        lines = [f"observability report for {self.module} "
                 f"({REPORT_SCHEMA})", ""]
        if self.chaos is not None:
            outcomes = ", ".join(f"{status}={count}" for status, count
                                 in self.chaos["outcomes"].items())
            verdict = ("HOLDS" if self.chaos["invariant_holds"]
                       else "VIOLATED")
            lines.append(f"chaos: {self.chaos['trials']} trial(s), "
                         f"seed {self.chaos['seed']}, "
                         f"outcomes {outcomes or '-'}, "
                         f"invariant {verdict}")
            lines.append("")
        lines.append("layers:")
        for layer in LAYERS:
            stats = self.layers.get(layer)
            if stats is None or (not stats.spans and not stats.events):
                continue
            timing = (f"  self={stats.self_seconds:.6f}s"
                      if self.wall else "")
            lines.append(f"  {layer:<8} spans={stats.spans:<6} "
                         f"events={stats.events:<6}{timing}")
        lines.append("")
        if self.chains:
            lines.append(f"causal chains ({len(self.chains)}):")
            for chain in self.chains:
                session = chain[-1].get("session") or "-"
                lines.append(f"  session {session}:")
                for link in chain:
                    attrs = " ".join(
                        f"{key}={value}" for key, value
                        in sorted(link.get("attrs", {}).items()))
                    cause = link.get("cause")
                    arrow = f" <- #{cause}" if cause is not None else ""
                    lines.append(f"    #{link['seq']} {link['kind']}"
                                 + (f" {attrs}" if attrs else "")
                                 + arrow)
            lines.append("")
        lines.append(f"flight recorder: {self.events_recorded} event(s), "
                     f"{self.events_dropped} dropped")
        for kind, count in sorted(self.event_counters.items()):
            lines.append(f"  {kind:<24} {count}")
        lines.append("")
        lines.append(f"trace: {self.span_count} span(s), "
                     f"{self.root_count} root(s)")
        if self.counters:
            lines.append("")
            lines.append("counters:")
            width = max(len(name) for name in self.counters)
            for name, value in sorted(self.counters.items()):
                lines.append(f"  {name:<{width}}  {value}")
        return "\n".join(lines)


def _self_seconds(span: Span) -> float:
    """The span's duration minus its direct children's durations (never
    negative: abandoned children can outlast a parent on paper)."""
    nested = sum(child.duration for child in span.children)
    return max(0.0, span.duration - nested)


def causal_chains(events: EventLog) -> list[list[dict]]:
    """One cause-link chain per ``run.verdict`` event, oldest link
    first, each link as its export record."""
    chains: list[list[dict]] = []
    for verdict in events.find("run.verdict"):
        chain = events.causal_chain(verdict.seq)
        chains.append([event.to_record() for event in chain])
    return chains


def build_report(tel, *, module: str = "<module>",
                 chaos: dict | None = None,
                 wall: bool = False,
                 include_tree: bool = False) -> Report:
    """Fold the scope *tel* recorded into one :class:`Report`.

    *chaos* is the ``repro-chaos.v1`` dict of the run the scope observed
    (optional — a report over e.g. a bare ``analyze`` has none).  With
    ``wall=False`` (the default) the result is byte-for-byte reproducible
    for a fixed module and seed.
    """
    layers = {layer: LayerStats() for layer in LAYERS}
    span_layers: dict[int, str] = {}
    for span in tel.tracer.spans:
        layer = layer_of(span.name)
        span_layers[span.span_id] = layer
        stats = layers[layer]
        stats.spans += 1
        stats.self_seconds += _self_seconds(span)
    for event in tel.events:
        layer = (span_layers.get(event.span, "other")
                 if event.span is not None else "other")
        layers[layer].events += 1

    snapshot = tel.metrics.snapshot()
    log = tel.events
    return Report(
        module=module,
        wall=wall,
        layers=layers,
        chains=causal_chains(log),
        counters=snapshot["counters"],
        gauges=snapshot["gauges"],
        histograms=snapshot["histograms"] if wall else {},
        event_counters=log.counters(),
        events_recorded=len(log),
        events_dropped=log.dropped,
        span_count=len(tel.tracer),
        root_count=len(tel.tracer.roots()),
        chaos=chaos,
        tree=tel.tracer.render_tree() if include_tree else None,
    )

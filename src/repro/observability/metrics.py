"""A dependency-free metrics registry: counters, gauges, histograms.

The registry is the numeric half of the instrumentation layer (the
:mod:`repro.observability.tracing` spans are the structural half).  It
deliberately mirrors the shape of the Prometheus client — named metrics
with labelled children — without any exporter machinery: everything the
pipeline records is answered from process memory via :meth:`snapshot`
and rendered with :meth:`render_table`.

Metrics are keyed by ``(name, sorted label items)``; asking for the same
metric twice returns the same object, so hot paths can hoist the lookup
out of their loops and pay one attribute increment per observation.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from contextlib import contextmanager
from time import perf_counter
from typing import Iterator

#: A label key: the metric name plus its sorted ``(key, value)`` pairs.
MetricKey = tuple[str, tuple[tuple[str, str], ...]]


def _key(name: str, labels: dict[str, object]) -> MetricKey:
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


def render_key(key: MetricKey) -> str:
    """``name{k=v,...}`` — the canonical flat spelling of a metric key."""
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("key", "value")

    def __init__(self, key: MetricKey) -> None:
        self.key = key
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins; :meth:`high_water` keeps
    the maximum instead)."""

    __slots__ = ("key", "value")

    def __init__(self, key: MetricKey) -> None:
        self.key = key
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def high_water(self, value: float) -> None:
        if value > self.value:
            self.value = value


def _bucket_bounds() -> tuple[float, ...]:
    """Geometric bucket upper bounds, 1e-7 .. 1e7, eight per decade.

    Computed by repeated multiplication (no ``log``/``pow`` per
    observation), so the boundary table is identical on every platform.
    Fourteen decades cover both sub-microsecond timer observations and
    integer-valued histograms (witness lengths, search depths).
    """
    ratio = 10.0 ** 0.125          # eight sub-buckets per decade
    bounds: list[float] = []
    value = 1e-7
    for _ in range(14 * 8):
        bounds.append(value)
        value *= ratio
    return tuple(bounds)


#: Shared bucket boundary table (HDR-style: fixed, value-independent).
BUCKET_BOUNDS = _bucket_bounds()


class Histogram:
    """A fixed-bucket HDR-style streaming histogram.

    Observations land in geometric buckets (:data:`BUCKET_BOUNDS`, eight
    per decade, ~±15% relative resolution) plus underflow/overflow; the
    exact count/total/min/max are kept alongside, so means are exact and
    :meth:`percentile` answers p50/p95/p99 by exact rank selection over
    the bucket counts (the returned value is the bucket's upper bound,
    clamped to the observed min/max).

    Doubles as a wall-clock timer via :meth:`time` (observations in
    seconds), which is how the pipeline prices per-plan analyses and
    per-binding compliance checks.
    """

    __slots__ = ("key", "count", "total", "min", "max", "buckets")

    def __init__(self, key: MetricKey) -> None:
        self.key = key
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        # buckets[i] counts values <= BUCKET_BOUNDS[i]; the final slot
        # is the overflow bucket (values above the largest bound).
        self.buckets = [0] * (len(BUCKET_BOUNDS) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.buckets[bisect_left(BUCKET_BOUNDS, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, quantile: float) -> float:
        """The value at ``quantile`` (0 < q <= 1) by rank selection.

        The rank is exact (``ceil(q * count)``); the value is resolved
        to the containing bucket's upper bound and clamped into
        ``[min, max]``, so the answer is within one bucket (~15%) of the
        true order statistic and deterministic across platforms.
        """
        if not self.count:
            return 0.0
        rank = max(1, math.ceil(quantile * self.count))
        cumulative = 0
        for index, bucket_count in enumerate(self.buckets):
            cumulative += bucket_count
            if cumulative >= rank:
                if index >= len(BUCKET_BOUNDS):
                    return self.max
                return min(max(BUCKET_BOUNDS[index], self.min), self.max)
        return self.max  # pragma: no cover - unreachable

    @contextmanager
    def time(self) -> Iterator[None]:
        start = perf_counter()
        try:
            yield
        finally:
            self.observe(perf_counter() - start)

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Non-empty ``(upper_bound, cumulative_count)`` pairs, the
        overflow bucket spelled as ``inf`` — the OpenMetrics shape."""
        pairs: list[tuple[float, int]] = []
        cumulative = 0
        for index, bucket_count in enumerate(self.buckets):
            cumulative += bucket_count
            if bucket_count:
                bound = (math.inf if index >= len(BUCKET_BOUNDS)
                         else BUCKET_BOUNDS[index])
                pairs.append((bound, cumulative))
        return pairs

    def summary(self) -> dict[str, float]:
        empty = not self.count
        return {"count": self.count, "total": self.total,
                "min": self.min if self.count else 0.0,
                "max": self.max if self.count else 0.0,
                "mean": self.mean,
                "p50": 0.0 if empty else self.percentile(0.50),
                "p95": 0.0 if empty else self.percentile(0.95),
                "p99": 0.0 if empty else self.percentile(0.99)}


class MetricsRegistry:
    """A process- or session-scoped family of named metrics.

    ``registry.counter("compliance.explored_states")`` returns the same
    :class:`Counter` on every call; label keywords create independent
    children (``counter("planner.plans", verdict="valid")``).
    """

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[MetricKey, Counter] = {}
        self._gauges: dict[MetricKey, Gauge] = {}
        self._histograms: dict[MetricKey, Histogram] = {}

    # -- metric factories ---------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        key = _key(name, labels)
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter(key)
        return metric

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = _key(name, labels)
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge(key)
        return metric

    def histogram(self, name: str, **labels: object) -> Histogram:
        key = _key(name, labels)
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram(key)
        return metric

    # -- export -------------------------------------------------------------

    def snapshot(self) -> dict:
        """Everything recorded so far, as plain JSON-serialisable dicts
        keyed by the flat ``name{labels}`` spelling."""
        return {
            "counters": {render_key(key): metric.value
                         for key, metric in sorted(self._counters.items())},
            "gauges": {render_key(key): metric.value
                       for key, metric in sorted(self._gauges.items())},
            "histograms": {render_key(key): metric.summary()
                           for key, metric in
                           sorted(self._histograms.items())},
        }

    def reset(self) -> None:
        """Drop every metric (a fresh registry without re-registering)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def render_table(self) -> str:
        """A fixed-width human-readable table of the snapshot (what the
        CLI prints under ``--stats``)."""
        rows: list[tuple[str, str]] = []
        for key, counter in sorted(self._counters.items()):
            rows.append((render_key(key), str(counter.value)))
        for key, gauge in sorted(self._gauges.items()):
            rows.append((render_key(key), f"{gauge.value:g}"))
        for key, histogram in sorted(self._histograms.items()):
            summary = histogram.summary()
            rows.append((render_key(key),
                         f"n={summary['count']} total={summary['total']:.6f}"
                         f" mean={summary['mean']:.6f}"
                         f" p50={summary['p50']:.6f}"
                         f" p95={summary['p95']:.6f}"
                         f" p99={summary['p99']:.6f}"))
        if not rows:
            return "(no metrics recorded)"
        width = max(len(name) for name, _ in rows)
        return "\n".join(f"{name:<{width}}  {value}"
                         for name, value in rows)

    def render_openmetrics(self) -> str:
        """The registry in OpenMetrics-style text exposition.

        Counters become ``name_total``, gauges stay bare, histograms
        expose cumulative ``name_bucket{le="..."}`` series (only
        boundaries that received observations, plus ``+Inf``) with
        ``name_sum``/``name_count``.  Metric names are sanitised to the
        ``[a-zA-Z0-9_]`` charset; no exporter dependency is involved.
        """

        def metric_name(key: MetricKey) -> str:
            name, _ = key
            return "repro_" + "".join(
                ch if ch.isalnum() or ch == "_" else "_" for ch in name)

        def label_text(key: MetricKey, extra: str = "") -> str:
            _, labels = key
            parts = [f'{k}="{v}"' for k, v in labels]
            if extra:
                parts.append(extra)
            return "{" + ",".join(parts) + "}" if parts else ""

        def fmt(value: float) -> str:
            if value == math.inf:
                return "+Inf"
            return repr(value) if isinstance(value, float) else str(value)

        lines: list[str] = []
        typed: set[str] = set()

        def declare(key: MetricKey, kind: str) -> str:
            name = metric_name(key)
            if name not in typed:
                typed.add(name)
                lines.append(f"# TYPE {name} {kind}")
            return name

        for key, counter in sorted(self._counters.items()):
            name = declare(key, "counter")
            lines.append(f"{name}_total{label_text(key)} "
                         f"{fmt(counter.value)}")
        for key, gauge in sorted(self._gauges.items()):
            name = declare(key, "gauge")
            lines.append(f"{name}{label_text(key)} {fmt(gauge.value)}")
        for key, histogram in sorted(self._histograms.items()):
            name = declare(key, "histogram")
            pairs = histogram.bucket_counts()
            for bound, cumulative in pairs:
                le = 'le="' + fmt(bound) + '"'
                lines.append(f"{name}_bucket{label_text(key, le)} "
                             f"{cumulative}")
            if not pairs or pairs[-1][0] != math.inf:
                le = 'le="+Inf"'
                lines.append(f"{name}_bucket{label_text(key, le)} "
                             f"{histogram.count}")
            lines.append(f"{name}_sum{label_text(key)} "
                         f"{fmt(histogram.total)}")
            lines.append(f"{name}_count{label_text(key)} "
                         f"{histogram.count}")
        lines.append("# EOF")
        return "\n".join(lines)

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))

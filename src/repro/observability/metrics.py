"""A dependency-free metrics registry: counters, gauges, histograms.

The registry is the numeric half of the instrumentation layer (the
:mod:`repro.observability.tracing` spans are the structural half).  It
deliberately mirrors the shape of the Prometheus client — named metrics
with labelled children — without any exporter machinery: everything the
pipeline records is answered from process memory via :meth:`snapshot`
and rendered with :meth:`render_table`.

Metrics are keyed by ``(name, sorted label items)``; asking for the same
metric twice returns the same object, so hot paths can hoist the lookup
out of their loops and pay one attribute increment per observation.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from time import perf_counter
from typing import Iterator

#: A label key: the metric name plus its sorted ``(key, value)`` pairs.
MetricKey = tuple[str, tuple[tuple[str, str], ...]]


def _key(name: str, labels: dict[str, object]) -> MetricKey:
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


def render_key(key: MetricKey) -> str:
    """``name{k=v,...}`` — the canonical flat spelling of a metric key."""
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("key", "value")

    def __init__(self, key: MetricKey) -> None:
        self.key = key
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins; :meth:`high_water` keeps
    the maximum instead)."""

    __slots__ = ("key", "value")

    def __init__(self, key: MetricKey) -> None:
        self.key = key
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def high_water(self, value: float) -> None:
        if value > self.value:
            self.value = value


class Histogram:
    """A streaming summary of observations: count/total/min/max/mean.

    Doubles as a wall-clock timer via :meth:`time` (observations in
    seconds), which is how the pipeline prices per-plan analyses and
    per-binding compliance checks.
    """

    __slots__ = ("key", "count", "total", "min", "max")

    def __init__(self, key: MetricKey) -> None:
        self.key = key
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @contextmanager
    def time(self) -> Iterator[None]:
        start = perf_counter()
        try:
            yield
        finally:
            self.observe(perf_counter() - start)

    def summary(self) -> dict[str, float]:
        return {"count": self.count, "total": self.total,
                "min": self.min if self.count else 0.0,
                "max": self.max if self.count else 0.0,
                "mean": self.mean}


class MetricsRegistry:
    """A process- or session-scoped family of named metrics.

    ``registry.counter("compliance.explored_states")`` returns the same
    :class:`Counter` on every call; label keywords create independent
    children (``counter("planner.plans", verdict="valid")``).
    """

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[MetricKey, Counter] = {}
        self._gauges: dict[MetricKey, Gauge] = {}
        self._histograms: dict[MetricKey, Histogram] = {}

    # -- metric factories ---------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        key = _key(name, labels)
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter(key)
        return metric

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = _key(name, labels)
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge(key)
        return metric

    def histogram(self, name: str, **labels: object) -> Histogram:
        key = _key(name, labels)
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram(key)
        return metric

    # -- export -------------------------------------------------------------

    def snapshot(self) -> dict:
        """Everything recorded so far, as plain JSON-serialisable dicts
        keyed by the flat ``name{labels}`` spelling."""
        return {
            "counters": {render_key(key): metric.value
                         for key, metric in sorted(self._counters.items())},
            "gauges": {render_key(key): metric.value
                       for key, metric in sorted(self._gauges.items())},
            "histograms": {render_key(key): metric.summary()
                           for key, metric in
                           sorted(self._histograms.items())},
        }

    def reset(self) -> None:
        """Drop every metric (a fresh registry without re-registering)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def render_table(self) -> str:
        """A fixed-width human-readable table of the snapshot (what the
        CLI prints under ``--stats``)."""
        rows: list[tuple[str, str]] = []
        for key, counter in sorted(self._counters.items()):
            rows.append((render_key(key), str(counter.value)))
        for key, gauge in sorted(self._gauges.items()):
            rows.append((render_key(key), f"{gauge.value:g}"))
        for key, histogram in sorted(self._histograms.items()):
            summary = histogram.summary()
            rows.append((render_key(key),
                         f"n={summary['count']} total={summary['total']:.6f}"
                         f" mean={summary['mean']:.6f}"))
        if not rows:
            return "(no metrics recorded)"
        width = max(len(name) for name, _ in rows)
        return "\n".join(f"{name:<{width}}  {value}"
                         for name, value in rows)

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))

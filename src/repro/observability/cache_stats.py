"""Adapters exposing ``functools.lru_cache`` statistics to telemetry.

The contract/LTS/request layers memoise through module-level
``lru_cache``s; those already count hits and misses internally
(``cache_info()``), but the counters are cumulative for the process
lifetime.  A :class:`CacheStatsAdapter` wraps one cached function and
adds a *baseline*, so :func:`cache_stats` reports counts **since the
last reset** — which is what a benchmark run or a CLI invocation wants
to see — while never touching the hot path (the adapter only reads
``cache_info()`` when asked).

Caches self-register at definition site via :func:`track_cache`;
``repro.contracts.clear_contract_caches()`` clears its caches *and*
rebaselines their adapters, so tests can assert clean-slate counts.
"""

from __future__ import annotations

from typing import Callable

_ADAPTERS: dict[str, "CacheStatsAdapter"] = {}


class CacheStatsAdapter:
    """Delta-view over one ``lru_cache``-decorated function."""

    __slots__ = ("name", "_fn", "_base_hits", "_base_misses")

    def __init__(self, name: str, fn: Callable) -> None:
        self.name = name
        self._fn = fn
        self._base_hits = 0
        self._base_misses = 0

    def stats(self) -> dict[str, int]:
        """Hits/misses since the last :meth:`reset`, plus live size."""
        info = self._fn.cache_info()
        return {"hits": info.hits - self._base_hits,
                "misses": info.misses - self._base_misses,
                "currsize": info.currsize,
                "maxsize": info.maxsize}

    def reset(self) -> None:
        """Rebaseline: subsequent :meth:`stats` start from zero.

        Call *after* ``cache_clear()`` as well — clearing zeroes the
        underlying ``cache_info`` counters, so stale baselines would
        otherwise go negative.
        """
        info = self._fn.cache_info()
        self._base_hits = info.hits
        self._base_misses = info.misses

    def clear(self) -> None:
        """Drop the cache contents and rebaseline in one step."""
        self._fn.cache_clear()
        self._base_hits = 0
        self._base_misses = 0


def track_cache(name: str, fn: Callable) -> Callable:
    """Register *fn* (an ``lru_cache`` wrapper) under *name*; returns
    *fn* so call sites can wrap a definition in place.  Re-registering a
    name replaces the adapter (module reloads)."""
    _ADAPTERS[name] = CacheStatsAdapter(name, fn)
    return fn


def adapter(name: str) -> CacheStatsAdapter:
    """The adapter registered under *name* (KeyError if absent)."""
    return _ADAPTERS[name]


def cache_stats(*names: str) -> dict[str, dict[str, int]]:
    """Statistics for the named caches (all tracked caches by default)."""
    selected = names if names else tuple(_ADAPTERS)
    return {name: _ADAPTERS[name].stats() for name in selected
            if name in _ADAPTERS}


def reset_cache_stats(*names: str) -> None:
    """Rebaseline the named adapters (all of them by default)."""
    selected = names if names else tuple(_ADAPTERS)
    for name in selected:
        found = _ADAPTERS.get(name)
        if found is not None:
            found.reset()


def tracked_caches() -> tuple[str, ...]:
    """The names of every registered cache, sorted."""
    return tuple(sorted(_ADAPTERS))

"""Module syntax: whole networks in the surface language.

Beyond single terms (:mod:`repro.lang.parser`), a *module* declares
policies, services and clients together::

    # the paper's hotel network
    policy phi1 = hotel(bl = {1}, p = 45, t = 100)
    policy phi2 = hotel(bl = {1, 3}, p = 40, t = 70)

    client lc1 = open 1 with phi1 { !Req . (?CoBo . !Pay + ?NoAv) }

    service lbr =
        ?Req ;
        open 3 { !IdC . (?Bok + ?UnA) } ;
        (!CoBo . ?Pay ++ !NoAv)

    service ls1 = @sgn(1) ; @p(45) ; @ta(80) ; ?IdC . (!Bok ++ !UnA)

Grammar::

    module  := declaration*
    declaration := 'policy' IDENT '=' IDENT [policy_args]   -- schema call
                 | 'client' IDENT '=' expr
                 | 'service' IDENT '=' expr
                 | 'program' ('client'|'service') IDENT '=' λ-expr
    policy_args := '(' [arg (',' arg)*] ')'
    arg     := IDENT '=' value          -- named instantiation argument
             | value                    -- positional schema argument
    value   := INT | FLOAT | STRING | IDENT
             | '{' [value (',' value)*] '}'          -- a (frozen) set
             | '{' NAME '=' value (',' …)* '}'       -- a mapping

Policy schemas are looked up in a registry (by default the library
registry shared with the CLI); positional arguments parameterise the
schema factory (e.g. ``never_after(read, write)``), named arguments
instantiate the resulting automaton's parameters (e.g.
``hotel(bl = {1}, p = 45, t = 100)``).

A declaration's body extends to the next declaration header at brace
level 0, so multi-line terms need no terminator.

``program`` declarations contain *λ-programs* (the concrete syntax of
:mod:`repro.lam.parser`); their history expression is extracted by the
type-and-effect system before being added to the module — Section 3's
programming model, end to end in one file::

    program service worker =
        fun serve(u: unit): unit =
            offer { job -> @archive(1) ; !done ; serve () | quit -> () }
        in serve ()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.core.errors import ParseError, ReproError
from repro.core.syntax import HistoryExpression
from repro.core.wellformed import check_well_formed
from repro.lang.lexer import Span, Token, tokenize
from repro.lang.parser import _Parser
from repro.network.repository import Repository
from repro.policies.usage_automata import Policy


def default_schemas() -> dict[str, Callable]:
    """The standard schema registry (shared with the CLI)."""
    from repro.policies import library
    from repro.quantitative.policies import budget_automaton
    return {
        "hotel": lambda: library.hotel_policy_automaton(),
        "never_after": library.never_after_automaton,
        "forbid": library.forbid_automaton,
        "blacklist": library.blacklist_automaton,
        "at_most": library.at_most_automaton,
        "require_before": library.require_before_automaton,
        "chinese_wall": library.chinese_wall_automaton,
        "budget": budget_automaton,
    }


@dataclass(frozen=True)
class Declaration:
    """One top-level declaration of a module, with its source span.

    ``kind`` is ``policy``, ``client``, ``service``, ``program-client``
    or ``program-service``; ``span`` covers the declared name; ``value``
    is the parsed :class:`~repro.policies.usage_automata.Policy` or
    history expression.  ``tokens`` are the body tokens of the
    declaration (the ``=`` and the terminating EOF excluded), kept so
    downstream tooling — the lint engine in particular — can locate
    sub-term positions inside the body.
    """

    kind: str
    name: str
    span: Span | None
    value: object = None
    tokens: tuple[Token, ...] = ()

    @property
    def is_policy(self) -> bool:
        return self.kind == "policy"

    @property
    def is_client(self) -> bool:
        return self.kind in ("client", "program-client")

    @property
    def is_service(self) -> bool:
        return self.kind in ("service", "program-service")


@dataclass
class Module:
    """A parsed module: named policies, clients and services.

    ``declarations`` preserves *every* declaration in source order — a
    name declared twice appears twice here even though the dict keeps
    only the later value — together with its source span, so tooling can
    report positions and detect shadowing.  Programmatically-built
    modules may leave it empty.
    """

    policies: dict[str, Policy] = field(default_factory=dict)
    clients: dict[str, HistoryExpression] = field(default_factory=dict)
    services: dict[str, HistoryExpression] = field(default_factory=dict)
    declarations: list[Declaration] = field(default_factory=list)
    path: str | None = None

    @property
    def repository(self) -> Repository:
        """The services as a repository."""
        return Repository(self.services)

    def term(self, name: str) -> HistoryExpression:
        """Look up a client or service by name."""
        if name in self.clients:
            return self.clients[name]
        if name in self.services:
            return self.services[name]
        raise ReproError(f"no client or service named {name!r}")

    def declaration(self, name: str,
                    kind: str | None = None) -> Declaration | None:
        """The *last* declaration of *name* (the one the dicts keep),
        optionally restricted to a declaration kind."""
        for decl in reversed(self.declarations):
            if decl.name == name and (kind is None or decl.kind == kind):
                return decl
        return None


#: Keywords that start a top-level declaration.
_DECL_KEYWORDS = {"policy", "client", "service"}

#: The λ-program declaration prefix.
_PROGRAM_KEYWORD = "program"


def parse_module(source: str,
                 schemas: Mapping[str, Callable] | None = None,
                 path: str | None = None) -> Module:
    """Parse a module, validating every declared term.

    *path* (purely informational) is recorded on the module so error
    reporting and lint diagnostics can print ``file:line:col``.
    """
    registry = dict(schemas) if schemas is not None else default_schemas()
    tokens = tokenize(source)
    module = Module(path=path)

    index = 0
    while tokens[index].kind != "EOF":
        keyword = tokens[index]
        if not _starts_declaration(tokens, index):
            raise ParseError(
                f"expected a declaration (policy/client/service NAME = "
                f"or program client/service NAME =), found "
                f"{keyword.text!r}", keyword.line, keyword.column)
        if keyword.text == _PROGRAM_KEYWORD:
            kind = f"program-{tokens[index + 1].text}"
            name_token = tokens[index + 2]
            index += 3
        else:
            kind = keyword.text
            name_token = tokens[index + 1]
            index += 2
        # The body runs to the next brace-balanced declaration header.
        end = index
        depth = 0
        while tokens[end].kind != "EOF":
            if tokens[end].kind in ("{", "("):
                depth += 1
            elif tokens[end].kind in ("}", ")"):
                depth -= 1
            elif depth == 0 and end > index \
                    and _starts_declaration(tokens, end):
                break
            end += 1
        body = tuple(tokens[index:end]) + (_eof_like(tokens[end]),)
        value = _parse_declaration(module, registry, kind, name_token.text,
                                   list(body))
        module.declarations.append(
            Declaration(kind, name_token.text, name_token.span, value,
                        body[1:-1]))
        index = end
    return module


def _starts_declaration(tokens, position: int) -> bool:
    """A declaration header is ``(policy|client|service) NAME =`` or
    ``program (client|service) NAME =`` — the trailing ``=``
    disambiguates the keywords from channels or recursion variables that
    happen to share their spelling."""
    token = tokens[position]
    if token.kind != "IDENT":
        return False
    if token.text == _PROGRAM_KEYWORD:
        return (tokens[position + 1].kind == "IDENT"
                and tokens[position + 1].text in ("client", "service")
                and tokens[position + 2].kind in ("IDENT", "INT")
                and tokens[position + 3].kind == "=")
    if token.text not in _DECL_KEYWORDS:
        return False
    if tokens[position + 1].kind not in ("IDENT", "INT"):
        return False
    return tokens[position + 2].kind == "="


def _eof_like(token: Token) -> Token:
    return Token("EOF", "", token.line, token.column)


def _parse_declaration(module: Module, registry, kind: str, name: str,
                       body: list[Token]) -> object:
    """Parse one declaration body into *module*; returns the parsed
    value (a policy or a history expression) for the declaration
    record."""
    if kind.startswith("program-"):
        from repro.lam.infer import extract
        from repro.lam.parser import _LamParser
        parser = _LamParser(body, module.policies)
        token = parser.peek()
        if token.kind != "=":
            raise ParseError("expected '=' after the declaration name",
                             token.line, token.column)
        parser.advance()
        program = parser.expr()
        parser.expect("EOF")
        effect = extract(program)
        if kind == "program-client":
            module.clients[name] = effect
        else:
            module.services[name] = effect
        return effect
    parser = _ModuleParser(body, module.policies)
    parser.expect_equals()
    if kind == "policy":
        policy = parser.policy_value(registry)
        module.policies[name] = policy
        parser.expect("EOF")
        return policy
    term = parser.expr()
    parser.expect("EOF")
    check_well_formed(term)
    if kind == "client":
        module.clients[name] = term
    else:
        module.services[name] = term
    return term


class _ModuleParser(_Parser):
    """The term parser extended with declaration plumbing."""

    def expect_equals(self) -> None:
        token = self.peek()
        if token.kind == "=":
            self.advance()
            return
        raise ParseError("expected '=' after the declaration name",
                         token.line, token.column)

    def policy_value(self, registry) -> Policy:
        schema_token = self.expect("IDENT")
        factory = registry.get(schema_token.text)
        if factory is None:
            raise ParseError(
                f"unknown policy schema {schema_token.text!r} "
                f"(known: {', '.join(sorted(registry))})",
                schema_token.line, schema_token.column)
        positional: list[object] = []
        named: dict[str, object] = {}
        if self.peek().kind == "(":
            self.advance()
            if self.peek().kind != ")":
                self._argument(positional, named)
                while self.peek().kind == ",":
                    self.advance()
                    self._argument(positional, named)
            self.expect(")")
        automaton = factory(*positional)
        return automaton.instantiate(**named)

    def _argument(self, positional: list, named: dict) -> None:
        token = self.peek()
        if (token.kind in self._NAME_KINDS
                and self._tokens[self._index + 1].kind == "="):
            name = self.advance().text
            self.advance()  # '='
            named[name] = self._value()
            return
        positional.append(self._value())

    def _value(self) -> object:
        token = self.peek()
        if token.kind == "{":
            self.advance()
            if self.peek().kind == "}":
                self.advance()
                return frozenset()
            if (self.peek().kind in self._NAME_KINDS
                    and self._tokens[self._index + 1].kind == "="):
                entries: dict[str, object] = {}
                self._dict_entry(entries)
                while self.peek().kind == ",":
                    self.advance()
                    self._dict_entry(entries)
                self.expect("}")
                return tuple(sorted(entries.items()))
            items = [self._value()]
            while self.peek().kind == ",":
                self.advance()
                items.append(self._value())
            self.expect("}")
            return frozenset(items)
        return self._literal()

    def _dict_entry(self, entries: dict) -> None:
        name = self.advance().text
        self.expect("=")
        entries[name] = self._value()

"""Pretty printer for history expressions.

Produces the concrete syntax of :mod:`repro.lang.parser`; parsing the
output of :func:`pretty` yields a structurally equal term (round-trip),
provided policy objects are given printable identifiers via the
*policy_names* table (otherwise ``str(policy)`` is used, which is
readable but not necessarily re-parseable).
"""

from __future__ import annotations

from typing import Mapping

from repro.core.actions import Event, Receive, Send
from repro.core.syntax import (ClosePending, Epsilon, EventNode,
                               ExternalChoice, FrameClosePending, Framing,
                               HistoryExpression, InternalChoice, Mu, Request,
                               Seq, Var)


def pretty(term: HistoryExpression,
           policy_names: Mapping[object, str] | None = None) -> str:
    """Render *term* in the surface syntax."""
    printer = _Printer(policy_names or {})
    return printer.render(term)


class _Printer:
    def __init__(self, policy_names: Mapping[object, str]) -> None:
        self._policy_names = policy_names

    def render(self, term: HistoryExpression) -> str:
        if isinstance(term, Epsilon):
            return "eps"
        if isinstance(term, Var):
            return term.name
        if isinstance(term, EventNode):
            return self._event(term.event)
        if isinstance(term, Seq):
            parts = []
            node: HistoryExpression = term
            while isinstance(node, Seq):
                parts.append(self.render(node.first))
                node = node.second
            parts.append(self.render(node))
            return " ; ".join(parts)
        if isinstance(term, ExternalChoice):
            return self._choice(term.branches, "+")
        if isinstance(term, InternalChoice):
            return self._choice(term.branches, "++")
        if isinstance(term, Mu):
            return f"mu {term.var} {{ {self.render(term.body)} }}"
        if isinstance(term, Request):
            policy = ("" if term.policy is None
                      else f" with {self._policy(term.policy)}")
            return (f"open {term.request}{policy} "
                    f"{{ {self.render(term.body)} }}")
        if isinstance(term, Framing):
            return (f"frame {self._policy(term.policy)} "
                    f"{{ {self.render(term.body)} }}")
        if isinstance(term, ClosePending):
            policy = ("0" if term.policy is None
                      else self._policy(term.policy))
            return f"<close {term.request},{policy}>"
        if isinstance(term, FrameClosePending):
            return f"<]{self._policy(term.policy)}>"
        raise TypeError(f"unknown history expression node {term!r}")

    def _event(self, item: Event) -> str:
        if not item.params:
            return f"@{item.name}"
        inner = ", ".join(self._literal(param) for param in item.params)
        return f"@{item.name}({inner})"

    @staticmethod
    def _literal(value: object) -> str:
        if isinstance(value, bool):
            return f'"{value}"'
        if isinstance(value, (int, float)):
            return str(value)
        text = str(value)
        if text.isidentifier():
            return text
        return f'"{text}"'

    def _choice(self, branches, operator: str) -> str:
        rendered = []
        for label, continuation in branches:
            sigil = "!" if isinstance(label, Send) else "?"
            assert isinstance(label, (Send, Receive))
            if isinstance(continuation, Epsilon):
                rendered.append(f"{sigil}{label.channel}")
            else:
                body = self.render(continuation)
                if isinstance(continuation, Seq):
                    body = f"{{ {body} }}"
                rendered.append(f"{sigil}{label.channel} . {body}")
        if len(rendered) == 1:
            return rendered[0]
        return "(" + f" {operator} ".join(rendered) + ")"

    def _policy(self, policy: object) -> str:
        name = self._policy_names.get(policy)
        if name is not None:
            return name
        return str(policy)

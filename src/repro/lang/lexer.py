"""Lexer for the history-expression surface syntax.

Token kinds:

``IDENT``    identifiers (``[A-Za-z_][A-Za-z0-9_]*``), with the keywords
             ``eps``, ``mu``, ``open``, ``with``, ``frame`` split out;
``INT`` / ``FLOAT`` / ``STRING`` literals (strings in double quotes);
punctuation ``@ ! ? . ; , ( ) { } = : | ->``, the external-choice
operator ``+`` and the internal-choice operator ``++`` (``=`` appears in
module declarations, :mod:`repro.lang.module`; ``: | ->`` in λ-programs,
:mod:`repro.lam.parser`).

``#`` starts a comment running to the end of the line.  Every token
carries its 1-based line/column for error reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.errors import ParseError

KEYWORDS = frozenset({"eps", "mu", "open", "with", "frame"})

#: Multi-character symbols first so maximal munch applies.
SYMBOLS = ("++", "->", "@", "!", "?", ".", ";", ",", "(", ")", "{",
           "}", "+", "=", ":", "|")


@dataclass(frozen=True, slots=True)
class Span:
    """A half-open source region ``line:column – end_line:end_column``.

    Lines and columns are 1-based, like the positions carried by
    :class:`Token` and :class:`~repro.core.errors.ParseError`.  Spans are
    attached to module declarations (:mod:`repro.lang.module`) and lint
    diagnostics (:mod:`repro.lint`) so every finding can be reported as
    ``file:line:col``.
    """

    line: int
    column: int
    end_line: int
    end_column: int

    @staticmethod
    def of(token: "Token") -> "Span":
        """The span covering exactly *token*."""
        return Span(token.line, token.column,
                    token.line, token.column + max(len(token.text), 1))

    def merge(self, other: "Span") -> "Span":
        """The smallest span covering both operands."""
        start = min((self.line, self.column), (other.line, other.column))
        end = max((self.end_line, self.end_column),
                  (other.end_line, other.end_column))
        return Span(start[0], start[1], end[0], end[1])

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token with its source position."""

    kind: str
    text: str
    line: int
    column: int

    @property
    def span(self) -> Span:
        """The source span of this token."""
        return Span.of(self)

    def __str__(self) -> str:
        return f"{self.kind}({self.text!r})@{self.line}:{self.column}"


def tokenize(source: str) -> list[Token]:
    """Tokenize *source*, appending a final ``EOF`` token."""
    return list(_tokens(source))


def _tokens(source: str) -> Iterator[Token]:
    line = 1
    column = 1
    index = 0
    length = len(source)

    def error(message: str) -> ParseError:
        return ParseError(message, line, column)

    while index < length:
        char = source[index]
        if char == "\n":
            index += 1
            line += 1
            column = 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if char == "#":
            while index < length and source[index] != "\n":
                index += 1
            continue
        if char == '"':
            start_line, start_column = line, column
            end = index + 1
            while end < length and source[end] != '"':
                if source[end] == "\n":
                    raise ParseError("unterminated string literal",
                                     start_line, start_column)
                end += 1
            if end >= length:
                raise ParseError("unterminated string literal",
                                 start_line, start_column)
            text = source[index + 1:end]
            yield Token("STRING", text, start_line, start_column)
            column += end + 1 - index
            index = end + 1
            continue
        if char.isdigit() or (char == "-" and index + 1 < length
                              and source[index + 1].isdigit()):
            start_line, start_column = line, column
            end = index + 1
            while end < length and (source[end].isdigit()
                                    or source[end] == "."):
                end += 1
            text = source[index:end]
            kind = "FLOAT" if "." in text else "INT"
            if text.count(".") > 1:
                raise ParseError(f"malformed number {text!r}",
                                 start_line, start_column)
            yield Token(kind, text, start_line, start_column)
            column += end - index
            index = end
            continue
        if char.isalpha() or char == "_":
            start_line, start_column = line, column
            end = index + 1
            while end < length and (source[end].isalnum()
                                    or source[end] == "_"):
                end += 1
            text = source[index:end]
            kind = text.upper() if text in KEYWORDS else "IDENT"
            yield Token(kind, text, start_line, start_column)
            column += end - index
            index = end
            continue
        for symbol in SYMBOLS:
            if source.startswith(symbol, index):
                yield Token(symbol, symbol, line, column)
                index += len(symbol)
                column += len(symbol)
                break
        else:
            raise error(f"unexpected character {char!r}")
    yield Token("EOF", "", line, column)

"""Recursive-descent parser for the history-expression surface syntax.

Grammar (whitespace-insensitive; ``#`` comments)::

    expr     := term (';' term)*                          -- H · H'
    term     := 'eps'                                     -- ε
              | IDENT                                     -- recursion var h
              | '@' IDENT ['(' literal (',' literal)* ')']  -- event α
              | prefix                                    -- 1-branch choice
              | '(' branches ')'                          -- Σ / ⊕
              | 'mu' IDENT '{' expr '}'                   -- μh.H
              | 'open' (IDENT|INT) ['with' IDENT] '{' expr '}'
              | 'frame' IDENT '{' expr '}'                -- φ[H]
              | '{' expr '}'                              -- grouping
    prefix   := '!' IDENT ['.' term]                      -- ā.H
              | '?' IDENT ['.' term]                      -- a.H
    branches := prefix ('+' prefix)*                      -- external (all ?)
              | prefix ('++' prefix)*                     -- internal (all !)
    literal  := INT | FLOAT | STRING | IDENT              -- IDENT ≡ string

Examples::

    open r1 with phi { !Req . (?CoBo . !Pay + ?NoAv) }
    @sgn(1) ; @p(45) ; @ta(80) ; ?IdC . (!Bok ++ !UnA)
    mu h { !ping . ?pong . h }

Policy identifiers (after ``with`` and ``frame``) are resolved against
the *policies* environment passed to :func:`parse`.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.errors import ParseError
from repro.core.syntax import (EPSILON, ExternalChoice, Framing,
                               HistoryExpression, InternalChoice, Mu,
                               Request, Var, event, seq)
from repro.core.actions import Receive, Send
from repro.lang.lexer import Token, tokenize


def parse(source: str,
          policies: Mapping[str, object] | None = None) -> HistoryExpression:
    """Parse *source* into a history expression.

    *policies* maps the policy identifiers usable after ``with``/``frame``
    to :class:`~repro.policies.usage_automata.Policy` values.
    """
    parser = _Parser(tokenize(source), dict(policies or {}))
    term = parser.expr()
    parser.expect("EOF")
    return term


class _Parser:
    def __init__(self, tokens: list[Token],
                 policies: dict[str, object]) -> None:
        self._tokens = tokens
        self._index = 0
        self._policies = policies

    # -- token plumbing -----------------------------------------------------

    def peek(self) -> Token:
        return self._tokens[self._index]

    def advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind != "EOF":
            self._index += 1
        return token

    def expect(self, kind: str) -> Token:
        token = self.peek()
        if token.kind != kind:
            raise ParseError(f"expected {kind}, found {token.kind} "
                             f"({token.text!r})", token.line, token.column)
        return self.advance()

    def error(self, message: str) -> ParseError:
        token = self.peek()
        return ParseError(message, token.line, token.column)

    _NAME_KINDS = ("IDENT", "EPS", "MU", "OPEN", "WITH", "FRAME")

    def expect_name(self) -> Token:
        """An identifier; keywords are allowed where only a name can
        appear (event names, channels, request ids, …)."""
        token = self.peek()
        if token.kind not in self._NAME_KINDS:
            raise ParseError(f"expected an identifier, found {token.kind} "
                             f"({token.text!r})", token.line, token.column)
        return self.advance()

    # -- grammar ------------------------------------------------------------

    def expr(self) -> HistoryExpression:
        parts = [self.term()]
        while self.peek().kind == ";":
            self.advance()
            parts.append(self.term())
        return seq(*parts)

    def term(self) -> HistoryExpression:
        token = self.peek()
        if token.kind == "EPS":
            self.advance()
            return EPSILON
        if token.kind == "IDENT":
            self.advance()
            return Var(token.text)
        if token.kind == "@":
            return self._event()
        if token.kind in ("!", "?"):
            label, continuation = self._prefix()
            if isinstance(label, Send):
                return InternalChoice(((label, continuation),))
            return ExternalChoice(((label, continuation),))
        if token.kind == "(":
            return self._choice()
        if token.kind == "MU":
            return self._mu()
        if token.kind == "OPEN":
            return self._open()
        if token.kind == "FRAME":
            return self._frame()
        if token.kind == "{":
            self.advance()
            inner = self.expr()
            self.expect("}")
            return inner
        raise self.error(f"expected a history expression, found "
                         f"{token.kind} ({token.text!r})")

    def _event(self) -> HistoryExpression:
        self.expect("@")
        name = self.expect_name().text
        params: list[object] = []
        if self.peek().kind == "(":
            self.advance()
            params.append(self._literal())
            while self.peek().kind == ",":
                self.advance()
                params.append(self._literal())
            self.expect(")")
        return event(name, *params)

    def _literal(self) -> object:
        token = self.peek()
        if token.kind == "INT":
            self.advance()
            return int(token.text)
        if token.kind == "FLOAT":
            self.advance()
            return float(token.text)
        if token.kind == "STRING" or token.kind in self._NAME_KINDS:
            self.advance()
            return token.text
        raise self.error(f"expected a literal, found {token.kind}")

    def _prefix(self) -> tuple[Send | Receive, HistoryExpression]:
        token = self.advance()
        channel = self.expect_name().text
        label: Send | Receive = (Send(channel) if token.kind == "!"
                                 else Receive(channel))
        continuation: HistoryExpression = EPSILON
        if self.peek().kind == ".":
            self.advance()
            continuation = self.term()
        return label, continuation

    def _choice(self) -> HistoryExpression:
        open_paren = self.expect("(")
        if self.peek().kind not in ("!", "?"):
            raise self.error("a choice must start with a '!' or '?' prefix")
        branches = [self._prefix()]
        operator: str | None = None
        while self.peek().kind in ("+", "++"):
            token = self.advance()
            if operator is None:
                operator = token.kind
            elif operator != token.kind:
                raise ParseError("cannot mix '+' (external) and '++' "
                                 "(internal) in one choice",
                                 token.line, token.column)
            branches.append(self._prefix())
        self.expect(")")

        kinds = {type(label) for label, _ in branches}
        if operator == "+" or (operator is None and kinds == {Receive}):
            if kinds != {Receive}:
                raise ParseError("external choice '+' requires '?' input "
                                 "prefixes only", open_paren.line,
                                 open_paren.column)
            return ExternalChoice(tuple(branches))  # type: ignore[arg-type]
        if kinds != {Send}:
            raise ParseError("internal choice '++' requires '!' output "
                             "prefixes only", open_paren.line,
                             open_paren.column)
        return InternalChoice(tuple(branches))  # type: ignore[arg-type]

    def _mu(self) -> HistoryExpression:
        self.expect("MU")
        var = self.expect("IDENT").text
        self.expect("{")
        body = self.expr()
        self.expect("}")
        return Mu(var, body)

    def _open(self) -> HistoryExpression:
        self.expect("OPEN")
        token = self.peek()
        if token.kind != "INT" and token.kind not in self._NAME_KINDS:
            raise self.error("expected a request identifier")
        request_id = self.advance().text
        policy: object | None = None
        if self.peek().kind == "WITH":
            self.advance()
            policy = self._policy_ref()
        self.expect("{")
        body = self.expr()
        self.expect("}")
        return Request(request_id, policy, body)

    def _frame(self) -> HistoryExpression:
        self.expect("FRAME")
        policy = self._policy_ref()
        self.expect("{")
        body = self.expr()
        self.expect("}")
        return Framing(policy, body)

    def _policy_ref(self) -> object:
        token = self.expect("IDENT")
        try:
            return self._policies[token.text]
        except KeyError:
            raise ParseError(f"unknown policy {token.text!r} (not in the "
                             "parse environment)", token.line,
                             token.column) from None

"""A textual surface syntax for history expressions.

Lexer, recursive-descent parser and pretty printer for the concrete
syntax used by the examples and the command-line driver; see
:mod:`repro.lang.parser` for the grammar.
"""

from repro.lang.parser import parse
from repro.lang.pretty import pretty

__all__ = ["parse", "pretty"]

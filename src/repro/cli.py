"""Command-line driver.

Networks are described in TOML::

    [policies.phi]
    schema = "hotel"                      # a schema from the registry
    args = { bl = [1], p = 45, t = 100 }

    [services.lbr]
    term = "?Req . open r3 { !IdC . (?Bok + ?UnA) } ; (!CoBo . ?Pay ++ !NoAv)"

    [clients.lc1]
    term = "open r1 with phi { !Req . (?CoBo . !Pay + ?NoAv) }"

Networks can equivalently be written in the surface-language module
format (``.sus`` files; see :mod:`repro.lang.module`).

Commands::

    repro check NETWORK.{toml,sus}        # parse + well-formedness
    repro verify NETWORK.toml             # plan synthesis (Section 5)
    repro compliance NETWORK.toml A B     # is A's first request ⊢ B?
    repro simulate NETWORK.toml [--seed N] [--unmonitored] [--trace]
    repro explain NETWORK.toml CLIENT     # narrate each candidate plan
    repro dot NETWORK.toml NAME           # policy automaton / contract dot
    repro trace NETWORK.toml [--out F]    # verify + simulate, emit spans

``repro --stats <command> …`` enables telemetry for the run and prints
the metrics table (counters, timers, cache hit rates) afterwards; the
``REPRO_TELEMETRY`` environment variable does the same for every run.

Exit status: 0 on success/verified, 1 on a negative verdict, 2 on usage
or input errors.
"""

from __future__ import annotations

import argparse
import sys
import tomllib
from pathlib import Path

from repro.core.compliance import check_compliance
from repro.core.errors import ReproError
from repro.observability import runtime as _telemetry
from repro.core.syntax import HistoryExpression
from repro.core.wellformed import check_well_formed
from repro.analysis.requests import extract_requests
from repro.analysis.verification import verify_network
from repro.lang.parser import parse
from repro.network.config import Component, Configuration
from repro.network.repository import Repository
from repro.network.simulator import Simulator
from repro.policies import library
from repro.policies.usage_automata import Policy

#: Registry of policy schemas available to TOML files: name → callable
#: returning a parametric automaton (instantiated with the TOML args).
SCHEMAS = {
    "hotel": lambda: library.hotel_policy_automaton(),
    "never_after": library.never_after_automaton,
    "forbid": library.forbid_automaton,
    "blacklist": library.blacklist_automaton,
    "at_most": library.at_most_automaton,
    "require_before": library.require_before_automaton,
    "chinese_wall": library.chinese_wall_automaton,
}


class NetworkFile:
    """A parsed network description."""

    def __init__(self, policies: dict[str, Policy],
                 services: dict[str, HistoryExpression],
                 clients: dict[str, HistoryExpression]) -> None:
        self.policies = policies
        self.services = services
        self.clients = clients

    @property
    def repository(self) -> Repository:
        return Repository(self.services)

    def term(self, name: str) -> HistoryExpression:
        """Look up a client or service by location name."""
        if name in self.clients:
            return self.clients[name]
        if name in self.services:
            return self.services[name]
        raise ReproError(f"no client or service named {name!r}")


def load_network(path: str | Path) -> NetworkFile:
    """Parse a network description: TOML, or the surface-language module
    format (any non-``.toml`` extension, conventionally ``.sus``)."""
    if Path(path).suffix != ".toml":
        from repro.lang.module import parse_module
        with open(path, "r", encoding="utf-8") as handle:
            module = parse_module(handle.read())
        return NetworkFile(module.policies, module.services,
                           module.clients)
    with open(path, "rb") as handle:
        data = tomllib.load(handle)

    policies: dict[str, Policy] = {}
    for name, spec in data.get("policies", {}).items():
        schema_name = spec.get("schema")
        if schema_name not in SCHEMAS:
            raise ReproError(
                f"policy {name!r}: unknown schema {schema_name!r} "
                f"(known: {', '.join(sorted(SCHEMAS))})")
        factory = SCHEMAS[schema_name]
        ctor_args = spec.get("schema_args", [])
        automaton = factory(*ctor_args)
        instantiation = spec.get("args", {})
        policies[name] = automaton.instantiate(**instantiation)

    def parse_section(section: str) -> dict[str, HistoryExpression]:
        terms: dict[str, HistoryExpression] = {}
        for name, spec in data.get(section, {}).items():
            terms[name] = parse(spec["term"], policies=policies)
        return terms

    return NetworkFile(policies, parse_section("services"),
                       parse_section("clients"))


def _cmd_check(args: argparse.Namespace) -> int:
    network = load_network(args.network)
    for name, term in {**network.clients, **network.services}.items():
        check_well_formed(term)
        print(f"{name}: well formed")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    network = load_network(args.network)
    verdict = verify_network(network.clients, network.repository,
                             max_plans=args.max_plans)
    print(verdict.report())
    return 0 if verdict.verified else 1


def _cmd_compliance(args: argparse.Namespace) -> int:
    network = load_network(args.network)
    client = network.term(args.client)
    server = network.term(args.server)
    requests = extract_requests(client)
    body = requests[0].body if requests else client
    result = check_compliance(body, server)
    if result.compliant:
        print(f"{args.client} ⊢ {args.server}: compliant")
        return 0
    print(f"{args.client} ⊬ {args.server}: NOT compliant")
    if result.trace:
        print(f"  stuck after {len(result.trace) - 1} synchronisations")
    return 1


def _cmd_simulate(args: argparse.Namespace) -> int:
    network = load_network(args.network)
    verdict = verify_network(network.clients, network.repository,
                             max_plans=args.max_plans)
    if not verdict.verified:
        print(verdict.report())
        return 1
    plans = verdict.plan_vector()
    configuration = Configuration.of(*(
        Component.client(location, term)
        for location, term in network.clients.items()))
    simulator = Simulator(configuration, plans, network.repository,
                          monitored=not args.unmonitored, seed=args.seed)
    simulator.run(max_steps=args.max_steps)
    if args.trace:
        from repro.network.trace_render import render_run
        print(render_run(simulator))
    for index, (location, _) in enumerate(network.clients.items()):
        history = simulator.configuration[index].history
        print(f"{location}: {history}")
    print(f"ran {len(simulator.log)} steps under ~π = {plans}; "
          f"terminated: {simulator.is_terminated()}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.analysis.diagnostics import explain_plan
    from repro.analysis.planner import analyze_plan, enumerate_plans
    network = load_network(args.network)
    if args.client not in network.clients:
        raise ReproError(f"no client named {args.client!r}")
    client = network.clients[args.client]
    repository = network.repository
    any_valid = False
    for plan in enumerate_plans(client, repository):
        analysis = analyze_plan(client, plan, repository,
                                location=args.client)
        any_valid = any_valid or analysis.valid
        print(explain_plan(analysis))
        print()
    return 0 if any_valid else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    """Verify, simulate, and emit the span tree of the whole run."""
    network = load_network(args.network)
    with _telemetry.telemetry_session() as tel:
        verdict = verify_network(network.clients, network.repository,
                                 max_plans=args.max_plans)
        if not verdict.verified:
            print(verdict.report())
            return 1
        plans = verdict.plan_vector()
        configuration = Configuration.of(*(
            Component.client(location, term)
            for location, term in network.clients.items()))
        simulator = Simulator(configuration, plans, network.repository,
                              seed=args.seed)
        simulator.run(max_steps=args.max_steps)
        if args.out:
            Path(args.out).write_text(tel.tracer.export_jsonl() + "\n",
                                      encoding="utf-8")
            print(f"wrote {len(tel.tracer)} span(s) to {args.out}")
        print(tel.tracer.render_tree())
        print()
        print(tel.metrics.render_table())
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    network = load_network(args.network)
    if args.name in network.policies:
        print(network.policies[args.name].automaton.to_dot())
        return 0
    from repro.contracts.contract import Contract
    term = network.term(args.name)
    print(Contract(term).lts.to_dot(name=args.name))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for the tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Secure and Unfailing Services — verification toolkit")
    parser.add_argument("--stats", action="store_true",
                        help="enable telemetry and print the metrics "
                             "table after the command")
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="parse and validate a network")
    check.add_argument("network")
    check.set_defaults(func=_cmd_check)

    verify = sub.add_parser("verify", help="synthesise valid plans")
    verify.add_argument("network")
    verify.add_argument("--max-plans", type=int, default=None)
    verify.set_defaults(func=_cmd_verify)

    compliance = sub.add_parser("compliance",
                                help="check one client/service pair")
    compliance.add_argument("network")
    compliance.add_argument("client")
    compliance.add_argument("server")
    compliance.set_defaults(func=_cmd_compliance)

    simulate = sub.add_parser("simulate",
                              help="verify, then run one computation")
    simulate.add_argument("network")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--max-steps", type=int, default=10_000)
    simulate.add_argument("--max-plans", type=int, default=None)
    simulate.add_argument("--unmonitored", action="store_true")
    simulate.add_argument("--trace", action="store_true",
                          help="print the Figure-3-style step trace")
    simulate.set_defaults(func=_cmd_simulate)

    explain = sub.add_parser(
        "explain", help="narrate why each candidate plan is (in)valid")
    explain.add_argument("network")
    explain.add_argument("client")
    explain.set_defaults(func=_cmd_explain)

    dot = sub.add_parser("dot", help="Graphviz output for a policy or "
                                     "contract")
    dot.add_argument("network")
    dot.add_argument("name")
    dot.set_defaults(func=_cmd_dot)

    trace = sub.add_parser(
        "trace", help="verify + simulate with telemetry on; print the "
                      "span tree (and write it as JSONL with --out)")
    trace.add_argument("network")
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--max-steps", type=int, default=10_000)
    trace.add_argument("--max-plans", type=int, default=None)
    trace.add_argument("--out", default=None,
                       help="write the spans as JSONL to this file")
    trace.set_defaults(func=_cmd_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.stats:
            with _telemetry.telemetry_session() as tel:
                status = args.func(args)
                print()
                print("-- metrics --")
                print(tel.metrics.render_table())
                caches = _telemetry.metrics_snapshot()["caches"]
                for name, stats in sorted(caches.items()):
                    print(f"cache {name}: {stats['hits']} hit(s), "
                          f"{stats['misses']} miss(es), "
                          f"{stats['currsize']} entries")
            return status
        return args.func(args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

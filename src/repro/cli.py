"""Command-line driver.

Networks are described in TOML::

    [policies.phi]
    schema = "hotel"                      # a schema from the registry
    args = { bl = [1], p = 45, t = 100 }

    [services.lbr]
    term = "?Req . open r3 { !IdC . (?Bok + ?UnA) } ; (!CoBo . ?Pay ++ !NoAv)"

    [clients.lc1]
    term = "open r1 with phi { !Req . (?CoBo . !Pay + ?NoAv) }"

Networks can equivalently be written in the surface-language module
format (``.sus`` files; see :mod:`repro.lang.module`).

Commands::

    repro check NETWORK.{toml,sus}        # parse + well-formedness + lint
    repro lint NETWORK.sus [...]          # static diagnostics (SUS0xx)
    repro analyze NETWORK.{toml,sus}      # whole-network static certifier
    repro canon NETWORK.{toml,sus}        # quotients, fingerprints, dups
    repro registry NETWORK.{toml,sus} [--query-compliant NAME]
                                          # signature-indexed discovery
    repro verify NETWORK.toml             # plan synthesis (Section 5)
    repro compliance NETWORK.toml A B     # is A's first request ⊢ B?
    repro simulate NETWORK.toml [--seed N] [--unmonitored] [--trace]
    repro chaos NETWORK.toml [--seed N] [--trials N] [--faults KINDS]
    repro report NETWORK.toml [--seed N] [--format json] [--wall]
    repro explain NETWORK.toml CLIENT     # narrate each candidate plan
    repro dot NETWORK.toml NAME           # policy automaton / contract dot
    repro trace NETWORK.toml [--out F]    # verify + simulate, emit spans

``repro --stats <command> …`` enables telemetry for the run and prints
the metrics table (counters, timers, cache hit rates) afterwards; the
``REPRO_TELEMETRY`` environment variable does the same for every run.

Exit status (uniform across commands):

* ``0`` — success: parsed/verified/compliant, or lint found nothing at
  the failing threshold;
* ``1`` — a negative verdict: verification or compliance failed, or
  lint reported errors (warnings too under ``lint --strict``);
* ``2`` — usage or input errors (unreadable file, parse error, unknown
  name); the message goes to stderr as ``error: file:line:col: ...``.
"""

from __future__ import annotations

import argparse
import sys
import tomllib
from pathlib import Path

from repro.core.compliance import check_compliance
from repro.core.errors import ParseError, ReproError
from repro.observability import runtime as _telemetry
from repro.core.syntax import HistoryExpression
from repro.core.wellformed import check_well_formed
from repro.analysis.requests import extract_requests
from repro.analysis.verification import verify_network
from repro.lang.module import Module
from repro.lang.parser import parse
from repro.network.config import Component, Configuration
from repro.network.repository import Repository
from repro.network.simulator import Simulator
from repro.policies import library
from repro.policies.usage_automata import Policy

#: Registry of policy schemas available to TOML files: name → callable
#: returning a parametric automaton (instantiated with the TOML args).
SCHEMAS = {
    "hotel": lambda: library.hotel_policy_automaton(),
    "never_after": library.never_after_automaton,
    "forbid": library.forbid_automaton,
    "blacklist": library.blacklist_automaton,
    "at_most": library.at_most_automaton,
    "require_before": library.require_before_automaton,
    "chinese_wall": library.chinese_wall_automaton,
}


class NetworkFile:
    """A parsed network description."""

    def __init__(self, policies: dict[str, Policy],
                 services: dict[str, HistoryExpression],
                 clients: dict[str, HistoryExpression]) -> None:
        self.policies = policies
        self.services = services
        self.clients = clients

    @property
    def repository(self) -> Repository:
        return Repository(self.services)

    def term(self, name: str) -> HistoryExpression:
        """Look up a client or service by location name."""
        if name in self.clients:
            return self.clients[name]
        if name in self.services:
            return self.services[name]
        raise ReproError(f"no client or service named {name!r}")


def load_module(path: str | Path) -> Module:
    """Parse a network description into a :class:`Module`.

    ``.toml`` files are read through the schema registry and wrapped in
    a span-less module; everything else (conventionally ``.sus``) goes
    through the surface-language parser, which records source spans for
    every declaration.  Parse errors carry the file path so the CLI can
    report ``error: file:line:col: message``.
    """
    tel = _telemetry.active()
    if tel is None:
        return _load_module(path)
    with tel.tracer.span("parse.load_module",
                         module=Path(path).name) as span:
        module = _load_module(path)
        span.set(clients=len(module.clients),
                 services=len(module.services),
                 policies=len(module.policies))
        tel.emit("parse.module", module=Path(path).name,
                 clients=len(module.clients),
                 services=len(module.services))
        return module


def _load_module(path: str | Path) -> Module:
    if Path(path).suffix != ".toml":
        from repro.lang.module import parse_module
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        try:
            return parse_module(source, path=str(path))
        except ParseError as error:
            error.path = str(path)
            raise
    network = _load_toml(Path(path))
    return Module(policies=network.policies, clients=network.clients,
                  services=network.services, path=str(path))


def load_network(path: str | Path) -> NetworkFile:
    """Parse a network description: TOML, or the surface-language module
    format (any non-``.toml`` extension, conventionally ``.sus``)."""
    if Path(path).suffix != ".toml":
        module = load_module(path)
        return NetworkFile(module.policies, module.services,
                           module.clients)
    return _load_toml(Path(path))


def _load_toml(path: Path) -> NetworkFile:
    with open(path, "rb") as handle:
        try:
            data = tomllib.load(handle)
        except tomllib.TOMLDecodeError as error:
            raise ReproError(f"{path}: invalid TOML: {error}") from error

    policies: dict[str, Policy] = {}
    for name, spec in data.get("policies", {}).items():
        schema_name = spec.get("schema")
        if schema_name not in SCHEMAS:
            raise ReproError(
                f"policy {name!r}: unknown schema {schema_name!r} "
                f"(known: {', '.join(sorted(SCHEMAS))})")
        factory = SCHEMAS[schema_name]
        ctor_args = spec.get("schema_args", [])
        automaton = factory(*ctor_args)
        instantiation = spec.get("args", {})
        policies[name] = automaton.instantiate(**instantiation)

    def parse_section(section: str) -> dict[str, HistoryExpression]:
        terms: dict[str, HistoryExpression] = {}
        for name, spec in data.get(section, {}).items():
            terms[name] = parse(spec["term"], policies=policies)
        return terms

    return NetworkFile(policies, parse_section("services"),
                       parse_section("clients"))


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.lint import Severity, lint_module
    module = load_module(args.network)
    for name, term in {**module.clients, **module.services}.items():
        check_well_formed(term)
        print(f"{name}: well formed")
    diagnostics = lint_module(module, min_severity=Severity.ERROR,
                              engine=args.engine)
    for diagnostic in diagnostics:
        print(diagnostic.format(module.path or str(args.network)),
              file=sys.stderr)
    if diagnostics:
        print(f"{len(diagnostics)} error(s) — run `repro lint "
              f"{args.network}` for the full diagnosis", file=sys.stderr)
        return 1
    return 0


def _parse_rule_codes(spec: str | None) -> list[str] | None:
    if spec is None:
        return None
    codes = [code.strip().upper() for code in spec.split(",")]
    return [code for code in codes if code]


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import (Severity, default_registry, lint_module,
                            render_json, worst_severity)
    registry = default_registry()
    if args.list_rules:
        for rule in registry.rules():
            print(f"{rule.code}  {rule.name:<24} {rule.severity.label:<8} "
                  f"{rule.description}")
        return 0
    if not args.networks:
        raise ReproError("lint needs at least one module "
                         "(or --list-rules)")
    select = _parse_rule_codes(args.select)
    ignore = _parse_rule_codes(args.ignore)
    results: dict[str, list] = {}
    for path in args.networks:
        module = load_module(path)
        results[str(path)] = lint_module(module, registry,
                                         select=select, ignore=ignore)
    everything = [d for diags in results.values() for d in diags]
    if args.format == "json":
        print(render_json(results, registry))
    else:
        counts = {Severity.ERROR: 0, Severity.WARNING: 0, Severity.INFO: 0}
        for path, diagnostics in results.items():
            for diagnostic in diagnostics:
                print(diagnostic.format(path))
                counts[diagnostic.severity] += 1
        summary = ", ".join(
            f"{count} {severity.label}(s)"
            for severity, count in counts.items() if count) or "clean"
        print(f"{len(results)} module(s) linted: {summary}")
    threshold = Severity.WARNING if args.strict else Severity.ERROR
    worst = worst_severity(everything)
    return 1 if worst is not None and worst >= threshold else 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    """Whole-network abstract interpretation (repro.staticcheck)."""
    import json as _json

    from repro.staticcheck import analyze_module
    module = load_module(args.network)
    # The certifiers distinguish interpreted/compiled only; the other
    # compliance engine names all mean the interpreted front-end here.
    certifier_engine = ("compiled" if args.engine == "compiled"
                        else "interpreted")
    analysis = analyze_module(module, max_plans=args.max_plans,
                              engine=certifier_engine)
    if args.format == "json":
        print(_json.dumps(analysis.to_json(), indent=2, sort_keys=True))
    else:
        print(analysis.render_text())
    return 0 if analysis.ok else 1


def _client_body(term: HistoryExpression) -> HistoryExpression:
    """The contract a client declaration exposes: its first request body
    (matching ``repro compliance``), or the term itself when there is no
    request wrapper.  Service terms are canonicalised whole — projection
    handles any nested requests/framings."""
    requests = extract_requests(term)
    return requests[0].body if requests else term


def _cmd_canon(args: argparse.Namespace) -> int:
    """Canonical analysis of every declared contract: quotient size,
    fingerprint, signature, and duplicate (bisimilar) groups."""
    import json as _json

    from repro.canon import canonicalize
    module = load_module(args.network)
    contracts = []
    by_key: dict[tuple, list[str]] = {}
    for kind, table in (("client", module.clients),
                        ("service", module.services)):
        for name, term in table.items():
            body = _client_body(term) if kind == "client" else term
            form = canonicalize(body)
            contracts.append((name, kind, form))
            by_key.setdefault(form.key, []).append(name)
    contracts.sort(key=lambda row: row[0])
    duplicates = tuple(tuple(sorted(group))
                       for group in sorted(by_key.values())
                       if len(group) >= 2)
    if args.format == "json":
        print(_json.dumps({
            "schema": "repro-canon.v1",
            "module": Path(args.network).name,
            "contracts": [
                dict(name=name, kind=kind, **form.to_json())
                for name, kind, form in contracts],
            "duplicates": [list(group) for group in duplicates],
        }, indent=2, sort_keys=True))
        return 0
    for name, kind, form in contracts:
        shape = ("minimal" if form.n_blocks == form.n_source_states
                 else f"reducible {form.n_source_states}→{form.n_blocks}")
        print(f"{name} ({kind}): {form.n_blocks} block(s), {shape}, "
              f"{form.signature.mode} mode, "
              f"fingerprint {form.fingerprint[:16]}")
    if duplicates:
        for group in duplicates:
            print(f"duplicate contracts (bisimilar): {', '.join(group)}")
    else:
        print("no duplicate contracts")
    return 0


def _cmd_registry(args: argparse.Namespace) -> int:
    """Index the module's services in a signature-bucketed registry and
    (optionally) answer discovery queries with pruning statistics.

    Exits 1 when any requested query matches nothing; 0 otherwise.
    """
    import json as _json

    from repro.registry import ContractRegistry
    network = load_network(args.network)
    registry = ContractRegistry()
    for name, term in network.services.items():
        registry.add(name, term)

    def query_term(name: str) -> HistoryExpression:
        term = network.term(name)
        return _client_body(term) if name in network.clients else term

    queries = []
    if args.query_compliant:
        queries.append((args.query_compliant,
                        registry.find_compliant(
                            query_term(args.query_compliant))))
    if args.query_substitutable:
        queries.append((args.query_substitutable,
                        registry.find_substitutable(
                            query_term(args.query_substitutable))))

    if args.format == "json":
        print(_json.dumps({
            "schema": "repro-registry.v1",
            "module": Path(args.network).name,
            "registry": registry.stats(),
            "entries": [
                {"name": entry.name,
                 "fingerprint": entry.fingerprint,
                 "blocks": entry.canonical.n_blocks,
                 "mode": entry.signature.mode}
                for entry in registry.entries()],
            "queries": [dict(name=name, **result.to_json())
                        for name, result in queries],
        }, indent=2, sort_keys=True))
    else:
        stats = registry.stats()
        print(f"{stats['entries']} service(s) in {stats['buckets']} "
              f"signature bucket(s), {stats['canonical_classes']} "
              f"canonical class(es)")
        for group in registry.duplicate_groups():
            print(f"  duplicates: {', '.join(group)}")
        for name, result in queries:
            matched = ", ".join(result.matches) or "none"
            print(f"{result.kind} with {name}: {matched} "
                  f"({result.candidates}/{result.total} candidate(s) "
                  f"after pruning, {result.product_checks} check(s))")
    return 1 if any(not result.matches for _, result in queries) else 0


def _cmd_verify(args: argparse.Namespace) -> int:
    network = load_network(args.network)
    verdict = verify_network(network.clients, network.repository,
                             max_plans=args.max_plans)
    print(verdict.report())
    return 0 if verdict.verified else 1


def _cmd_compliance(args: argparse.Namespace) -> int:
    network = load_network(args.network)
    client = network.term(args.client)
    server = network.term(args.server)
    requests = extract_requests(client)
    body = requests[0].body if requests else client
    result = check_compliance(body, server, engine=args.engine)
    if result.compliant:
        print(f"{args.client} ⊢ {args.server}: compliant")
        return 0
    print(f"{args.client} ⊬ {args.server}: NOT compliant")
    if result.trace:
        print(f"  stuck after {len(result.trace) - 1} synchronisations")
    return 1


def _cmd_simulate(args: argparse.Namespace) -> int:
    network = load_network(args.network)
    verdict = verify_network(network.clients, network.repository,
                             max_plans=args.max_plans)
    if not verdict.verified:
        print(verdict.report())
        return 1
    plans = verdict.plan_vector()
    configuration = Configuration.of(*(
        Component.client(location, term)
        for location, term in network.clients.items()))
    simulator = Simulator(configuration, plans, network.repository,
                          monitored=not args.unmonitored, seed=args.seed)
    simulator.run(max_steps=args.max_steps)
    if args.trace:
        from repro.network.trace_render import render_run
        print(render_run(simulator))
    for index, (location, _) in enumerate(network.clients.items()):
        history = simulator.configuration[index].history
        print(f"{location}: {history}")
    print(f"ran {len(simulator.log)} steps under ~π = {plans}; "
          f"terminated: {simulator.is_terminated()}")
    return 0


def _parse_fault_kinds(spec: str) -> tuple[str, ...]:
    from repro.resilience import FAULT_KINDS
    kinds = tuple(kind.strip() for kind in spec.split(",")
                  if kind.strip())
    unknown = [kind for kind in kinds if kind not in FAULT_KINDS]
    if unknown:
        raise ReproError(f"unknown fault kind(s): {', '.join(unknown)} "
                         f"(known: {', '.join(FAULT_KINDS)})")
    return kinds


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Verify, then run seeded fault-injection trials with recovery."""
    from repro.resilience import run_chaos
    network = load_network(args.network)
    kinds = _parse_fault_kinds(args.faults)
    verdict = verify_network(network.clients, network.repository)
    if not verdict.verified:
        print(verdict.report())
        return 1
    from repro.resilience import RollbackPolicy
    rollback = RollbackPolicy(enabled=not args.no_rollback,
                              max_rollbacks=args.max_rollbacks)
    report = run_chaos(network.clients, network.repository,
                       trials=args.trials, seed=args.seed, kinds=kinds,
                       max_faults=args.max_faults,
                       max_steps=args.max_steps,
                       recover=not args.no_recover,
                       rollback=rollback,
                       module=str(args.network))
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text())
    return 0 if report.invariant_holds else 1


def _cmd_report(args: argparse.Namespace) -> int:
    """Run a seeded chaos campaign under a fresh telemetry scope and
    print the merged observability report: per-layer attribution, causal
    chains, flight-recorder counters, metrics.

    The JSON rendering is deterministic for a fixed (module, seed,
    trials, faults) tuple unless ``--wall`` adds wall-clock timings.
    """
    from repro.observability.report import build_report
    from repro.resilience import run_chaos
    kinds = _parse_fault_kinds(args.faults)
    with _telemetry.telemetry_session() as tel:
        network = load_network(args.network)
        from repro.resilience import RollbackPolicy
        rollback = RollbackPolicy(enabled=not args.no_rollback,
                                  max_rollbacks=args.max_rollbacks)
        chaos = run_chaos(network.clients, network.repository,
                          trials=args.trials, seed=args.seed,
                          kinds=kinds, max_faults=args.max_faults,
                          max_steps=args.max_steps,
                          rollback=rollback,
                          module=Path(args.network).name)
        merged = build_report(tel, module=Path(args.network).name,
                              chaos=chaos.to_dict(), wall=args.wall)
    output = (merged.to_json() if args.format == "json"
              else merged.render_text())
    if args.out:
        Path(args.out).write_text(output + "\n", encoding="utf-8")
        print(f"wrote report to {args.out}")
    else:
        print(output)
    return 0 if chaos.invariant_holds else 1


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.analysis.diagnostics import explain_plan
    from repro.analysis.planner import analyze_plan, enumerate_plans
    network = load_network(args.network)
    if args.client not in network.clients:
        raise ReproError(f"no client named {args.client!r}")
    client = network.clients[args.client]
    repository = network.repository
    any_valid = False
    for plan in enumerate_plans(client, repository):
        analysis = analyze_plan(client, plan, repository,
                                location=args.client)
        any_valid = any_valid or analysis.valid
        print(explain_plan(analysis))
        print()
    return 0 if any_valid else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    """Verify, simulate, and emit the span tree of the whole run."""
    network = load_network(args.network)
    with _telemetry.telemetry_session() as tel:
        verdict = verify_network(network.clients, network.repository,
                                 max_plans=args.max_plans)
        if not verdict.verified:
            print(verdict.report())
            return 1
        plans = verdict.plan_vector()
        configuration = Configuration.of(*(
            Component.client(location, term)
            for location, term in network.clients.items()))
        simulator = Simulator(configuration, plans, network.repository,
                              seed=args.seed)
        simulator.run(max_steps=args.max_steps)
        if args.out:
            Path(args.out).write_text(tel.tracer.export_jsonl() + "\n",
                                      encoding="utf-8")
            print(f"wrote {len(tel.tracer)} span(s) to {args.out}")
        print(tel.tracer.render_tree())
        print()
        print(tel.metrics.render_table())
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    network = load_network(args.network)
    if args.name in network.policies:
        print(network.policies[args.name].automaton.to_dot())
        return 0
    from repro.contracts.contract import Contract
    term = network.term(args.name)
    print(Contract(term).lts.to_dot(name=args.name))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for the tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Secure and Unfailing Services — verification toolkit")
    parser.add_argument("--stats", action="store_true",
                        help="enable telemetry and print the metrics "
                             "table after the command")
    sub = parser.add_subparsers(dest="command", required=True)

    engine_choices = ("onthefly", "eager", "gfp", "compiled", "reversible")
    engine_help = ("compliance engine backing the verdicts (default: "
                   "%(default)s; 'compiled' runs the interned "
                   "integer-table core; 'reversible' decides the weaker "
                   "checkpoint/rollback relation)")

    check = sub.add_parser("check", help="parse and validate a network "
                                         "(error-severity lint included)")
    check.add_argument("network")
    check.add_argument("--engine", choices=engine_choices,
                       default="onthefly", help=engine_help)
    check.set_defaults(func=_cmd_check)

    lint = sub.add_parser(
        "lint", help="run the SUS0xx static diagnostics over modules")
    lint.add_argument("networks", nargs="*", metavar="NETWORK",
                      help="module files to lint (.sus or .toml)")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      help="output format: human text (default) or "
                           "SARIF-style JSON")
    lint.add_argument("--strict", action="store_true",
                      help="exit 1 on warnings, not just errors")
    lint.add_argument("--select", default=None, metavar="CODES",
                      help="comma-separated rule codes to run exclusively "
                           "(e.g. SUS011,SUS030)")
    lint.add_argument("--ignore", default=None, metavar="CODES",
                      help="comma-separated rule codes to skip")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule table and exit")
    lint.set_defaults(func=_cmd_lint)

    analyze = sub.add_parser(
        "analyze", help="statically certify validity, compliance and "
                        "plans, with counterexample witnesses")
    analyze.add_argument("network")
    analyze.add_argument("--format", choices=("text", "json"),
                         default="text",
                         help="output format: human text (default) or "
                              "deterministic JSON (repro-analyze.v1)")
    analyze.add_argument("--max-plans", type=int, default=None,
                         help="bound on the candidate plans per client")
    analyze.add_argument("--engine", choices=engine_choices,
                         default="onthefly", help=engine_help)
    analyze.set_defaults(func=_cmd_analyze)

    canon = sub.add_parser(
        "canon", help="canonical contract analysis: bisimulation "
                      "quotients, fingerprints, duplicate detection")
    canon.add_argument("network")
    canon.add_argument("--format", choices=("text", "json"),
                       default="text",
                       help="output format: human text (default) or "
                            "deterministic JSON (repro-canon.v1)")
    canon.set_defaults(func=_cmd_canon)

    registry = sub.add_parser(
        "registry", help="signature-indexed service registry: index the "
                         "module's services and answer discovery queries")
    registry.add_argument("network")
    registry.add_argument("--query-compliant", default=None, metavar="NAME",
                          help="find every registered service this "
                               "client/contract is compliant with")
    registry.add_argument("--query-substitutable", default=None,
                          metavar="NAME",
                          help="find every registered service refining "
                               "this advertised contract")
    registry.add_argument("--format", choices=("text", "json"),
                          default="text",
                          help="output format: human text (default) or "
                               "deterministic JSON (repro-registry.v1)")
    registry.set_defaults(func=_cmd_registry)

    verify = sub.add_parser("verify", help="synthesise valid plans")
    verify.add_argument("network")
    verify.add_argument("--max-plans", type=int, default=None)
    verify.set_defaults(func=_cmd_verify)

    compliance = sub.add_parser("compliance",
                                help="check one client/service pair")
    compliance.add_argument("network")
    compliance.add_argument("client")
    compliance.add_argument("server")
    compliance.add_argument("--engine", choices=engine_choices,
                            default="onthefly", help=engine_help)
    compliance.set_defaults(func=_cmd_compliance)

    simulate = sub.add_parser("simulate",
                              help="verify, then run one computation")
    simulate.add_argument("network")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--max-steps", type=int, default=10_000)
    simulate.add_argument("--max-plans", type=int, default=None)
    simulate.add_argument("--unmonitored", action="store_true")
    simulate.add_argument("--trace", action="store_true",
                          help="print the Figure-3-style step trace")
    simulate.set_defaults(func=_cmd_simulate)

    chaos = sub.add_parser(
        "chaos", help="verify, then run seeded fault-injection trials "
                      "and check the resilience invariant")
    chaos.add_argument("network")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--trials", type=int, default=20)
    chaos.add_argument("--faults", default="crash,drop,stall",
                       metavar="KINDS",
                       help="comma-separated fault kinds to inject "
                            "(crash, drop, stall, byzantine)")
    chaos.add_argument("--max-faults", type=int, default=3,
                       help="maximum faults sampled per trial")
    chaos.add_argument("--max-steps", type=int, default=400,
                       help="per-trial step budget")
    chaos.add_argument("--no-rollback", action="store_true",
                       help="disable rollback-first recovery (pure "
                            "compensate/replan, the pre-reversible ladder)")
    chaos.add_argument("--max-rollbacks", type=int, default=8,
                       help="rollback attempts per recovery episode "
                            "(default: 8)")
    chaos.add_argument("--no-recover", action="store_true",
                       help="disable retry/failover (diagnosis only)")
    chaos.add_argument("--format", choices=("text", "json"),
                       default="text")
    chaos.set_defaults(func=_cmd_chaos)

    report = sub.add_parser(
        "report", help="run a seeded chaos campaign under telemetry and "
                       "print one merged observability report "
                       "(layers, causal chains, flight recorder)")
    report.add_argument("network")
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--trials", type=int, default=20)
    report.add_argument("--faults", default="crash,drop,stall",
                        metavar="KINDS",
                        help="comma-separated fault kinds to inject")
    report.add_argument("--max-faults", type=int, default=3)
    report.add_argument("--max-steps", type=int, default=400)
    report.add_argument("--no-rollback", action="store_true",
                        help="disable rollback-first recovery")
    report.add_argument("--max-rollbacks", type=int, default=8)
    report.add_argument("--format", choices=("text", "json"),
                        default="text")
    report.add_argument("--wall", action="store_true",
                        help="include wall-clock timings (makes the "
                             "report non-reproducible)")
    report.add_argument("--out", default=None,
                        help="write the report to this file instead of "
                             "stdout")
    report.set_defaults(func=_cmd_report)

    explain = sub.add_parser(
        "explain", help="narrate why each candidate plan is (in)valid")
    explain.add_argument("network")
    explain.add_argument("client")
    explain.set_defaults(func=_cmd_explain)

    dot = sub.add_parser("dot", help="Graphviz output for a policy or "
                                     "contract")
    dot.add_argument("network")
    dot.add_argument("name")
    dot.set_defaults(func=_cmd_dot)

    trace = sub.add_parser(
        "trace", help="verify + simulate with telemetry on; print the "
                      "span tree (and write it as JSONL with --out)")
    trace.add_argument("network")
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--max-steps", type=int, default=10_000)
    trace.add_argument("--max-plans", type=int, default=None)
    trace.add_argument("--out", default=None,
                       help="write the spans as JSONL to this file")
    trace.set_defaults(func=_cmd_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.stats:
            with _telemetry.telemetry_session() as tel:
                status = args.func(args)
                print()
                print("-- metrics --")
                print(tel.metrics.render_table())
                caches = _telemetry.metrics_snapshot()["caches"]
                for name, stats in sorted(caches.items()):
                    print(f"cache {name}: {stats['hits']} hit(s), "
                          f"{stats['misses']} miss(es), "
                          f"{stats['currsize']} entries")
                from repro.compiled.tables import label_table_stats
                tables = label_table_stats()
                print(f"compiled tables: {tables['labels']} label(s), "
                      f"{tables['channels']} channel(s), "
                      f"{tables['compiled_contracts']} compiled "
                      f"contract(s)")
                for kind, count in tel.events.counters().items():
                    print(f"event {kind}: {count}")
            return status
        return args.func(args)
    except (ReproError, OSError) as error:
        # Uniform failure channel: diagnostics go to stderr, stdout
        # stays machine-consumable (e.g. `lint --format json`).
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

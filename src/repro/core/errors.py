"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class WellFormednessError(ReproError):
    """A history expression violates a structural restriction.

    The calculus restricts recursion to be *tail* recursion *guarded* by a
    communication action, requires terms to be closed before they are
    executed, and requires request identifiers to be unique within a term.
    """


class OpenTermError(WellFormednessError):
    """A free recursion variable was encountered where a closed term is
    required (e.g. when stepping the operational semantics)."""

    def __init__(self, variable: str) -> None:
        super().__init__(f"free recursion variable {variable!r} in a context "
                         "that requires a closed history expression")
        self.variable = variable


class StateSpaceLimitError(ReproError):
    """Exploration of a transition system exceeded the configured bound.

    Guarded tail recursion guarantees finiteness of the transition systems
    the paper relies on; hitting this bound therefore indicates either a
    non-well-formed input or a bound chosen too small for a large (but
    finite) system.
    """

    def __init__(self, limit: int, what: str = "transition system") -> None:
        super().__init__(
            f"exploration of the {what} exceeded {limit} states; the term is "
            "either not well formed (unguarded or non-tail recursion) or the "
            "bound must be raised")
        self.limit = limit


class SecurityViolationError(ReproError):
    """An access event violated an active policy in a monitored execution.

    ``policy_name`` and ``offending_label`` are the machine-readable
    cause — the name of the (first) violated policy and the label whose
    extension broke validity — so chaos reports and supervisors can
    aggregate abort causes without parsing the message.
    """

    def __init__(self, policy: object, history: object, event: object,
                 policy_name: str | None = None,
                 offending_label: str | None = None) -> None:
        super().__init__(
            f"event {event} violates active policy {policy} after history "
            f"{history}")
        self.policy = policy
        self.history = history
        self.event = event
        self.policy_name = policy_name
        self.offending_label = (offending_label if offending_label is not None
                                else str(event))


class StuckSessionError(ReproError):
    """A session reached a configuration in which the participants are not
    compliant: an offered output has no matching input (or both participants
    wait on inputs forever)."""


class PlanError(ReproError):
    """A plan is malformed: it binds an unknown request, points to a location
    missing from the repository, or rebinds an already-bound request."""


class ParseError(ReproError):
    """A surface-syntax term could not be parsed.

    Carries the 1-based source position of the offending token, and
    optionally the path of the file being parsed (attached by whoever
    read the file — the parser itself never knows it).
    """

    def __init__(self, message: str, line: int, column: int,
                 path: str | None = None) -> None:
        super().__init__(f"{line}:{column}: {message}")
        self.message = message
        self.line = line
        self.column = column
        self.path = path

    def __str__(self) -> str:
        prefix = f"{self.path}:" if self.path else ""
        return f"{prefix}{self.line}:{self.column}: {self.message}"


class PolicyDefinitionError(ReproError):
    """A usage automaton definition is inconsistent (unknown state names,
    guards referencing unbound variables, and similar mistakes)."""

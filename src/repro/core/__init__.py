"""The calculus core: history expressions, semantics, compliance, validity.

This package implements Definition 1 (syntax), the stand-alone
operational semantics, the projection on communication actions, ready
sets (Definition 3), compliance (Definition 4 / Theorem 1), history
validity, and plans (Definition 2).
"""

from repro.core import actions, syntax
from repro.core.compliance import (ComplianceResult, check_compliance,
                                   compliant, compliant_coinductive)
from repro.core.plans import Plan, PlanVector
from repro.core.projection import project
from repro.core.ready_sets import ready_sets
from repro.core.validity import (EMPTY_HISTORY, History, ValidityMonitor,
                                 first_invalid_prefix, is_valid)
from repro.core.wellformed import check_well_formed, is_well_formed

__all__ = [
    "actions", "syntax", "ComplianceResult", "check_compliance",
    "compliant", "compliant_coinductive", "Plan", "PlanVector", "project",
    "ready_sets", "EMPTY_HISTORY", "History", "ValidityMonitor",
    "first_invalid_prefix", "is_valid", "check_well_formed",
    "is_well_formed",
]

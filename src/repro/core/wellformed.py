"""Well-formedness of history expressions.

The calculus (Definition 1 and the surrounding prose) restricts history
expressions in three ways, all checked here:

* **closedness** — every recursion variable is bound by a ``μ``;
* **guarded tail recursion** — "infinite behaviour is denoted by ``μh.H``,
  restricted to be tail-recursive and guarded by communication actions
  ``ā`` or ``a``": every occurrence of the recursion variable must be in
  tail position (nothing sequentially follows it) and strictly under at
  least one choice prefix;
* **unique requests** — request identifiers ``r`` are unique within a
  term, so a plan binding is unambiguous.

:func:`check_well_formed` raises :class:`WellFormednessError` with a
precise description on the first violation; :func:`is_well_formed` is the
boolean convenience wrapper.
"""

from __future__ import annotations

from repro.core.errors import WellFormednessError
from repro.core.syntax import (ClosePending, Epsilon, EventNode,
                               ExternalChoice, FrameClosePending, Framing,
                               HistoryExpression, InternalChoice, Mu, Request,
                               Seq, Var, free_variables)


def check_well_formed(term: HistoryExpression,
                      require_closed: bool = True) -> None:
    """Validate *term*, raising :class:`WellFormednessError` on failure."""
    if require_closed:
        free = free_variables(term)
        if free:
            raise WellFormednessError(
                f"term has free recursion variables {sorted(free)}")
    _check_recursion(term, bound=frozenset())
    _check_unique_requests(term)


def check_guarded_tail_recursion(term: HistoryExpression) -> None:
    """Check only the guarded-tail-recursion restriction (openness and
    request uniqueness are the caller's concern — used by the λ effect
    system, which checks a recursion's latent effect in isolation)."""
    _check_recursion(term, bound=frozenset())


def is_well_formed(term: HistoryExpression,
                   require_closed: bool = True) -> bool:
    """Boolean form of :func:`check_well_formed`."""
    try:
        check_well_formed(term, require_closed)
    except WellFormednessError:
        return False
    return True


def _check_recursion(term: HistoryExpression, bound: frozenset[str]) -> None:
    """Check guardedness and tail position of every ``μ``-bound variable."""
    if isinstance(term, Mu):
        _check_body(term.body, term.var, guarded=False, tail=True)
        _check_recursion(term.body, bound | {term.var})
        return
    for child in term.children():
        _check_recursion(child, bound)


def _check_body(term: HistoryExpression, var: str, guarded: bool,
                tail: bool) -> None:
    """Walk the body of ``μvar.…`` tracking whether the current position is
    under a communication guard and in tail position."""
    if isinstance(term, Var):
        if term.name != var:
            return
        if not guarded:
            raise WellFormednessError(
                f"recursion variable {var!r} occurs unguarded (no "
                "communication prefix before it)")
        if not tail:
            raise WellFormednessError(
                f"recursion variable {var!r} occurs in non-tail position")
        return
    if isinstance(term, Mu):
        if term.var == var:
            return  # shadowed: inner occurrences belong to the inner μ
        _check_body(term.body, var, guarded, tail)
        return
    if isinstance(term, Seq):
        _check_body(term.first, var, guarded, tail=False)
        _check_body(term.second, var, guarded, tail)
        return
    if isinstance(term, (ExternalChoice, InternalChoice)):
        for _, continuation in term.branches:
            _check_body(continuation, var, guarded=True, tail=tail)
        return
    if isinstance(term, Request):
        # A request body runs before close_{r,φ}: not a tail position.
        _check_body(term.body, var, guarded, tail=False)
        return
    if isinstance(term, Framing):
        # A framing body runs before Mφ: not a tail position.
        _check_body(term.body, var, guarded, tail=False)
        return
    if isinstance(term, (Epsilon, EventNode, ClosePending,
                         FrameClosePending)):
        return
    raise TypeError(f"unknown history expression node {term!r}")


def _check_unique_requests(term: HistoryExpression) -> None:
    seen: set[str] = set()
    for node in term.walk():
        if isinstance(node, Request):
            if node.request in seen:
                raise WellFormednessError(
                    f"request identifier {node.request!r} is not unique")
            seen.add(node.request)

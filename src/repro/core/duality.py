"""Duality of contracts: the canonical compliant partner.

The *dual* of a contract swaps the rôles of the two participants: every
output ``ā.H`` becomes the input ``a.H^⊥`` and every internal choice an
external one (and vice versa).  Dualisation is the standard way to
derive, from a client protocol, the most permissive server shape that is
compliant with it, and it gives the library a supply of
compliant-by-construction pairs:

    ``H ⊢ H^⊥`` for every contract ``H`` (checked by the property-based
    tests and used to seed the Theorem-1 benchmark battery).

The operator is defined on *contracts* (projected expressions); apply
:func:`repro.core.projection.project` first for full history
expressions.
"""

from __future__ import annotations

from repro.core.actions import Receive, Send
from repro.core.syntax import (Epsilon, ExternalChoice, HistoryExpression,
                               InternalChoice, Mu, Seq, Var, seq)


def dual(term: HistoryExpression) -> HistoryExpression:
    """The dual contract ``term^⊥``.

    Raises :class:`TypeError` on nodes the projection would have erased
    (events, framings, requests) — dualise contracts, not raw history
    expressions.
    """
    if isinstance(term, (Epsilon, Var)):
        return term
    if isinstance(term, Seq):
        return seq(dual(term.first), dual(term.second))
    if isinstance(term, ExternalChoice):
        return InternalChoice(tuple(
            (Send(label.channel), dual(continuation))
            for label, continuation in term.branches))
    if isinstance(term, InternalChoice):
        return ExternalChoice(tuple(
            (Receive(label.channel), dual(continuation))
            for label, continuation in term.branches))
    if isinstance(term, Mu):
        return Mu(term.var, dual(term.body))
    raise TypeError(
        f"dual is defined on contracts only; {type(term).__name__} nodes "
        "must be projected away first (repro.core.projection.project)")

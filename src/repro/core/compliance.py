"""Service compliance (paper, Definition 4 and Theorem 1).

Two history expressions ``Hc`` and ``Hs`` are *compliant*, written
``Hc ⊢ Hs``, when — working on their projections ``H1 = Hc!`` and
``H2 = Hs!`` — the largest relation satisfying both properties below
relates them:

(1) whenever ``H1 ⇓ C`` and ``H2 ⇓ S``, either ``C = ∅`` (the client has
    successfully finished) or ``C ∩ S̄ ≠ ∅`` (some action offered by one
    side is matched by the other);
(2) compliance is preserved by synchronisation:
    ``H1 --a--> H1' ∧ H2 --co(a)--> H2'`` implies ``H1' ⊢ H2'``.

Note the asymmetry: the client may terminate and walk away, leaving the
server mid-protocol, but never the other way around.

Three independent deciders are provided:

* :func:`compliant_coinductive` implements the definition literally, via
  ready sets over the synchronised reachable pairs;
* :func:`compliant` / :func:`check_compliance` check language emptiness of
  the product of Definition 5 (Theorem 1) **on the fly**: because
  compliance is a safety property (Theorem 2), the BFS short-circuits at
  the first reachable stuck pair, never materialising the full product;
* ``check_compliance(..., engine="eager")`` goes through the explicit
  product automaton, as the paper's construction literally reads;
* ``check_compliance(..., engine="gfp")`` re-derives the relation as the
  largest fixpoint on the ready-set product
  (:func:`repro.staticcheck.compliance.certify_compliance`), producing a
  stuck-configuration witness with the refusing ready sets on failure;
* ``check_compliance(..., engine="compiled")`` runs the on-the-fly BFS
  over the interned integer tables of :mod:`repro.compiled` — same
  verdict, witness and explored count as ``"onthefly"``, typically an
  order of magnitude faster on large products;
* ``check_compliance(..., engine="reversible")`` decides the *reversible*
  relation of :mod:`repro.core.reversible` — compliance up to
  checkpoint/rollback of retractable choices: strictly weaker than the
  relations above (``Hc ⊢ Hs`` implies reversible compliance), failing
  only when no rollback strategy avoids a stuck pair; the witness is
  then the end of a demonic play certified by an adversary strategy.

The test suite checks that they all agree on randomly generated
contracts — a machine check of Theorems 1 and 2.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from functools import lru_cache

from repro.core.actions import co, is_input, is_output
from repro.core.ready_sets import unmatched_pairs
from repro.core.syntax import HistoryExpression
from repro.contracts.contract import Contract
from repro.contracts.product import (PairState, ProductAutomaton,
                                     build_product, search_product)
from repro.observability import runtime as _telemetry
from repro.observability.cache_stats import track_cache


@dataclass(frozen=True)
class ComplianceResult:
    """Outcome of a compliance check.

    ``compliant`` is the verdict; on failure ``witness`` is a reachable
    stuck pair ``⟨H1, H2⟩`` and ``trace`` the sequence of product states
    leading to it (both ``None`` on success).  ``explored_states`` counts
    the distinct product states the deciding engine materialised — for the
    on-the-fly engine on a non-compliant pair this stays within the BFS
    radius of the shortest counterexample.
    """

    compliant: bool
    witness: PairState | None = None
    trace: tuple[PairState, ...] | None = None
    explored_states: int | None = None

    def __bool__(self) -> bool:
        return self.compliant


def check_compliance(client: HistoryExpression | Contract,
                     server: HistoryExpression | Contract,
                     *, engine: str = "onthefly") -> ComplianceResult:
    """Decide ``client ⊢ server`` via product emptiness (Theorem 1),
    returning a shortest counterexample trace when the check fails.

    *engine* selects the exploration strategy: ``"onthefly"`` (default)
    runs the lazy BFS of :func:`~repro.contracts.product.search_product`
    and stops at the first stuck pair; ``"eager"`` materialises the full
    explicit automaton first; ``"gfp"`` re-derives the relation as a
    greatest fixpoint; ``"compiled"`` runs the on-the-fly BFS over the
    interned integer tables of :mod:`repro.compiled`.  All four return
    the same verdict and a shortest trace; the test suite cross-validates
    them.  ``"reversible"`` instead decides the strictly weaker
    checkpoint/rollback relation (see :mod:`repro.core.reversible`).
    """
    tel = _telemetry.active()
    if tel is None:
        return _check(client, server, engine)
    with tel.tracer.span("compliance.check", engine=engine) as span:
        result = _check(client, server, engine)
        span.set(compliant=result.compliant,
                 explored_states=result.explored_states)
        tel.metrics.counter(
            "compliance.checks", engine=engine,
            verdict="compliant" if result.compliant
            else "noncompliant").inc()
        tel.emit("compliance.verdict", engine=engine,
                 compliant=result.compliant,
                 explored=result.explored_states)
        return result


def _check(client: HistoryExpression | Contract,
           server: HistoryExpression | Contract,
           engine: str) -> ComplianceResult:
    client_c = _as_contract(client)
    server_c = _as_contract(server)
    if engine in ("onthefly", "compiled"):
        search = search_product(
            client_c, server_c,
            engine="compiled" if engine == "compiled" else "interpreted")
        if search.empty:
            return ComplianceResult(True, explored_states=search.explored)
        return ComplianceResult(False, witness=search.witness,
                                trace=search.trace,
                                explored_states=search.explored)
    if engine == "eager":
        product = build_product(client_c, server_c)
        explored = len(product.lts)
        if product.language_is_empty():
            return ComplianceResult(True, explored_states=explored)
        trace = product.counterexample()
        assert trace is not None
        return ComplianceResult(False, witness=trace[-1], trace=trace,
                                explored_states=explored)
    if engine == "gfp":
        # Imported lazily: repro.staticcheck layers on top of this module.
        from repro.staticcheck.compliance import certify_compliance
        certificate = certify_compliance(client_c, server_c)
        if certificate.compliant:
            return ComplianceResult(True,
                                    explored_states=certificate.pairs)
        assert certificate.witness is not None
        trace = certificate.witness.trace
        return ComplianceResult(False, witness=trace[-1], trace=trace,
                                explored_states=certificate.pairs)
    if engine == "reversible":
        # Imported lazily: the reversible layer builds on this module's
        # siblings.  The demonic play doubles as the trace: its last pair
        # is stuck beyond the reach of any rollback.
        from repro.core.reversible import check_reversible
        reversible = check_reversible(client_c, server_c)
        if reversible.compliant:
            return ComplianceResult(
                True, explored_states=reversible.explored_states)
        assert reversible.trace is not None
        return ComplianceResult(False, witness=reversible.trace[-1],
                                trace=reversible.trace,
                                explored_states=reversible.explored_states)
    raise ValueError(f"unknown compliance engine {engine!r} (expected "
                     "'onthefly', 'eager', 'gfp', 'compiled' or "
                     "'reversible')")


def compliant(client: HistoryExpression | Contract,
              server: HistoryExpression | Contract) -> bool:
    """Decide ``client ⊢ server`` via product-automaton emptiness."""
    return check_compliance(client, server).compliant


def build_product_of(client: HistoryExpression | Contract,
                     server: HistoryExpression | Contract
                     ) -> ProductAutomaton:
    """The product automaton ``client! ⊗ server!`` (Definition 5)."""
    return build_product(_as_contract(client), _as_contract(server))


def compliant_coinductive(client: HistoryExpression | Contract,
                          server: HistoryExpression | Contract) -> bool:
    """Decide ``client ⊢ server`` directly from Definition 4.

    The candidate relation is the set of pairs reachable from
    ``⟨client!, server!⟩`` by synchronisations; by construction it is
    closed under property (2), so compliance holds iff every pair in it
    satisfies property (1) on ready sets.
    """
    client_c = _as_contract(client)
    server_c = _as_contract(server)
    client_lts = client_c.lts
    server_lts = server_c.lts

    initial: PairState = (client_c.term, server_c.term)
    seen: set[PairState] = {initial}
    frontier = deque([initial])
    while frontier:
        h1, h2 = frontier.popleft()
        if not _ready_set_condition(h1, h2):
            return False
        for label in client_lts.labels_from(h1):
            if not (is_output(label) or is_input(label)):
                continue
            partner = co(label)
            for h1_next in client_lts.successors(h1, label):
                for h2_next in server_lts.successors(h2, partner):
                    pair = (h1_next, h2_next)
                    if pair not in seen:
                        seen.add(pair)
                        frontier.append(pair)
    return True


def _ready_set_condition(h1: HistoryExpression,
                         h2: HistoryExpression) -> bool:
    """Property (1) of Definition 4 on the pair ``⟨h1, h2⟩``."""
    return not unmatched_pairs(h1, h2)


@lru_cache(maxsize=4096)
def _cached_contract(term: HistoryExpression) -> Contract:
    return Contract(term)


track_cache("compliance.contract_intern", _cached_contract)


def _as_contract(value: HistoryExpression | Contract) -> Contract:
    if isinstance(value, Contract):
        return value
    # Terms are immutable and structurally hashed: every compliance check
    # over the same term reuses one Contract (and its built LTS).
    return _cached_contract(value)

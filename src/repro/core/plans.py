"""Plans: orchestrations binding service requests to locations (Def. 2).

A plan ``π ::= ∅ | r[ℓ] | π ∪ π'`` maps each request identifier to the
location of the service chosen to serve it.  Networks run under a *vector*
of plans ``~π = [π1, …, πn]``, one per parallel client.

A plan is *valid* (Sections 2 and 5) when it drives computations where
both the security constraints and client/service compliance hold — so
neither policy violations nor missing communications can occur at run
time.  Validity is decided by :mod:`repro.analysis.planner`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.core.errors import PlanError


@dataclass(frozen=True)
class Plan:
    """An immutable finite map from request identifiers to locations."""

    bindings: tuple[tuple[str, str], ...] = ()

    @staticmethod
    def empty() -> "Plan":
        """The empty plan ``∅``."""
        return Plan()

    @staticmethod
    def of(mapping: Mapping[str, str] | Iterable[tuple[str, str]]) -> "Plan":
        """Build a plan from a mapping or (request, location) pairs."""
        items = (mapping.items() if isinstance(mapping, Mapping)
                 else tuple(mapping))
        plan = Plan.empty()
        for req, loc in items:
            plan = plan.bind(req, loc)
        return plan

    @staticmethod
    def single(request: str, location: str) -> "Plan":
        """The one-binding plan ``r[ℓ]``."""
        return Plan(((str(request), str(location)),))

    def bind(self, request: str, location: str) -> "Plan":
        """``π ∪ r[ℓ]`` — extend with one binding.

        Re-binding a request to a *different* location raises
        :class:`PlanError`; re-binding to the same location is a no-op
        (union is idempotent).
        """
        request = str(request)
        location = str(location)
        current = self.lookup(request)
        if current is not None:
            if current != location:
                raise PlanError(
                    f"request {request!r} already bound to {current!r}, "
                    f"cannot rebind to {location!r}")
            return self
        ordered = tuple(sorted(self.bindings + ((request, location),)))
        return Plan(ordered)

    def union(self, other: "Plan") -> "Plan":
        """``π ∪ π'`` — raises :class:`PlanError` on conflicting
        bindings."""
        result = self
        for request, location in other.bindings:
            result = result.bind(request, location)
        return result

    def lookup(self, request: str) -> str | None:
        """The location bound to *request*, or ``None``."""
        for req, loc in self.bindings:
            if req == str(request):
                return loc
        return None

    def __getitem__(self, request: str) -> str:
        location = self.lookup(request)
        if location is None:
            raise PlanError(f"plan binds no location for request "
                            f"{request!r}")
        return location

    def __contains__(self, request: str) -> bool:
        return self.lookup(request) is not None

    def requests(self) -> frozenset[str]:
        """The bound request identifiers."""
        return frozenset(req for req, _ in self.bindings)

    def locations(self) -> frozenset[str]:
        """The locations this plan routes to."""
        return frozenset(loc for _, loc in self.bindings)

    def items(self) -> Iterator[tuple[str, str]]:
        """Iterate over (request, location) bindings."""
        return iter(self.bindings)

    def __len__(self) -> int:
        return len(self.bindings)

    def __str__(self) -> str:
        if not self.bindings:
            return "∅"
        return " ∪ ".join(f"{req}[{loc}]" for req, loc in self.bindings)


@dataclass(frozen=True)
class PlanVector:
    """The vector ``~π`` of per-client plans driving a network."""

    plans: tuple[Plan, ...]

    @staticmethod
    def of(*plans: Plan) -> "PlanVector":
        """Build a vector from the given plans, in client order."""
        return PlanVector(tuple(plans))

    def __getitem__(self, index: int) -> Plan:
        return self.plans[index]

    def __len__(self) -> int:
        return len(self.plans)

    def __iter__(self) -> Iterator[Plan]:
        return iter(self.plans)

    def __str__(self) -> str:
        return "[" + ", ".join(str(plan) for plan in self.plans) + "]"

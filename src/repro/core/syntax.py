"""Abstract syntax of history expressions (paper, Definition 1).

The grammar is::

    H ::= ε | h | μh.H | (Σ_{i∈I} a_i.H_i) | (⊕_{i∈I} ā_i.H_i) | α
        | H·H | open_{r,φ} H close_{r,φ} | φ[H]

Nodes are immutable (frozen dataclasses), compared structurally and
hashable, so history expressions can be used directly as states of the
transition systems built in :mod:`repro.core.semantics`.

Two *run-time* leaves complement the surface grammar:

* :class:`ClosePending` — the residual ``close_{r,φ}`` left behind once a
  session has been opened (rule S-Open rewrites
  ``open_{r,φ}·H·close_{r,φ}`` to ``H·close_{r,φ}``);
* :class:`FrameClosePending` — the residual ``Mφ`` left behind once a
  framing has been entered (rule P-Open rewrites ``φ[H]`` to ``H·Mφ``).

The structural congruence ``ε·H ≡ H ≡ H·ε`` is enforced by the smart
constructor :func:`seq`, which all library code uses instead of building
:class:`Seq` nodes directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Union

from repro.core.actions import Event, Receive, Send


class HistoryExpression:
    """Abstract base class of all history-expression nodes.

    Concrete nodes are frozen dataclasses; the base class only hosts shared
    conveniences (pretty ``repr`` and structural iteration).
    """

    __slots__ = ()

    def children(self) -> tuple["HistoryExpression", ...]:
        """The immediate sub-expressions of this node."""
        return ()

    def walk(self) -> Iterator["HistoryExpression"]:
        """Pre-order traversal of the syntax tree (self included)."""
        yield self
        for child in self.children():
            yield from child.walk()

    def __str__(self) -> str:  # pragma: no cover - delegated to pretty
        from repro.lang.pretty import pretty
        return pretty(self)


@dataclass(frozen=True, slots=True)
class Epsilon(HistoryExpression):
    """The empty history expression ``ε``: it cannot do anything."""


#: The canonical ``ε`` term.  ``Epsilon`` instances compare equal, but using
#: the shared constant keeps object churn down in hot loops.
EPSILON = Epsilon()


@dataclass(frozen=True, slots=True)
class Var(HistoryExpression):
    """A recursion variable ``h``."""

    name: str


@dataclass(frozen=True, slots=True)
class Mu(HistoryExpression):
    """Tail recursion ``μh.H``.

    The calculus restricts bodies to be *tail* recursive and *guarded* by a
    communication action; :mod:`repro.core.wellformed` checks both.
    """

    var: str
    body: HistoryExpression

    def children(self) -> tuple[HistoryExpression, ...]:
        return (self.body,)


@dataclass(frozen=True, slots=True)
class EventNode(HistoryExpression):
    """A single access event ``α``."""

    event: Event

    def children(self) -> tuple[HistoryExpression, ...]:
        return ()


@dataclass(frozen=True, slots=True)
class Seq(HistoryExpression):
    """Sequential composition ``H·H'``.

    Built via :func:`seq`, which normalises away ``ε`` operands and
    right-associates nested sequences so that structurally-congruent terms
    are represented by identical trees.
    """

    first: HistoryExpression
    second: HistoryExpression

    def children(self) -> tuple[HistoryExpression, ...]:
        return (self.first, self.second)


@dataclass(frozen=True, slots=True)
class ExternalChoice(HistoryExpression):
    """External choice ``Σ_{i∈I} a_i.H_i`` over *input* prefixes.

    The choice is driven by the message received: all the inputs are
    available at the same time (single ready set, Definition 3).
    """

    branches: tuple[tuple[Receive, HistoryExpression], ...]

    def children(self) -> tuple[HistoryExpression, ...]:
        return tuple(cont for _, cont in self.branches)


@dataclass(frozen=True, slots=True)
class InternalChoice(HistoryExpression):
    """Internal choice ``⊕_{i∈I} ā_i.H_i`` over *output* prefixes.

    The sender picks one output on its own: each output is a singleton
    ready set (Definition 3).
    """

    branches: tuple[tuple[Send, HistoryExpression], ...]

    def children(self) -> tuple[HistoryExpression, ...]:
        return tuple(cont for _, cont in self.branches)


@dataclass(frozen=True, slots=True)
class Request(HistoryExpression):
    """A service request ``open_{r,φ} H close_{r,φ}``.

    ``request`` is the unique identifier ``r``; ``policy`` is the policy
    ``φ`` imposed on the whole session (``None`` for the empty policy);
    ``body`` is the client's behaviour within the session.
    """

    request: str
    policy: object | None
    body: HistoryExpression

    def children(self) -> tuple[HistoryExpression, ...]:
        return (self.body,)


@dataclass(frozen=True, slots=True)
class ClosePending(HistoryExpression):
    """Run-time residual ``close_{r,φ}`` of an opened session."""

    request: str
    policy: object | None

    def children(self) -> tuple[HistoryExpression, ...]:
        return ()


@dataclass(frozen=True, slots=True)
class Framing(HistoryExpression):
    """A security framing ``φ[H]``: policy ``φ`` is enforced while ``H``
    runs (and, history-dependently, over the whole past)."""

    policy: object
    body: HistoryExpression

    def children(self) -> tuple[HistoryExpression, ...]:
        return (self.body,)


@dataclass(frozen=True, slots=True)
class FrameClosePending(HistoryExpression):
    """Run-time residual ``Mφ`` of an entered framing."""

    policy: object

    def children(self) -> tuple[HistoryExpression, ...]:
        return ()


# ---------------------------------------------------------------------------
# Smart constructors
# ---------------------------------------------------------------------------

def seq(*parts: HistoryExpression) -> HistoryExpression:
    """Sequentially compose *parts*, normalising ``ε·H ≡ H ≡ H·ε``.

    Nested sequences are flattened and re-associated to the right, so two
    structurally congruent compositions yield the same tree::

        seq(seq(a, b), c) == seq(a, seq(b, c)) == seq(a, b, c)
    """
    flat: list[HistoryExpression] = []
    for part in parts:
        _flatten_seq(part, flat)
    if not flat:
        return EPSILON
    result = flat[-1]
    for part in reversed(flat[:-1]):
        result = Seq(part, result)
    return result


def _flatten_seq(term: HistoryExpression, out: list[HistoryExpression]) -> None:
    if isinstance(term, Epsilon):
        return
    if isinstance(term, Seq):
        _flatten_seq(term.first, out)
        _flatten_seq(term.second, out)
        return
    out.append(term)


def event(name: str, *params: object) -> EventNode:
    """Build the event term ``α_name(params)``."""
    return EventNode(Event(name, tuple(params)))  # type: ignore[arg-type]


def send(channel: str,
         continuation: HistoryExpression = EPSILON) -> InternalChoice:
    """A single output prefix ``ā.H`` (a one-branch internal choice)."""
    return InternalChoice(((Send(channel), continuation),))


def receive(channel: str,
            continuation: HistoryExpression = EPSILON) -> ExternalChoice:
    """A single input prefix ``a.H`` (a one-branch external choice)."""
    return ExternalChoice(((Receive(channel), continuation),))


def external(*branches: tuple[str | Receive, HistoryExpression]
             ) -> ExternalChoice:
    """External choice ``Σ a_i.H_i`` from (channel, continuation) pairs."""
    resolved = tuple(
        (label if isinstance(label, Receive) else Receive(label), cont)
        for label, cont in branches)
    return ExternalChoice(resolved)


def internal(*branches: tuple[str | Send, HistoryExpression]
             ) -> InternalChoice:
    """Internal choice ``⊕ ā_i.H_i`` from (channel, continuation) pairs."""
    resolved = tuple(
        (label if isinstance(label, Send) else Send(label), cont)
        for label, cont in branches)
    return InternalChoice(resolved)


def request(rid: str, policy: object | None,
            body: HistoryExpression) -> Request:
    """The session term ``open_{rid,policy} body close_{rid,policy}``."""
    return Request(str(rid), policy, body)


def framing(policy: object, body: HistoryExpression) -> Framing:
    """The security framing ``policy[body]``."""
    return Framing(policy, body)


def mu(var: str, body: HistoryExpression) -> Mu:
    """The recursion ``μvar.body``."""
    return Mu(var, body)


# ---------------------------------------------------------------------------
# Structural operations
# ---------------------------------------------------------------------------

def free_variables(term: HistoryExpression) -> frozenset[str]:
    """The free recursion variables of *term*."""
    if isinstance(term, Var):
        return frozenset({term.name})
    if isinstance(term, Mu):
        return free_variables(term.body) - {term.var}
    result: frozenset[str] = frozenset()
    for child in term.children():
        result |= free_variables(child)
    return result


def is_closed(term: HistoryExpression) -> bool:
    """True iff *term* has no free recursion variables."""
    return not free_variables(term)


def substitute(term: HistoryExpression, var: str,
               replacement: HistoryExpression) -> HistoryExpression:
    """Capture-avoiding substitution ``term{replacement / var}``.

    Because recursion in the calculus is tail recursion over named
    variables, capture can only occur through shadowing ``μ`` binders; an
    inner binder with the same name simply stops the substitution.
    """
    if isinstance(term, Var):
        return replacement if term.name == var else term
    if isinstance(term, Mu):
        if term.var == var:
            return term
        if term.var in free_variables(replacement):
            fresh = _fresh_name(term.var,
                                free_variables(replacement)
                                | free_variables(term.body))
            renamed = substitute(term.body, term.var, Var(fresh))
            return Mu(fresh, substitute(renamed, var, replacement))
        return Mu(term.var, substitute(term.body, var, replacement))
    if isinstance(term, Seq):
        return seq(substitute(term.first, var, replacement),
                   substitute(term.second, var, replacement))
    if isinstance(term, ExternalChoice):
        return ExternalChoice(tuple(
            (label, substitute(cont, var, replacement))
            for label, cont in term.branches))
    if isinstance(term, InternalChoice):
        return InternalChoice(tuple(
            (label, substitute(cont, var, replacement))
            for label, cont in term.branches))
    if isinstance(term, Request):
        return Request(term.request, term.policy,
                       substitute(term.body, var, replacement))
    if isinstance(term, Framing):
        return Framing(term.policy, substitute(term.body, var, replacement))
    return term


def _fresh_name(base: str, avoid: Iterable[str]) -> str:
    avoid_set = set(avoid)
    candidate = base
    counter = 0
    while candidate in avoid_set:
        counter += 1
        candidate = f"{base}_{counter}"
    return candidate


def unfold(term: Mu) -> HistoryExpression:
    """One unfolding ``H{μh.H / h}`` of a recursion."""
    return substitute(term.body, term.var, term)


def requests_of(term: HistoryExpression) -> tuple[Request, ...]:
    """All :class:`Request` subterms of *term*, in pre-order.

    This includes requests nested inside other requests (nested sessions).
    """
    return tuple(node for node in term.walk() if isinstance(node, Request))


def events_of(term: HistoryExpression) -> frozenset[Event]:
    """All concrete access events syntactically occurring in *term*."""
    return frozenset(node.event for node in term.walk()
                     if isinstance(node, EventNode))


def channels_of(term: HistoryExpression) -> frozenset[str]:
    """All channel names occurring in *term* (inputs and outputs alike)."""
    channels: set[str] = set()
    for node in term.walk():
        if isinstance(node, ExternalChoice):
            channels.update(label.channel for label, _ in node.branches)
        elif isinstance(node, InternalChoice):
            channels.update(label.channel for label, _ in node.branches)
    return frozenset(channels)


def policies_of(term: HistoryExpression) -> frozenset[object]:
    """All policies mentioned by framings or requests of *term*."""
    found: set[object] = set()
    for node in term.walk():
        if isinstance(node, (Framing, FrameClosePending)):
            found.add(node.policy)
        elif isinstance(node, (Request, ClosePending)):
            if node.policy is not None:
                found.add(node.policy)
    return frozenset(found)


#: Union type of every concrete node class (useful for exhaustive matches).
Node = Union[Epsilon, Var, Mu, EventNode, Seq, ExternalChoice, InternalChoice,
             Request, ClosePending, Framing, FrameClosePending]

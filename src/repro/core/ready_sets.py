"""Observable ready sets (paper, Definition 3).

The ready sets of a contract characterise what it offers right now:

* an internal choice ``⊕_{i} ā_i.H_i`` offers *one output at a time* —
  each ``{ā_i}`` is a ready set on its own;
* an external choice ``Σ_{i} a_i.H_i`` offers *all its inputs at once* —
  the single ready set ``{a_1, …, a_n}``;
* ``ε`` and recursion variables offer nothing (the empty ready set);
* sequential composition looks at its first component, falling through to
  the second when the first offers nothing.

Examples from the paper::

    (ā1 ⊕ ā2) ⇓ {ā1}   and   (ā1 ⊕ ā2) ⇓ {ā2}
    (a1 + a2) ⇓ {a1, a2}
    μh.(ā1 ⊕ ā2)·b̄·h ⇓ {ā1}  and  ⇓ {ā2}
    ε·(a + b)·(d̄ ⊕ ē) ⇓ {a, b}
"""

from __future__ import annotations

from repro.core.actions import Receive, Send
from repro.core.syntax import (Epsilon, ExternalChoice, HistoryExpression,
                               InternalChoice, Mu, Seq, Var)

#: A single ready set: a set of communication actions.
ReadySet = frozenset[Send | Receive]


def ready_sets(term: HistoryExpression) -> frozenset[ReadySet]:
    """All ready sets ``S`` with ``term ⇓ S``.

    *term* must be a contract (the image of the projection ``H!``); nodes
    that the projection erases (events, framings, requests) raise
    :class:`TypeError` to catch accidental use on unprojected expressions.
    """
    if isinstance(term, (Epsilon, Var)):
        return frozenset({frozenset()})
    if isinstance(term, InternalChoice):
        return frozenset(frozenset({label})
                         for label, _ in term.branches)
    if isinstance(term, ExternalChoice):
        return frozenset({frozenset(label for label, _ in term.branches)})
    if isinstance(term, Mu):
        return ready_sets(term.body)
    if isinstance(term, Seq):
        first = ready_sets(term.first)
        result = {s for s in first if s}
        if frozenset() in first:
            result.update(ready_sets(term.second))
        return frozenset(result)
    raise TypeError(
        f"ready sets are defined on contracts only; {type(term).__name__} "
        "nodes must be projected away first (repro.core.projection.project)")


def offers_nothing(term: HistoryExpression) -> bool:
    """True iff the only ready set of *term* is the empty one."""
    return ready_sets(term) == frozenset({frozenset()})


def co_set(actions: ReadySet) -> ReadySet:
    """The set of co-actions ``S̄ = {ā | a ∈ S}`` used by Definition 4."""
    return frozenset(
        Receive(a.channel) if isinstance(a, Send) else Send(a.channel)
        for a in actions)


def unmatched_pairs(client: HistoryExpression, server: HistoryExpression
                    ) -> tuple[tuple[ReadySet, ReadySet], ...]:
    """The ready-set pairs refusing property (1) of Definition 4.

    Every returned pair ``(C, S)`` has ``client ⇓ C``, ``server ⇓ S``,
    ``C ≠ ∅`` and ``C ∩ S̄ = ∅``: the client insists on an action from
    ``C`` while the server may present ``S``, which offers no co-action.
    Empty iff the pair satisfies the ready-set condition.  Pairs are
    sorted by their rendering, so witnesses built from them are
    deterministic across processes.
    """
    refusals = []
    for c_set in ready_sets(client):
        if not c_set:
            continue
        for s_set in ready_sets(server):
            if not (c_set & co_set(s_set)):
                refusals.append((c_set, s_set))
    return tuple(sorted(
        refusals,
        key=lambda pair: (sorted(str(a) for a in pair[0]),
                          sorted(str(a) for a in pair[1]))))

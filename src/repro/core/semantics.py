"""Operational semantics of stand-alone history expressions.

Implements the transition relation ``H --λ--> H'`` of the paper
(Section 3)::

    (I-Choice)  ⊕ ā_i.H_i --ā_i--> H_i
    (E-Choice)  Σ a_i.H_i --a_i--> H_i
    (α Acc)     α --α--> ε
    (S-Open)    open_{r,φ}·H·close_{r,φ} --open_{r,φ}--> H·close_{r,φ}
    (P-Open)    φ[H] --Lφ--> H·Mφ
    (Conc)      H --λ--> H'  ⟹  H·H'' --λ--> H'·H''
    (Rec)       H{μh.H/h} --λ--> H'  ⟹  μh.H --λ--> H'

plus the two run-time residuals: ``close_{r,φ} --close_{r,φ}--> ε`` and
``Mφ --Mφ--> ε``.

The single entry point is :func:`step`; everything else in the library
(finite LTS construction, projections, products, the network semantics) is
derived from it.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.actions import (FrameClose, FrameOpen, Label, SessionClose,
                                SessionOpen)
from repro.core.errors import OpenTermError, WellFormednessError
from repro.core.syntax import (ClosePending, Epsilon, EventNode,
                               ExternalChoice, FrameClosePending, Framing,
                               HistoryExpression, InternalChoice, Mu, Request,
                               Seq, Var, seq, unfold)

#: Safety bound on consecutive μ-unfoldings while computing one step.  A
#: well-formed (guarded) term needs at most a handful; unguarded recursion
#: like ``μh.μk.h`` would otherwise loop forever.
_MAX_UNFOLDINGS = 64


def step(term: HistoryExpression,
         _depth: int = 0) -> Iterator[tuple[Label, HistoryExpression]]:
    """Yield every transition ``(λ, H')`` with ``term --λ--> H'``.

    Raises :class:`OpenTermError` on free variables and
    :class:`WellFormednessError` on unguarded recursion.
    """
    if isinstance(term, Epsilon):
        return
    if isinstance(term, Var):
        raise OpenTermError(term.name)
    if isinstance(term, EventNode):
        yield term.event, Epsilon()
        return
    if isinstance(term, InternalChoice):
        for label, continuation in term.branches:
            yield label, continuation
        return
    if isinstance(term, ExternalChoice):
        for label, continuation in term.branches:
            yield label, continuation
        return
    if isinstance(term, Request):
        yield (SessionOpen(term.request, term.policy),
               seq(term.body, ClosePending(term.request, term.policy)))
        return
    if isinstance(term, ClosePending):
        yield SessionClose(term.request, term.policy), Epsilon()
        return
    if isinstance(term, Framing):
        yield (FrameOpen(term.policy),
               seq(term.body, FrameClosePending(term.policy)))
        return
    if isinstance(term, FrameClosePending):
        yield FrameClose(term.policy), Epsilon()
        return
    if isinstance(term, Seq):
        for label, rest in step(term.first, _depth):
            yield label, seq(rest, term.second)
        return
    if isinstance(term, Mu):
        if _depth >= _MAX_UNFOLDINGS:
            raise WellFormednessError(
                f"recursion μ{term.var} is not guarded: stepping it needs "
                f"more than {_MAX_UNFOLDINGS} unfoldings")
        yield from step(unfold(term), _depth + 1)
        return
    raise TypeError(f"unknown history expression node {term!r}")


def successors(term: HistoryExpression) -> tuple[
        tuple[Label, HistoryExpression], ...]:
    """The transitions of *term* as a tuple (memo-friendly form of
    :func:`step`)."""
    return tuple(step(term))


def is_terminated(term: HistoryExpression) -> bool:
    """True iff *term* is (congruent to) ``ε``, i.e. successfully done."""
    return isinstance(term, Epsilon)


def can_step(term: HistoryExpression) -> bool:
    """True iff *term* has at least one transition."""
    for _ in step(term):
        return True
    return False


def enabled_labels(term: HistoryExpression) -> frozenset[Label]:
    """The set of labels *term* can fire right now."""
    return frozenset(label for label, _ in step(term))


def traces(term: HistoryExpression, max_length: int,
           ) -> Iterator[tuple[Label, ...]]:
    """Yield the (maximal or length-capped) traces of *term*.

    A trace ends either at ``ε`` or when *max_length* labels have been
    produced.  Intended for tests and examples; exhaustive exploration of
    large terms should go through :mod:`repro.contracts.lts`.
    """
    stack: list[tuple[HistoryExpression, tuple[Label, ...]]] = [(term, ())]
    while stack:
        current, prefix = stack.pop()
        moves = successors(current)
        if not moves or len(prefix) >= max_length:
            yield prefix
            continue
        for label, successor in moves:
            stack.append((successor, prefix + (label,)))

"""Execution histories and their validity (paper, Section 3.1).

A history ``η ∈ (Ev ∪ Frm)*`` records the access events fired so far,
interleaved with the framing actions ``Lφ``/``Mφ`` that open and close
policy activations.  Validity is *history dependent*:

    ``η`` is valid (``|= η``) when for every split ``η = η0·η1`` and every
    policy ``φ ∈ AP(η0)``, the flattened prefix ``η0♭`` respects ``φ``.

``AP(η)`` is the multiset of policies opened but not yet closed in ``η``
and ``η♭`` erases all framing actions.  The paper's example: with ``φ`` =
"no α after γ", the history ``γ·α·Lφ·β`` is **not** valid — when ``β``
fires, ``φ`` is active and the prefix ``γα`` already disobeys it — whereas
``Lφ·γ·Mφ·α·β`` is valid because ``φ`` is no longer active when ``α``
fires.

Two implementations are provided: the declarative :func:`is_valid`
(literally the definition, quadratic) and the incremental
:class:`ValidityMonitor`, which is also the run-time reference monitor
that a *valid plan* lets you switch off.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.actions import (Event, FrameClose, FrameOpen, HistoryLabel,
                                is_history_label)
from repro.policies.usage_automata import Policy, PolicyRunner


class History(tuple):
    """An execution history: an immutable sequence of events and framings.

    Behaves as a tuple of :class:`~repro.core.actions.Event`,
    :class:`~repro.core.actions.FrameOpen` and
    :class:`~repro.core.actions.FrameClose` labels, with the paper's
    derived notions as methods.
    """

    __slots__ = ()

    def __new__(cls, labels: Iterable[HistoryLabel] = ()) -> "History":
        if type(labels) is History:
            # Labels coming from a History were validated when it was
            # built; don't re-check them.
            return super().__new__(cls, labels)
        items = tuple(labels)
        for item in items:
            if not is_history_label(item):
                raise TypeError(
                    f"{item!r} is not a history label (Ev ∪ Frm)")
        return super().__new__(cls, items)

    @classmethod
    def _trusted(cls, items: tuple) -> "History":
        """Wrap an already-validated tuple of labels, skipping the
        per-label check — internal fast path for growing histories.

        Callers must only pass labels that individually passed
        :func:`~repro.core.actions.is_history_label`; anything else would
        corrupt the invariant every other method relies on.
        """
        return super().__new__(cls, items)

    def append(self, label: HistoryLabel) -> "History":
        """The history ``η·label``.

        Only *label* is validated — the existing labels were checked when
        this history was built, so construction by repeated appends is
        linear, not quadratic.
        """
        if not is_history_label(label):
            raise TypeError(f"{label!r} is not a history label (Ev ∪ Frm)")
        return History._trusted(tuple(self) + (label,))

    def extend(self, labels: Iterable[HistoryLabel]) -> "History":
        """The history ``η·labels`` (only the new labels are validated)."""
        items = tuple(labels)
        if not isinstance(labels, History):
            for item in items:
                if not is_history_label(item):
                    raise TypeError(
                        f"{item!r} is not a history label (Ev ∪ Frm)")
        return History._trusted(tuple(self) + items)

    def __add__(self, other: Iterable[HistoryLabel]) -> "History":  # type: ignore[override]
        return self.extend(other)

    def flatten(self) -> tuple[Event, ...]:
        """``η♭`` — the history with every framing action erased."""
        return tuple(label for label in self if isinstance(label, Event))

    def active_policies(self) -> Counter:
        """``AP(η)`` — the multiset of policies opened but not closed."""
        active: Counter = Counter()
        for label in self:
            if isinstance(label, FrameOpen):
                active[label.policy] += 1
            elif isinstance(label, FrameClose):
                active[label.policy] -= 1
                if active[label.policy] <= 0:
                    del active[label.policy]
        return active

    def prefixes(self) -> Iterator["History"]:
        """All prefixes ``η0`` of ``η``, shortest first, including ``η``
        itself and the empty history."""
        for cut in range(len(self) + 1):
            yield History._trusted(self[:cut])

    def is_balanced(self) -> bool:
        """True iff the history matches the balanced grammar:
        ``η = ε | α | Lφ·η'·Mφ (η' balanced) | η'·η'' (both balanced)``.

        Properly nested framings only: ``Lφ1·Lφ2·Mφ1·Mφ2`` is *not*
        balanced.
        """
        depth = self._nesting_stack()
        return depth is not None and not depth

    def is_prefix_of_balanced(self) -> bool:
        """True iff some extension of the history is balanced — the shape
        of every history showing up while executing a network."""
        return self._nesting_stack() is not None

    def _nesting_stack(self) -> list | None:
        stack: list = []
        for label in self:
            if isinstance(label, FrameOpen):
                stack.append(label.policy)
            elif isinstance(label, FrameClose):
                if not stack or stack[-1] != label.policy:
                    return None
                stack.pop()
        return stack

    def __str__(self) -> str:
        if not self:
            return "ε"
        return "·".join(str(label) for label in self)


#: The empty history ``ε``.
EMPTY_HISTORY = History()


def is_valid(history: History | Iterable[HistoryLabel]) -> bool:
    """``|= η`` — the declarative validity check (the literal definition).

    For every prefix ``η0`` and every policy active in it, the flattened
    prefix must respect the policy.
    """
    eta = history if isinstance(history, History) else History(history)
    for prefix in eta.prefixes():
        flat = prefix.flatten()
        for policy in prefix.active_policies():
            if not policy.respects(flat):
                return False
    return True


def first_invalid_prefix(history: History | Iterable[HistoryLabel]
                         ) -> History | None:
    """The shortest invalid prefix of *history*, or ``None`` when valid."""
    eta = history if isinstance(history, History) else History(history)
    for prefix in eta.prefixes():
        flat = prefix.flatten()
        for policy in prefix.active_policies():
            if not policy.respects(flat):
                return prefix
    return None


@dataclass
class _ActivePolicy:
    """One policy with a live runner and its activation count."""

    runner: PolicyRunner
    activations: int


class ValidityMonitor:
    """Incremental validity checking — the run-time reference monitor.

    Feed the history one label at a time through :meth:`can_extend` /
    :meth:`extend`.  The monitor keeps one
    :class:`~repro.policies.usage_automata.PolicyRunner` per *distinct*
    active policy; when a framing opens, the runner replays the past
    events (validity is history dependent), and from then on each event
    advances all live runners in one pass.

    The monitor is exactly as permissive as :func:`is_valid`: a label may
    be appended iff the resulting history is valid, assuming the current
    one is.
    """

    def __init__(self, history: Iterable[HistoryLabel] = ()) -> None:
        self._events: list[Event] = []
        self._active: dict[Policy, _ActivePolicy] = {}
        self._valid = True
        for label in history:
            self.extend(label)

    @property
    def valid(self) -> bool:
        """True iff the history consumed so far is valid."""
        return self._valid

    @property
    def events(self) -> tuple[Event, ...]:
        """``η♭`` of the consumed history."""
        return tuple(self._events)

    def active_policies(self) -> Counter:
        """``AP(η)`` of the consumed history."""
        return Counter({policy: entry.activations
                        for policy, entry in self._active.items()})

    def can_extend(self, label: HistoryLabel) -> bool:
        """Would ``η·label`` still be valid?  (Does not mutate.)

        This is the enabling check of the network semantics: a transition
        labelled ``γ`` may fire only if ``|= η·γ``.
        """
        if not self._valid:
            return False
        if isinstance(label, Event):
            for entry in self._active.values():
                if self._would_violate(entry.runner, label):
                    return False
            return True
        if isinstance(label, FrameOpen):
            policy = label.policy
            if policy in self._active:
                return True  # the runner is live and non-violating
            probe = policy.runner()
            for past in self._events:
                probe.step(past)
            return not probe.in_violation
        if isinstance(label, FrameClose):
            return True
        raise TypeError(f"{label!r} is not a history label")

    def blame(self, label: HistoryLabel) -> tuple[Policy, ...]:
        """The policies that refuse ``η·label`` — the machine-readable
        cause behind a ``can_extend(label) == False`` verdict.

        Empty when the extension is fine (or when validity was already
        broken by an earlier label, in which case no single policy can
        be blamed for *this* one).
        """
        if not self._valid:
            return ()
        if isinstance(label, Event):
            return tuple(policy
                         for policy, entry in self._active.items()
                         if self._would_violate(entry.runner, label))
        if isinstance(label, FrameOpen):
            policy = label.policy
            if policy in self._active:
                return ()
            probe = policy.runner()
            for past in self._events:
                probe.step(past)
            return (policy,) if probe.in_violation else ()
        return ()

    def extend(self, label: HistoryLabel) -> bool:
        """Append *label*; returns the new validity verdict.

        Unlike :meth:`can_extend` this records the label even when it
        breaks validity (so the monitor can report *what* went wrong).
        """
        if isinstance(label, Event):
            self._events.append(label)
            for entry in self._active.values():
                entry.runner.step(label)
                if entry.runner.in_violation:
                    self._valid = False
            return self._valid
        if isinstance(label, FrameOpen):
            policy = label.policy
            entry = self._active.get(policy)
            if entry is None:
                runner = policy.runner()
                for past in self._events:
                    runner.step(past)
                entry = _ActivePolicy(runner, 0)
                self._active[policy] = entry
                if runner.in_violation:
                    self._valid = False
            entry.activations += 1
            return self._valid
        if isinstance(label, FrameClose):
            policy = label.policy
            entry = self._active.get(policy)
            if entry is not None:
                entry.activations -= 1
                if entry.activations <= 0:
                    del self._active[policy]
            return self._valid
        raise TypeError(f"{label!r} is not a history label")

    def copy(self) -> "ValidityMonitor":
        """An independent snapshot (used when exploring branching runs).

        Live runners are forked in O(their table) rather than rebuilt by
        replaying the whole event history per active policy.
        """
        clone = ValidityMonitor()
        clone._events = list(self._events)
        clone._valid = self._valid
        for policy, entry in self._active.items():
            clone._active[policy] = _ActivePolicy(entry.runner.fork(),
                                                  entry.activations)
        return clone

    @staticmethod
    def _would_violate(runner: PolicyRunner, event: Event) -> bool:
        """Check one event against a runner without mutating it."""
        probe = runner.fork()
        probe.step(event)
        return probe.in_violation

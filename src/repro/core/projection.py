"""Projection of history expressions on communication actions (Section 4).

The projection ``H!`` removes access events, policy framings and whole
inner service requests, keeping only the communication skeleton::

    (H·H')!   = H!·H'!          h!            = h
    φ[H]!     = H!              (μh.H)!       = μh.(H!)
    (Σ a_i.H_i)! = Σ a_i.(H_i!) (⊕ ā_i.H_i)!  = ⊕ ā_i.(H_i!)
    (open_{r,φ}·H·close_{r,φ})! = ε! = α! = ε

The result is a *behavioural contract* in the sense of Castagna, Gesbert
and Padovani [12]: internal choices guarded by outputs, external choices
guarded by inputs, guarded tail recursion only — hence finite state.
"""

from __future__ import annotations

from repro.core.syntax import (ClosePending, Epsilon, EventNode,
                               ExternalChoice, FrameClosePending, Framing,
                               HistoryExpression, InternalChoice, Mu, Request,
                               Seq, Var, free_variables, seq)


def project(term: HistoryExpression) -> HistoryExpression:
    """The projection ``term!`` on communication actions.

    Closed terms project to closed terms.  Recursions whose body becomes
    trivial (no reachable communication guard) are simplified to ``ε`` so
    that the projected contract stays well formed.
    """
    if isinstance(term, (Epsilon, EventNode, ClosePending, Request, Framing,
                         FrameClosePending)):
        return _project_erased(term)
    if isinstance(term, Var):
        return term
    if isinstance(term, Seq):
        return seq(project(term.first), project(term.second))
    if isinstance(term, ExternalChoice):
        return ExternalChoice(tuple((label, project(cont))
                                    for label, cont in term.branches))
    if isinstance(term, InternalChoice):
        return InternalChoice(tuple((label, project(cont))
                                    for label, cont in term.branches))
    if isinstance(term, Mu):
        body = project(term.body)
        if term.var not in free_variables(body):
            return body
        if _is_trivial_loop(body, term.var):
            return Epsilon()
        return Mu(term.var, body)
    raise TypeError(f"unknown history expression node {term!r}")


def _project_erased(term: HistoryExpression) -> HistoryExpression:
    """Projection of nodes that erase to ``ε`` or to their body."""
    if isinstance(term, Framing):
        return project(term.body)
    # ε, events, whole requests and run-time residuals all erase.
    return Epsilon()


def _is_trivial_loop(body: HistoryExpression, var: str) -> bool:
    """True iff ``μvar.body`` has no action before re-entering ``var``.

    Such degenerate loops (e.g. the projection of ``μh.(α·h)``) denote no
    communication behaviour at all and are simplified to ``ε``.  Guarded
    recursion in the source calculus — recursion guarded by communication
    actions, which survive projection — never produces them, but the
    simplification keeps :func:`project` total on all syntactically valid
    terms.
    """
    while True:
        if isinstance(body, Var):
            return body.name == var
        if isinstance(body, Seq):
            body = body.first
            continue
        if isinstance(body, Mu):
            body = body.body
            continue
        return False

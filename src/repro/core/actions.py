"""Actions of the calculus: events, communications, and framings.

The paper (Section 3) fixes three alphabets:

* access events ``α ∈ Ev``, possibly carrying parameters — e.g. the hotel
  example uses ``αsgn(1)``, ``αp(45)``, ``αta(80)``;
* communication actions
  ``Comm = {a, ā, τ, open_{r,φ}, close_{r,φ}}`` with the usual involution
  ``ā̄ = a``;
* framing actions ``Frm = {Lφ, Mφ | φ ∈ Pol}`` recording the opening and
  closing of a policy framing in execution histories.

``Act = Ev ∪ Comm`` and transition labels range over
``λ ∈ Comm ∪ Ev ∪ Frm``.

All action classes are immutable value objects; they are hashable and
therefore usable as LTS labels, dictionary keys and members of ready sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

#: Types allowed as parameters of an access event.
Param = Union[int, float, str, bool]


@dataclass(frozen=True, slots=True)
class Event:
    """An access event ``α_name(p1, …, pk)``.

    Events are the security-relevant operations; they are appended to the
    execution history and checked against the active policies.
    """

    name: str
    params: tuple[Param, ...] = ()

    def __str__(self) -> str:
        if not self.params:
            return f"@{self.name}"
        inner = ",".join(str(p) for p in self.params)
        return f"@{self.name}({inner})"


@dataclass(frozen=True, slots=True)
class Send:
    """An output action ``ā`` on channel ``channel`` (overbar in the paper)."""

    channel: str

    def __str__(self) -> str:
        return f"!{self.channel}"


@dataclass(frozen=True, slots=True)
class Receive:
    """An input action ``a`` on channel ``channel``."""

    channel: str

    def __str__(self) -> str:
        return f"?{self.channel}"


@dataclass(frozen=True, slots=True)
class Tau:
    """The internal action ``τ`` produced by a synchronisation."""

    def __str__(self) -> str:
        return "tau"


#: The unique internal action.
TAU = Tau()


@dataclass(frozen=True, slots=True)
class SessionOpen:
    """The session-opening action ``open_{r,φ}``.

    ``request`` is the unique request identifier ``r`` and ``policy`` the
    policy ``φ`` that the client imposes on the whole session (``None``
    stands for the empty policy ``∅`` of the paper).
    """

    request: str
    policy: object | None = None

    def __str__(self) -> str:
        pol = self.policy if self.policy is not None else "0"
        return f"open<{self.request},{pol}>"


@dataclass(frozen=True, slots=True)
class SessionClose:
    """The session-closing action ``close_{r,φ}`` matching a
    :class:`SessionOpen` with the same request identifier and policy."""

    request: str
    policy: object | None = None

    def __str__(self) -> str:
        pol = self.policy if self.policy is not None else "0"
        return f"close<{self.request},{pol}>"


@dataclass(frozen=True, slots=True)
class FrameOpen:
    """The framing action ``Lφ``: policy ``φ`` becomes active."""

    policy: object

    def __str__(self) -> str:
        return f"[{self.policy}"


@dataclass(frozen=True, slots=True)
class FrameClose:
    """The framing action ``Mφ``: one activation of ``φ`` ends."""

    policy: object

    def __str__(self) -> str:
        return f"]{self.policy}"


#: Communication actions ``Comm`` (paper, Section 3).
CommAction = Union[Send, Receive, Tau, SessionOpen, SessionClose]

#: Framing actions ``Frm``.
FramingAction = Union[FrameOpen, FrameClose]

#: Transition labels ``λ ∈ Comm ∪ Ev ∪ Frm``.
Label = Union[Event, CommAction, FramingAction]

#: Labels that may appear in an execution history ``η ∈ (Ev ∪ Frm)*``.
HistoryLabel = Union[Event, FrameOpen, FrameClose]


def co(action: Label) -> Label:
    """Return the co-action: ``co(ā) = a`` and ``co(a) = ā``.

    Only :class:`Send` and :class:`Receive` have co-actions; any other
    action raises :class:`ValueError`.
    """
    if isinstance(action, Send):
        return Receive(action.channel)
    if isinstance(action, Receive):
        return Send(action.channel)
    raise ValueError(f"action {action} has no co-action")


def is_output(action: object) -> bool:
    """True iff *action* is an output ``ā``."""
    return isinstance(action, Send)


def is_input(action: object) -> bool:
    """True iff *action* is an input ``a``."""
    return isinstance(action, Receive)


def is_communication(action: object) -> bool:
    """True iff *action* belongs to ``Comm``."""
    return isinstance(action, (Send, Receive, Tau, SessionOpen, SessionClose))


def is_event(action: object) -> bool:
    """True iff *action* is an access event ``α ∈ Ev``."""
    return isinstance(action, Event)


def is_framing(action: object) -> bool:
    """True iff *action* belongs to ``Frm``."""
    return isinstance(action, (FrameOpen, FrameClose))


def is_history_label(action: object) -> bool:
    """True iff *action* can appear in an execution history
    (``Ev ∪ Frm``)."""
    return is_event(action) or is_framing(action)
